//! Simulated distribution of the processing graph across hosts.
//!
//! The paper deploys PerPos on OSGi and notes that "because OSGi supports
//! transparent distribution of services through the D-OSGi specification
//! the processing graph can span several hosts with little added
//! configuration overhead" (§3.3) — in the EnTracked reimplementation the
//! Sensor Wrapper runs on the mobile device while Parser and Interpreter
//! run on a server (Fig. 7).
//!
//! This module reproduces that capability over the simulation: nodes are
//! assigned to named [`Host`]s through a [`Deployment`]; items crossing a
//! host boundary travel over a [`LinkModel`] with latency and loss, and
//! the engine delivers them when due. Link traffic is counted so
//! energy/cost models can observe it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::data::{DataItem, Value};
use crate::graph::NodeId;
use crate::{SimDuration, SimTime};

/// A named host in the deployment (e.g. `"mobile"`, `"server"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Host(String);

impl Host {
    /// Creates a host name.
    pub fn new(name: impl Into<String>) -> Self {
        Host(name.into())
    }

    /// The host name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Host {
    fn from(s: &str) -> Self {
        Host::new(s)
    }
}

/// Exponent cap for the retransmission backoff: beyond this attempt the
/// wait (and its jitter) stops doubling, so very large `max_retries`
/// budgets cannot shift past the `u64` width or balloon the schedule.
/// Exiting through these capped iterations still abandons the message
/// through the single give-up path.
const BACKOFF_SHIFT_CAP: u64 = 20;

/// Network characteristics of the link between two hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way delivery latency.
    pub latency: SimDuration,
    /// Probability that a message is lost.
    pub loss_prob: f64,
    /// Ack/retransmit attempts after a loss before the message is given
    /// up on. The sender backs off exponentially between attempts: the
    /// wait before retransmission `n` is `latency * 2^(n-1)` plus a
    /// seeded jitter of up to half that, so a message delivered on
    /// attempt `n` arrives after roughly `latency * 2^n` (exactly
    /// `latency` for a first-attempt delivery). `0` reproduces the
    /// plain lossy link.
    pub max_retries: u32,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            latency: SimDuration::from_millis(40),
            loss_prob: 0.0,
            max_retries: 0,
        }
    }
}

/// Counters for one host pair, in deployment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Messages handed to the link.
    pub sent: u64,
    /// Messages delivered to the remote node.
    pub delivered: u64,
    /// Individual transmissions lost to the link, whether or not a
    /// later retransmission recovered the message.
    pub lost: u64,
    /// Retransmission attempts after losses (recovered or not).
    pub retransmitted: u64,
    /// Messages abandoned for good after exhausting `max_retries`
    /// (previously folded into `lost`).
    pub gave_up: u64,
}

/// Traffic counters aggregated over every host pair of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistStats {
    /// Messages handed to any link.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Transmissions lost across all links (recovered or not).
    pub lost: u64,
    /// Retransmission attempts across all links.
    pub retransmitted: u64,
    /// Messages abandoned for good across all links.
    pub gave_up: u64,
}

impl DistStats {
    /// Renders the counters as a reflective [`Value`] map — the shape
    /// served by `invoke("dist_stats")` on any node of a deployed
    /// middleware.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("sent".to_string(), Value::Int(self.sent as i64));
        map.insert("delivered".to_string(), Value::Int(self.delivered as i64));
        map.insert("lost".to_string(), Value::Int(self.lost as i64));
        map.insert(
            "retransmitted".to_string(),
            Value::Int(self.retransmitted as i64),
        );
        map.insert("gave_up".to_string(), Value::Int(self.gave_up as i64));
        Value::Map(map)
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    due: SimTime,
    pair: (Host, Host),
    target: NodeId,
    port: usize,
    item: DataItem,
}

/// Assignment of graph nodes to hosts plus the link model — the
/// "configuration overhead" of distributing the graph, kept deliberately
/// small as the paper promises.
///
/// ```
/// use perpos_core::distribution::{Deployment, LinkModel};
/// use perpos_core::prelude::*;
///
/// let mut mw = Middleware::new();
/// let gps = mw.add_component(FnSource::new("gps", kinds::RAW_STRING, |_| {
///     Some(Value::from("$GP"))
/// }));
/// let app = mw.application_sink();
/// mw.connect(gps, app, 0)?;
/// mw.set_deployment(
///     Deployment::new("server")
///         .assign(gps, "mobile")
///         .default_link(LinkModel {
///             latency: SimDuration::from_millis(80),
///             loss_prob: 0.0,
///             max_retries: 0,
///         }),
/// );
/// mw.step()?; // the item is now in flight, not delivered
/// assert_eq!(mw.deployment().unwrap().in_flight(), 1);
/// # Ok::<(), perpos_core::CoreError>(())
/// ```
#[derive(Clone)]
pub struct Deployment {
    assignments: BTreeMap<NodeId, Host>,
    default_host: Host,
    links: BTreeMap<(Host, Host), LinkModel>,
    default_link: LinkModel,
    stats: BTreeMap<(Host, Host), LinkStats>,
    in_flight: Vec<InFlight>,
    rng: StdRng,
}

impl fmt::Debug for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deployment")
            .field("assignments", &self.assignments.len())
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

impl Deployment {
    /// Creates a deployment where unassigned nodes live on `default_host`.
    pub fn new(default_host: impl Into<Host>) -> Self {
        Deployment {
            assignments: BTreeMap::new(),
            default_host: default_host.into(),
            links: BTreeMap::new(),
            default_link: LinkModel::default(),
            stats: BTreeMap::new(),
            in_flight: Vec::new(),
            rng: StdRng::seed_from_u64(0xd057),
        }
    }

    /// Assigns a node to a host (builder style).
    pub fn assign(mut self, node: NodeId, host: impl Into<Host>) -> Self {
        self.assignments.insert(node, host.into());
        self
    }

    /// Configures the link between two hosts, in both directions
    /// (builder style).
    pub fn link(mut self, a: impl Into<Host>, b: impl Into<Host>, model: LinkModel) -> Self {
        let (a, b) = (a.into(), b.into());
        self.links.insert((a.clone(), b.clone()), model);
        self.links.insert((b, a), model);
        self
    }

    /// Sets the link model used for host pairs without an explicit link
    /// (builder style).
    pub fn default_link(mut self, model: LinkModel) -> Self {
        self.default_link = model;
        self
    }

    /// Seeds the loss randomness (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// The host a node runs on.
    pub fn host_of(&self, node: NodeId) -> &Host {
        self.assignments.get(&node).unwrap_or(&self.default_host)
    }

    /// Traffic counters per (from, to) host pair.
    pub fn stats(&self) -> &BTreeMap<(Host, Host), LinkStats> {
        &self.stats
    }

    /// Traffic counters summed over every host pair.
    pub fn dist_stats(&self) -> DistStats {
        self.stats
            .values()
            .fold(DistStats::default(), |acc, s| DistStats {
                sent: acc.sent + s.sent,
                delivered: acc.delivered + s.delivered,
                lost: acc.lost + s.lost,
                retransmitted: acc.retransmitted + s.retransmitted,
                gave_up: acc.gave_up + s.gave_up,
            })
    }

    /// Total messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the edge `from -> to` crosses hosts.
    pub(crate) fn crosses_hosts(&self, from: NodeId, to: NodeId) -> bool {
        self.host_of(from) != self.host_of(to)
    }

    /// Hands an item to the link; it will surface from
    /// [`Deployment::take_due`] when delivered (or never, when lost).
    pub(crate) fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        target: NodeId,
        port: usize,
        mut item: DataItem,
    ) {
        // Distribution seam: the item leaves the producing shard, so its
        // arena provenance is severed here — the value travels behind
        // its shared Arc, the slot recycles on the sender.
        item.payload.detach_in_place();
        let key = (self.host_of(from).clone(), self.host_of(target).clone());
        let model = self.links.get(&key).copied().unwrap_or(self.default_link);
        // Roll the loss dice once per attempt. After losing attempt n the
        // sender waits a seeded exponential backoff of latency * 2^n plus
        // jitter of up to half that before retransmitting, so a message
        // delivered on the first attempt still arrives after exactly one
        // latency while retransmissions spread out instead of hammering
        // the link on a fixed ack timeout.
        let mut attempt: u64 = 0;
        let mut lost_transmissions: u64 = 0;
        let mut backoff_us: u64 = 0;
        // The loop has exactly two exits — delivery, or abandonment at
        // the retry budget — so the `gave_up` increment below runs at
        // most once per message whatever path (including the capped
        // backoff iterations past [`BACKOFF_SHIFT_CAP`]) led here. The
        // per-pair identity `lost == retransmitted + gave_up` follows
        // and is pinned by tests.
        let delivered = loop {
            let lost = model.loss_prob > 0.0 && self.rng.gen::<f64>() < model.loss_prob;
            if !lost {
                break true;
            }
            lost_transmissions += 1;
            if attempt >= u64::from(model.max_retries) {
                break false;
            }
            let base = model
                .latency
                .as_micros()
                .saturating_mul(1 << attempt.min(BACKOFF_SHIFT_CAP));
            let jitter = (base as f64 * 0.5 * self.rng.gen::<f64>()) as u64;
            backoff_us = backoff_us.saturating_add(base.saturating_add(jitter));
            attempt += 1;
        };
        let entry = self.stats.entry(key.clone()).or_default();
        entry.sent += 1;
        entry.retransmitted += attempt;
        entry.lost += lost_transmissions;
        if delivered {
            self.in_flight.push(InFlight {
                due: now + SimDuration::from_micros(backoff_us + model.latency.as_micros()),
                pair: key,
                target,
                port,
                item,
            });
        } else {
            entry.gave_up += 1;
        }
    }

    /// Removes and returns every in-flight item due at or before `now`.
    pub(crate) fn take_due(&mut self, now: SimTime) -> Vec<(NodeId, usize, DataItem)> {
        let mut due = Vec::new();
        let mut remaining = Vec::with_capacity(self.in_flight.len());
        for msg in self.in_flight.drain(..) {
            if msg.due <= now {
                self.stats.entry(msg.pair).or_default().delivered += 1;
                due.push((msg.target, msg.port, msg.item));
            } else {
                remaining.push(msg);
            }
        }
        self.in_flight = remaining;
        // Deterministic delivery order.
        due.sort_by_key(|(n, p, _)| (*n, *p));
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{kinds, Value};

    fn item() -> DataItem {
        DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Int(1))
    }

    #[test]
    fn host_defaults_and_assignment() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let d = Deployment::new("server").assign(a, "mobile");
        assert_eq!(d.host_of(a).as_str(), "mobile");
        let b = g.add(Box::new(crate::component::FnSource::new(
            "b",
            kinds::RAW_STRING,
            |_| None,
        )));
        assert_eq!(d.host_of(b).as_str(), "server");
        assert!(d.crosses_hosts(a, b));
        assert!(!d.crosses_hosts(b, b));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(100),
                loss_prob: 0.0,
                max_retries: 0,
            });
        d.send(SimTime::ZERO, a, a, 0, item());
        assert_eq!(d.in_flight(), 1);
        assert!(d.take_due(SimTime::from_secs_f64(0.05)).is_empty());
        let due = d.take_due(SimTime::from_secs_f64(0.2));
        assert_eq!(due.len(), 1);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn loss_drops_messages() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(1),
                loss_prob: 1.0,
                max_retries: 0,
            })
            .with_seed(1);
        for _ in 0..10 {
            d.send(SimTime::ZERO, a, a, 0, item());
        }
        assert_eq!(d.in_flight(), 0);
        let stats = d.stats().values().next().unwrap();
        assert_eq!(stats.sent, 10);
        assert_eq!(stats.lost, 10);
        assert_eq!(stats.gave_up, 10, "every message abandoned for good");
    }

    #[test]
    fn retransmit_recovers_lost_messages() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(10),
                loss_prob: 0.5,
                max_retries: 8,
            })
            .with_seed(42);
        for _ in 0..100 {
            d.send(SimTime::ZERO, a, a, 0, item());
        }
        let stats = *d.stats().values().next().unwrap();
        assert_eq!(stats.sent, 100);
        // With 8 retries at 50% loss, effectively everything survives:
        // transmissions are lost (and counted) but no message gives up.
        assert_eq!(stats.gave_up, 0);
        assert!(stats.lost > 0, "individual transmissions were lost");
        assert_eq!(
            stats.lost, stats.retransmitted,
            "with no give-ups every lost transmission was retried"
        );
        assert_eq!(d.in_flight(), 100);
        assert!(
            stats.retransmitted > 50,
            "≈1 retransmission per message expected, got {}",
            stats.retransmitted
        );
        // Retransmitted messages arrive late: some due times are beyond
        // one latency.
        assert!(d.take_due(SimTime::from_secs_f64(0.010)).len() < 100);
        let mut total = d.take_due(SimTime::from_secs_f64(10.0)).len();
        total += 100 - d.in_flight() - total; // everything eventually due
        assert_eq!(total, 100);
        assert_eq!(d.dist_stats().delivered, 100);
    }

    #[test]
    fn zero_retries_keeps_plain_lossy_behaviour() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(1),
                loss_prob: 0.5,
                max_retries: 0,
            })
            .with_seed(7);
        for _ in 0..50 {
            d.send(SimTime::ZERO, a, a, 0, item());
        }
        let stats = *d.stats().values().next().unwrap();
        assert_eq!(stats.retransmitted, 0);
        assert_eq!(stats.sent, 50);
        assert_eq!(stats.lost + d.in_flight() as u64, 50);
        assert!(stats.lost > 0, "some messages lost without retries");
        assert_eq!(
            stats.gave_up, stats.lost,
            "without retries every lost transmission is a give-up"
        );
    }

    #[test]
    fn retransmit_backoff_is_exponential_and_seeded() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let build = || {
            Deployment::new("server")
                .assign(a, "mobile")
                .default_link(LinkModel {
                    latency: SimDuration::from_millis(10),
                    loss_prob: 0.5,
                    max_retries: 8,
                })
                .with_seed(9)
        };
        let mut d = build();
        for _ in 0..100 {
            d.send(SimTime::ZERO, a, a, 0, item());
        }
        // First-attempt deliveries arrive after exactly one latency; any
        // retransmitted message waits at least one full backoff (>= one
        // extra latency) first.
        let first_try = d.take_due(SimTime::from_secs_f64(0.010)).len();
        assert!(first_try > 0, "some messages survive the first roll");
        assert!(
            d.take_due(SimTime::from_secs_f64(0.019)).is_empty(),
            "no retransmission can arrive before latency * 2"
        );
        // Attempt-1 deliveries (backoff in [10, 15] ms plus latency) land
        // within 25 ms; later attempts spread further out.
        let second_wave = d.take_due(SimTime::from_secs_f64(0.025)).len();
        assert!(second_wave > 0, "attempt-1 deliveries arrive after backoff");
        let stats = *d.stats().values().next().unwrap();
        assert_eq!(
            first_try as u64 + second_wave as u64 + d.in_flight() as u64 + stats.gave_up,
            100
        );
        // Same seed, same schedule: the backoff jitter is deterministic.
        let mut e = build();
        for _ in 0..100 {
            e.send(SimTime::ZERO, a, a, 0, item());
        }
        assert_eq!(e.take_due(SimTime::from_secs_f64(0.010)).len(), first_try);
        assert!(e.take_due(SimTime::from_secs_f64(0.019)).is_empty());
        assert_eq!(e.take_due(SimTime::from_secs_f64(0.025)).len(), second_wave);
        assert_eq!(*e.stats().values().next().unwrap(), stats);
    }

    #[test]
    fn give_up_at_the_retry_boundary_counts_once() {
        // Certain loss exhausts the budget on every message, so each one
        // walks the loop exactly `max_retries + 1` times and exits at
        // the `attempt == max_retries` boundary. Abandonment must be
        // counted once per message, never per loop iteration.
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(10),
                loss_prob: 1.0,
                max_retries: 3,
            })
            .with_seed(3);
        for _ in 0..25 {
            d.send(SimTime::ZERO, a, a, 0, item());
        }
        let stats = *d.stats().values().next().unwrap();
        assert_eq!(stats.sent, 25);
        assert_eq!(stats.gave_up, 25, "exactly one give-up per message");
        assert_eq!(stats.retransmitted, 25 * 3, "max_retries retries each");
        assert_eq!(stats.lost, 25 * 4, "initial transmission plus retries");
        assert_eq!(
            stats.lost,
            stats.retransmitted + stats.gave_up,
            "every lost transmission is either retried or the final give-up"
        );
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn backoff_cap_exit_still_gives_up_exactly_once() {
        // A retry budget far past BACKOFF_SHIFT_CAP drives the loop
        // through the capped-backoff iterations (the shift stops growing
        // at 2^20); exiting through that path must neither overflow the
        // schedule arithmetic nor miscount the single give-up.
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let retries = BACKOFF_SHIFT_CAP as u32 + 44;
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_secs(1),
                loss_prob: 1.0,
                max_retries: retries,
            })
            .with_seed(11);
        for _ in 0..5 {
            d.send(SimTime::ZERO, a, a, 0, item());
        }
        let stats = *d.stats().values().next().unwrap();
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.gave_up, 5, "exactly one give-up per message");
        assert_eq!(stats.retransmitted, 5 * u64::from(retries));
        assert_eq!(stats.lost, stats.retransmitted + stats.gave_up);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn dist_stats_aggregates_pairs() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let b = g.add(Box::new(crate::component::FnSource::new(
            "b",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .assign(b, "edge");
        d.send(SimTime::ZERO, a, b, 0, item());
        d.send(SimTime::ZERO, b, a, 0, item());
        let _ = d.take_due(SimTime::from_secs_f64(1.0));
        let agg = d.dist_stats();
        assert_eq!(agg.sent, 2);
        assert_eq!(agg.delivered, 2);
        assert_eq!(agg.lost, 0);
        assert_eq!(d.stats().len(), 2, "two host pairs tracked");
    }

    #[test]
    fn per_pair_link_overrides_default() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let b = g.add(Box::new(crate::component::FnSource::new(
            "b",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .assign(b, "server")
            .link(
                "mobile",
                "server",
                LinkModel {
                    latency: SimDuration::from_secs(5),
                    loss_prob: 0.0,
                    max_retries: 0,
                },
            );
        d.send(SimTime::ZERO, a, b, 0, item());
        assert!(d.take_due(SimTime::from_secs_f64(4.0)).is_empty());
        assert_eq!(d.take_due(SimTime::from_secs_f64(5.0)).len(), 1);
    }
}
