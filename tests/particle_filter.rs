//! End-to-end test of the §3.2 / Fig. 5 / Fig. 6 adaptation: the
//! particle filter integrated through the HDOP Component Feature and the
//! Likelihood Channel Feature.

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use perpos::fusion::{LikelihoodFeature, ParticleFilter};
use perpos::prelude::*;

struct Setup {
    mw: Middleware,
    frame: LocalFrame,
    walk: Trajectory,
    gps_channel: perpos::core::channel::ChannelId,
    raw_trace: perpos::sensors::TraceRecorderFeature,
    fused: LocationProvider,
}

fn pipeline(constrained: bool) -> Setup {
    let building = Arc::new(demo_building());
    let frame = *building.frame();
    let walk = Trajectory::new(vec![Point2::new(1.0, 5.25), Point2::new(18.0, 5.25)], 1.0);
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(11)
            .with_environment(GpsEnvironment::urban()),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let likelihood = LikelihoodFeature::new();
    let handle = likelihood.handle();
    let mut pf = ParticleFilter::new("PF", frame, 1)
        .with_seed(13)
        .with_particles(600)
        .with_likelihood(handle);
    if constrained {
        pf = pf.with_building(Arc::clone(&building), 0);
    }
    let pf = mw.add_component(pf);
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, pf, 0).unwrap();
    mw.connect(pf, app, 0).unwrap();
    mw.attach_feature(parser, HdopFeature::new()).unwrap();
    let recorder = perpos::sensors::TraceRecorderFeature::new();
    let raw_trace = recorder.handle();
    mw.attach_feature(interpreter, recorder).unwrap();
    let gps_channel = mw.channel_into(pf, 0).expect("gps channel");
    mw.attach_channel_feature(gps_channel, likelihood).unwrap();
    let fused = mw
        .location_provider(Criteria::new().source("fusion"))
        .unwrap();
    Setup {
        mw,
        frame,
        walk,
        gps_channel,
        raw_trace,
        fused,
    }
}

fn errors(setup: &Setup, items: &[perpos::core::data::DataItem]) -> Vec<f64> {
    items
        .iter()
        .filter_map(|i| {
            let p = i.payload.as_position()?;
            let truth = setup.walk.position_at(i.timestamp);
            Some(setup.frame.to_local(p.coord()).distance(&truth))
        })
        .collect()
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

#[test]
fn filter_beats_raw_gps() {
    let mut s = pipeline(true);
    s.mw.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    let raw = errors(&s, &s.raw_trace.trace().items);
    let fused = errors(&s, &s.fused.history());
    assert!(raw.len() > 20, "enough raw fixes: {}", raw.len());
    assert!(fused.len() > 20, "enough fused fixes: {}", fused.len());
    assert!(
        mean(&fused) < mean(&raw),
        "fused {:.2} m must beat raw {:.2} m",
        mean(&fused),
        mean(&raw)
    );
}

#[test]
fn likelihood_feature_learns_hdop() {
    let mut s = pipeline(true);
    // Before any data the conservative prior applies.
    let sigma0 =
        s.mw.invoke_channel_feature(s.gps_channel, "Likelihood", "getSigma", &[])
            .unwrap()
            .as_f64()
            .unwrap();
    assert_eq!(sigma0, 15.0);
    s.mw.run_for(SimDuration::from_secs(30), SimDuration::from_secs(1))
        .unwrap();
    let sigma =
        s.mw.invoke_channel_feature(s.gps_channel, "Likelihood", "getSigma", &[])
            .unwrap()
            .as_f64()
            .unwrap();
    assert!(sigma != sigma0, "sigma updated from data trees: {sigma}");
    // getLikelihood is monotone in distance.
    let near =
        s.mw.invoke_channel_feature(
            s.gps_channel,
            "Likelihood",
            "getLikelihood",
            &[Value::Float(1.0)],
        )
        .unwrap()
        .as_f64()
        .unwrap();
    let far =
        s.mw.invoke_channel_feature(
            s.gps_channel,
            "Likelihood",
            "getLikelihood",
            &[Value::Float(80.0)],
        )
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(near > far);
}

#[test]
fn likelihood_requires_hdop_feature() {
    // Attaching the Likelihood Channel Feature without the HDOP Component
    // Feature on a member must fail (declared dependency, Fig. 5).
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(GpsSimulator::new("GPS", frame, walk).with_seed(1));
    let parser = mw.add_component(Parser::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, app, 0).unwrap();
    let channel = mw.channel_into(app, 0).unwrap();
    let err = mw
        .attach_channel_feature(channel, LikelihoodFeature::new())
        .unwrap_err();
    assert!(matches!(err, CoreError::MissingFeature { .. }));
}

#[test]
fn constrained_filter_not_worse_than_unconstrained() {
    let mut free = pipeline(false);
    free.mw
        .run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    let free_err = mean(&errors(&free, &free.fused.history()));

    let mut constrained = pipeline(true);
    constrained
        .mw
        .run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    let con_err = mean(&errors(&constrained, &constrained.fused.history()));

    // Walls prune impossible hypotheses; allow a small tolerance for the
    // stochastic case where both are already near-optimal.
    assert!(
        con_err <= free_err * 1.25,
        "constrained {con_err:.2} m should not be much worse than free {free_err:.2} m"
    );
}

#[test]
fn fused_positions_report_shrinking_uncertainty() {
    let mut s = pipeline(true);
    s.mw.run_for(SimDuration::from_secs(40), SimDuration::from_secs(1))
        .unwrap();
    let history = s.fused.history();
    let first_acc = history
        .first()
        .and_then(|i| i.payload.as_position())
        .and_then(|p| p.accuracy_m())
        .unwrap();
    let last_acc = history
        .last()
        .and_then(|i| i.payload.as_position())
        .and_then(|p| p.accuracy_m())
        .unwrap();
    assert!(
        last_acc < first_acc * 2.0,
        "uncertainty stays bounded: {first_acc:.1} -> {last_acc:.1}"
    );
}
