//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde shim.
//!
//! The build environment has no access to `syn`/`quote`, so the item is
//! parsed directly from the `proc_macro::TokenStream`. Supported shapes
//! are exactly what the PerPos workspace uses: non-generic structs (named,
//! tuple, unit) and non-generic enums whose variants are unit, tuple or
//! struct-like. Serde's external tagging conventions are reproduced so
//! the JSON output matches what real serde would produce.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: name (named fields) or index (tuple fields), plus the
/// field's type rendered back to source text.
struct Field {
    name: Option<String>,
    ty: String,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error! always parses")
}

/// Skips attributes (`#[...]` / `#![...]`, covering doc comments) starting
/// at `i`; returns the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == '!' {
                            i += 1;
                        }
                    }
                }
                // The bracketed attribute body.
                if i < tokens.len() {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits the tokens of a field list on top-level commas, tracking `<...>`
/// depth so generic arguments do not split (`BTreeMap<String, Value>`).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth: i32 = 0;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(t.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut s = String::new();
    // A `Joint` punct glues to the next token (`'static` arrives as a
    // joint `'` + ident; `::` as two joint colons) — inserting a space
    // there would, e.g., turn a lifetime into a broken char literal.
    let mut glue = true;
    for t in tokens {
        if !glue {
            s.push(' ');
        }
        glue = matches!(t, TokenTree::Punct(p) if p.spacing() == proc_macro::Spacing::Joint);
        s.push_str(&t.to_string());
    }
    s
}

/// Parses `name: Type` fields from the tokens inside a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level_commas(tokens) {
        let mut i = skip_attrs(&chunk, 0);
        i = skip_vis(&chunk, i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        i += 1;
        let ty = tokens_to_string(&chunk[i..]);
        fields.push(Field {
            name: Some(name),
            ty,
        });
    }
    Ok(fields)
}

/// Parses the types of a tuple field list (tokens inside a paren group).
fn parse_tuple_fields(tokens: &[TokenTree]) -> Vec<Field> {
    split_top_level_commas(tokens)
        .into_iter()
        .map(|chunk| {
            let mut i = skip_attrs(&chunk, 0);
            i = skip_vis(&chunk, i);
            Field {
                name: None,
                ty: tokens_to_string(&chunk[i..]),
            }
        })
        .collect()
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant, then the trailing comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde shim cannot derive for generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named(
                    parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
                ),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(
                        &g.stream().into_iter().collect::<Vec<_>>(),
                    ))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(&g.stream().into_iter().collect::<Vec<_>>())?
                }
                other => return Err(format!("unsupported enum body: {other:?}")),
            };
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Content::Null".to_string(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    "::serde::Serialize::to_content(&self.0)".to_string()
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::List(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => named_fields_to_map(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::List(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Content::Map(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| f.name.clone().expect("named field"))
                            .collect();
                        let entries: Vec<String> = binds
                            .iter()
                            .map(|b| {
                                format!(
                                    "(\"{b}\".to_string(), ::serde::Serialize::to_content({b}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Map(vec![{entries}]))]),\n",
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn named_fields_to_map(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = f.name.as_ref().expect("named field");
            format!("(\"{n}\".to_string(), ::serde::Serialize::to_content(&{prefix}{n}))")
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
}

// ---------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------

fn gen_named_field_reads(fields: &[Field], target: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = f.name.as_ref().expect("named field");
            let ty = &f.ty;
            format!(
                "{n}: match ::serde::content_get(__map, \"{n}\") {{\n\
                     Some(__v) => <{ty} as ::serde::Deserialize>::from_content(__v)?,\n\
                     None => <{ty} as ::serde::Deserialize>::absent()\n\
                         .ok_or_else(|| ::serde::DeError::missing(\"{n}\", \"{target}\"))?,\n\
                 }},\n"
            )
        })
        .collect()
}

fn gen_tuple_reads(fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let ty = &f.ty;
            format!("<{ty} as ::serde::Deserialize>::from_content(&{source}[{i}])?,\n")
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!(
                    "match __c {{ ::serde::Content::Null => Ok({name}), \
                     __other => Err(::serde::DeError::expected(\"null\", __other.kind_name())) }}"
                ),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    let ty = &fields[0].ty;
                    format!("Ok({name}(<{ty} as ::serde::Deserialize>::from_content(__c)?))")
                }
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    let reads = gen_tuple_reads(fields, "__items");
                    format!(
                        "let __items = __c.as_list()\
                             .ok_or_else(|| ::serde::DeError::expected(\"array\", __c.kind_name()))?;\n\
                         if __items.len() != {n} {{\n\
                             return Err(::serde::DeError::expected(\"{n}-element array\", \"{name}\"));\n\
                         }}\n\
                         Ok({name}({reads}))"
                    )
                }
                Shape::Named(fields) => {
                    let reads = gen_named_field_reads(fields, name);
                    format!(
                        "let __map = __c.as_map()\
                             .ok_or_else(|| ::serde::DeError::expected(\"object\", __c.kind_name()))?;\n\
                         Ok({name} {{ {reads} }})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        // Serde also accepts {"Variant": null}-style maps for
                        // unit variants from some producers; be lenient.
                        data_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Shape::Tuple(fields) if fields.len() == 1 => {
                        let ty = &fields[0].ty;
                        data_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(<{ty} as ::serde::Deserialize>::from_content(__v)?)),\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let n = fields.len();
                        let reads = gen_tuple_reads(fields, "__items");
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __items = __v.as_list()\
                                     .ok_or_else(|| ::serde::DeError::expected(\"array\", __v.kind_name()))?;\n\
                                 if __items.len() != {n} {{\n\
                                     return Err(::serde::DeError::expected(\"{n}-element array\", \"{name}::{vname}\"));\n\
                                 }}\n\
                                 Ok({name}::{vname}({reads}))\n\
                             }},\n"
                        ));
                    }
                    Shape::Named(fields) => {
                        let reads = gen_named_field_reads(fields, &format!("{name}::{vname}"));
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __map = __v.as_map()\
                                     .ok_or_else(|| ::serde::DeError::expected(\"object\", __v.kind_name()))?;\n\
                                 Ok({name}::{vname} {{ {reads} }})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                         match __c {{\n\
                             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                             }},\n\
                             ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __v) = &__m[0];\n\
                                 match __k.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                                 }}\n\
                             }},\n\
                             __other => Err(::serde::DeError::expected(\"enum representation\", __other.kind_name())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derives the shim's `serde::Serialize` for non-generic structs/enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde shim codegen error: {e}"))),
        Err(e) => error(&e),
    }
}

/// Derives the shim's `serde::Deserialize` for non-generic structs/enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde shim codegen error: {e}"))),
        Err(e) => error(&e),
    }
}
