//! A MiddleWhere-style middleware: a central *world model* holding the
//! latest location of every tracked object, queried spatially by
//! applications.
//!
//! MiddleWhere (Ranganathan et al., Middleware 2004) "provides location
//! information to applications in a technology agnostic way" through a
//! world model — all position information is stored centrally, and
//! applications issue spatial queries. The paper's §3.3 comparison notes
//! that because of this design "this scenario [sensor power
//! configuration] does not apply to their domain. Configuration of
//! sensors is not discussed." — which this skeleton reproduces: sensors
//! push, applications query, and there is no path from either side to the
//! sensing process.

use perpos_core::prelude::*;
use perpos_geo::Wgs84;
use std::collections::BTreeMap;

/// A located object in the world model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldEntry {
    /// The object's last known position.
    pub position: Wgs84,
    /// Accuracy in metres (MiddleWhere tracks uncertainty per object).
    pub accuracy_m: f64,
    /// When the position was stored.
    pub updated: SimTime,
}

/// The MiddleWhere-style world model: object id → latest location.
///
/// Sensors (or gateways) call [`WorldModel::store`]; applications use the
/// spatial queries. There is deliberately no API surface for reaching the
/// producing sensors or the processing between them and the model.
#[derive(Debug, Default)]
pub struct WorldModel {
    objects: BTreeMap<String, WorldEntry>,
    stores: u64,
}

impl WorldModel {
    /// Creates an empty world model.
    pub fn new() -> Self {
        WorldModel::default()
    }

    /// Stores (or replaces) an object's location — the only write path.
    pub fn store(&mut self, object: impl Into<String>, entry: WorldEntry) {
        self.stores += 1;
        self.objects.insert(object.into(), entry);
    }

    /// The latest entry for an object.
    pub fn locate(&self, object: &str) -> Option<&WorldEntry> {
        self.objects.get(object)
    }

    /// All objects within `radius_m` of `center`, nearest first.
    pub fn within(&self, center: &Wgs84, radius_m: f64) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .objects
            .iter()
            .map(|(id, e)| (id.as_str(), e.position.distance_m(center)))
            .filter(|(_, d)| *d <= radius_m)
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }

    /// The `k` objects nearest to `center`.
    pub fn nearest(&self, center: &Wgs84, k: usize) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .objects
            .iter()
            .map(|(id, e)| (id.as_str(), e.position.distance_m(center)))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out.truncate(k);
        out
    }

    /// Whether two objects are within `radius_m` of each other — the
    /// colocation relation MiddleWhere's reasoning offers.
    pub fn colocated(&self, a: &str, b: &str, radius_m: f64) -> Option<bool> {
        let ea = self.objects.get(a)?;
        let eb = self.objects.get(b)?;
        Some(ea.position.distance_m(&eb.position) <= radius_m)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total store operations (gateway traffic).
    pub fn stores(&self) -> u64 {
        self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wgs(lat: f64, lon: f64) -> Wgs84 {
        Wgs84::new(lat, lon, 0.0).unwrap()
    }

    fn entry(lat: f64, lon: f64, t: f64) -> WorldEntry {
        WorldEntry {
            position: wgs(lat, lon),
            accuracy_m: 5.0,
            updated: SimTime::from_secs_f64(t),
        }
    }

    #[test]
    fn store_and_locate() {
        let mut w = WorldModel::new();
        assert!(w.is_empty());
        w.store("alice", entry(56.0, 10.0, 0.0));
        w.store("alice", entry(56.001, 10.0, 1.0));
        assert_eq!(w.len(), 1);
        assert_eq!(w.stores(), 2);
        let e = w.locate("alice").unwrap();
        assert_eq!(e.updated, SimTime::from_secs_f64(1.0));
        assert!(w.locate("bob").is_none());
    }

    #[test]
    fn spatial_queries() {
        let mut w = WorldModel::new();
        w.store("alice", entry(56.0, 10.0, 0.0));
        w.store("bob", entry(56.001, 10.0, 0.0)); // ~111 m north
        w.store("carol", entry(56.1, 10.0, 0.0)); // ~11 km north
        let center = wgs(56.0, 10.0);
        let near = w.within(&center, 500.0);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].0, "alice");
        assert_eq!(near[1].0, "bob");
        let nearest = w.nearest(&center, 1);
        assert_eq!(nearest[0].0, "alice");
        assert_eq!(w.nearest(&center, 10).len(), 3);
        assert_eq!(w.colocated("alice", "bob", 200.0), Some(true));
        assert_eq!(w.colocated("alice", "carol", 200.0), Some(false));
        assert_eq!(w.colocated("alice", "nobody", 200.0), None);
    }

    /// The architectural limitation the paper's comparison leans on,
    /// executed: the world model answers *where*, but offers no handle on
    /// *how* — there is no sensor, process, or configuration surface.
    #[test]
    fn no_process_surface_exists() {
        let mut w = WorldModel::new();
        w.store("alice", entry(56.0, 10.0, 0.0));
        // Everything an application can do is spatial query; the entry
        // carries position + accuracy + time and nothing else (no HDOP,
        // no satellites, no producing-sensor identity).
        let e = w.locate("alice").unwrap().clone();
        assert_eq!(
            e,
            WorldEntry {
                position: wgs(56.0, 10.0),
                accuracy_m: 5.0,
                updated: SimTime::ZERO,
            }
        );
    }
}
