//! The §3.3 / Fig. 7 scenario: EnTracked power-efficient tracking rebuilt
//! from PerPos graph abstractions, compared against an always-on GPS.
//!
//! A Power Strategy Component Feature on the GPS node exposes power-mode
//! control; the EnTracked Channel Feature on the motion channel duty
//! cycles the receiver against a distance threshold and suspends it when
//! the accelerometer reports the target stationary.
//!
//! Run with: `cargo run --example entracked_power`

use perpos::energy::{EnTrackedFeature, EnergyMeter, PowerModel, PowerStrategyFeature};
use perpos::prelude::*;

/// A 10-minute scenario: walk 2 min, pause 3 min, walk 2 min, pause 3 min.
fn scenario() -> Trajectory {
    // Approximated with waypoints: pauses are modelled by the walk
    // ending; we stitch pauses by running the clock past the arrival.
    Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(170.0, 0.0)], 1.4)
}

fn run(entracked: Option<f64>) -> Result<(EnergyMeter, usize), CoreError> {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).expect("valid"));
    let walk = scenario();
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(31)
            .with_acquisition_delay(SimDuration::from_secs(4)),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let motion = mw.add_component(MotionSensor::new("Motion", walk).with_seed(37));
    let app = mw.application_sink();
    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect(interpreter, app, 0)?;
    let target = mw.add_target("device");
    mw.connect(motion, target.node(), 0)?;

    if let Some(threshold) = entracked {
        mw.attach_feature(gps, PowerStrategyFeature::new())?;
        let motion_channel = mw.channel_into(target.node(), 0).expect("motion channel");
        mw.attach_channel_feature(
            motion_channel,
            EnTrackedFeature::new(gps, interpreter, threshold),
        )?;
    }

    let provider = mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84))?;
    let mut meter = EnergyMeter::new(PowerModel::default());
    let mut last_tx = 0u64;
    for _ in 0..600 {
        mw.step()?;
        let gps_on = mw.invoke(gps, "isEnabled", &[])? == Value::Bool(true);
        let acquiring = mw.invoke(gps, "isAcquiring", &[])? == Value::Bool(true);
        meter.sample(gps_on, acquiring, true, SimDuration::from_secs(1));
        let tx = provider.delivered_count();
        meter.add_transmissions(tx - last_tx);
        last_tx = tx;
        mw.advance_clock(SimDuration::from_secs(1));
    }
    Ok((meter, provider.history().len()))
}

fn main() -> Result<(), CoreError> {
    println!("strategy                energy      mean power  gps on  reports");
    println!("---------------------  ----------  ----------  ------  -------");
    let (always, n1) = run(None)?;
    println!(
        "always-on              {:>7.1} J   {:>7.3} W   {:>4.0} s  {:>6}",
        always.total_j(),
        always.mean_power_w(),
        always.gps_on_s(),
        n1
    );
    for threshold in [25.0, 50.0, 100.0] {
        let (m, n) = run(Some(threshold))?;
        println!(
            "entracked ({threshold:>5.0} m)    {:>7.1} J   {:>7.3} W   {:>4.0} s  {:>6}",
            m.total_j(),
            m.mean_power_w(),
            m.gps_on_s(),
            n
        );
    }
    println!("\n(the target walks ~2 min, then stands still — EnTracked suspends the GPS)");
    Ok(())
}
