//! The Process Channel Layer: source-to-merge pipelines abstracted as
//! Channels, with logical-time data trees and Channel Features
//! (paper §2.2, Fig. 4).
//!
//! A *Channel* is the maximal linear run of Processing Components from a
//! data source (or merge component) towards the next merge component or
//! application sink. For every data element a channel delivers, the layer
//! groups *all intermediate data elements that logically contributed to
//! it* into a [`DataTree`], using per-level logical time exactly as the
//! paper's Fig. 4 describes: each level carries a monotonically increasing
//! counter, and each produced element records the contiguous range of the
//! previous level's counters it consumed.
//!
//! [`ChannelFeature`]s receive each tree through
//! [`ChannelFeature::apply`] — the `apply(dataTree)` method of the paper —
//! and may expose derived state (e.g. a likelihood estimate from HDOP
//! values, Fig. 5) through reflective methods or typed handles.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::component::ComponentRole;
use crate::data::{DataItem, DataKind, Value};
use crate::feature::FeatureDescriptor;
use crate::graph::{NodeId, ProcessingGraph};
use crate::{CoreError, SimTime};

/// Identifier of a channel. Channels are identified by their head node
/// (the source or merge component they start at), so the id is stable
/// across graph mutations that do not remove the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) NodeId);

impl ChannelId {
    /// The id of the channel headed at `node`. Useful when constructing
    /// [`DataTree`]s manually in tests and tools.
    pub fn of_head(node: NodeId) -> Self {
        ChannelId(node)
    }

    /// The head node this channel starts at.
    pub fn head(&self) -> NodeId {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel@{}", self.0)
    }
}

/// Read-only description of a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelInfo {
    /// The channel id (head node).
    pub id: ChannelId,
    /// Member nodes from head to last in-channel component.
    pub members: Vec<NodeId>,
    /// Component names of the members, head first.
    pub member_names: Vec<String>,
    /// Where the channel delivers: the consuming merge/sink node and its
    /// input port, when connected.
    pub endpoint: Option<(NodeId, usize)>,
    /// Names of attached Channel Features.
    pub features: Vec<String>,
    /// Worst member health (filled in by the middleware facade; a bare
    /// [`ChannelLayer`] reports every channel healthy).
    pub health: crate::supervision::HealthStatus,
}

/// One node of a [`DataTree`]: a data item plus the logical-time
/// bookkeeping that located it in the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DataNode {
    /// The graph node that produced the item.
    pub component: NodeId,
    /// Name of that component (for diagnostics / rendering). Shared with
    /// the channel runtime, so cloning a node — and building a tree —
    /// never copies name strings.
    pub component_name: Arc<str>,
    /// The produced item.
    pub item: DataItem,
    /// The item's logical time at its level (1-based, per level).
    pub logical: u64,
    /// The contiguous range of previous-level logical times consumed to
    /// produce this item; `None` at the leaf level.
    pub range: Option<(u64, u64)>,
    /// The contributing items from the previous level.
    pub children: Vec<DataNode>,
}

impl DataNode {
    /// Severs arena provenance on this node's item and all children —
    /// applied when a tree is stored beyond the producing step (history
    /// rings, snapshots), where slot provenance would be meaningless.
    fn detach_payloads(&mut self) {
        self.item.payload.detach_in_place();
        for c in &mut self.children {
            c.detach_payloads();
        }
    }

    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        match self.range {
            Some((lo, hi)) => out.push_str(&format!(
                "{}: {} (logical {}, consumed {}-{})\n",
                self.component_name, self.item, self.logical, lo, hi
            )),
            None => out.push_str(&format!(
                "{}: {} (logical {})\n",
                self.component_name, self.item, self.logical
            )),
        }
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }
}

/// The hierarchical grouping of all intermediate data that contributed to
/// one channel output (paper Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct DataTree {
    /// The channel that produced the output.
    pub channel: ChannelId,
    /// The output element and, transitively, its contributors.
    pub root: DataNode,
}

impl DataTree {
    /// Depth-first iteration over all nodes (root first).
    pub fn iter(&self) -> impl Iterator<Item = &DataNode> {
        // A tree is small; collect into a Vec for a simple iterator type.
        let mut stack = vec![&self.root];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(n.children.iter());
        }
        out.into_iter()
    }

    /// All nodes whose item has the given kind. This is the paper's
    /// `dataTree.getData(NMEASentence.class)` (Fig. 5): a Channel Feature
    /// does not know how many layers or elements of each kind exist, so it
    /// queries by kind.
    pub fn items_of_kind(&self, kind: &DataKind) -> Vec<&DataNode> {
        self.iter().filter(|n| &n.item.kind == kind).collect()
    }

    /// Total number of data elements in the tree.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether the tree consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }

    /// Number of levels in the tree (1 = root only).
    pub fn depth(&self) -> usize {
        fn go(n: &DataNode) -> usize {
            1 + n.children.iter().map(go).max().unwrap_or(0)
        }
        go(&self.root)
    }

    /// Renders the tree as indented text (the Fig. 4 visualization).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render(0, &mut out);
        out
    }

    /// A copy of the tree with every item's arena provenance severed
    /// (see [`crate::data::Payload::detach`]) — the explicit conversion
    /// at seams that retain trees past the producing step. Values stay
    /// behind the same shared `Arc`s; equality and serialization are
    /// unaffected.
    pub fn detached(&self) -> DataTree {
        let mut t = self.clone();
        t.root.detach_payloads();
        t
    }
}

/// The view a running Channel Feature has of its channel.
///
/// Grants reflective access to the channel's member components and their
/// Component Features — the paper's `component.getFeature(HDOP.class)`
/// idiom (Fig. 5) — without exposing the whole graph.
pub struct ChannelHost<'a> {
    graph: &'a mut ProcessingGraph,
    members: &'a [NodeId],
    now: SimTime,
    emitted: Vec<(NodeId, DataItem)>,
}

impl<'a> ChannelHost<'a> {
    /// Builds a host over an explicit member list — for unit tests of
    /// Channel Features outside an engine. Time is fixed at zero.
    pub fn for_test(graph: &'a mut ProcessingGraph, members: &'a [NodeId]) -> Self {
        ChannelHost {
            graph,
            members,
            now: SimTime::ZERO,
            emitted: Vec::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The channel's member nodes, head first.
    pub fn members(&self) -> &[NodeId] {
        self.members
    }

    /// Reflectively invokes a method on a member component (dispatching
    /// to its features when the component does not know the method).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for non-members and propagates
    /// reflective errors.
    pub fn invoke_member(
        &mut self,
        node: NodeId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        if !self.members.contains(&node) {
            return Err(CoreError::UnknownNode(node));
        }
        self.invoke_node(node, method, args)
    }

    /// Reflectively invokes a method on a named Component Feature of a
    /// member.
    ///
    /// # Errors
    ///
    /// Same contract as [`ChannelHost::invoke_member`].
    pub fn invoke_member_feature(
        &mut self,
        node: NodeId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        if !self.members.contains(&node) {
            return Err(CoreError::UnknownNode(node));
        }
        self.invoke_node_feature(node, feature, method, args)
    }

    /// Reflectively invokes a method on *any* node of the processing
    /// graph — the paper's "combining the ability to traverse the nodes
    /// of the processing tree with … state manipulation features"
    /// (§2.1). The EnTracked Channel Feature uses this to control the GPS
    /// power strategy from the motion channel (§3.3).
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_node(
        &mut self,
        node: NodeId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let (value, emitted) = self.graph.invoke(node, method, args, self.now)?;
        self.emitted.extend(emitted.into_iter().map(|i| (node, i)));
        Ok(value)
    }

    /// Reflectively invokes a method on a named Component Feature of any
    /// node (see [`ChannelHost::invoke_node`]).
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_node_feature(
        &mut self,
        node: NodeId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let (value, emitted) = self
            .graph
            .invoke_feature(node, feature, method, args, self.now)?;
        self.emitted.extend(emitted.into_iter().map(|i| (node, i)));
        Ok(value)
    }
}

impl fmt::Debug for ChannelHost<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelHost")
            .field("members", &self.members)
            .finish()
    }
}

/// A Channel Feature (paper §2.2, Fig. 3b): functionality that depends on
/// data produced at several stages of the positioning process.
///
/// The middleware calls [`ChannelFeature::apply`] every time the channel
/// delivers a data element, passing the data tree that produced it.
pub trait ChannelFeature: Send {
    /// The feature's static declaration (see
    /// [`FeatureDescriptor::requiring`] for dependency declarations).
    fn descriptor(&self) -> FeatureDescriptor;

    /// Processes the data tree behind one channel output and updates the
    /// feature's internal state.
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`CoreError::ComponentFailure`];
    /// the engine aborts the running step.
    fn apply(&mut self, tree: &DataTree, host: &mut ChannelHost<'_>) -> Result<(), CoreError>;

    /// Reflectively invokes one of the feature's methods — how
    /// applications at the Positioning Layer interact with middleware
    /// adaptations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] for unknown methods.
    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        let _ = args;
        Err(CoreError::NoSuchMethod {
            target: self.descriptor().name,
            method: method.to_string(),
        })
    }

    /// Typed escape hatch (the paper's `inputChannel.getFeature(...)`).
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Serializes the feature's internal state for a
    /// [`crate::Middleware::snapshot`] checkpoint; see
    /// [`crate::component::Component::snapshot_state`]. Default: `None`
    /// (stateless).
    fn snapshot_state(&self) -> Option<Value> {
        None
    }

    /// Applies state previously captured by
    /// [`ChannelFeature::snapshot_state`]. Default: no-op.
    fn restore_state(&mut self, state: &Value) {
        let _ = state;
    }
}

/// Cap on unclaimed buffered entries per channel level; prevents unbounded
/// growth when a downstream component consumes nothing for a long time.
/// Evictions are counted per channel (see [`ChannelStats::dropped`]).
/// Public so static analysis (perpos-lint P014) can predict from declared
/// rates when a configuration will overrun it.
pub const LEVEL_BUFFER_CAP: usize = 4096;

/// When the channel layer materializes [`DataTree`]s.
///
/// Under [`TreePolicy::Lazy`] (the default) a channel builds a tree for
/// an output only while something can observe it — a Channel Feature is
/// attached or a history subscription is active. The logical-time
/// bookkeeping (counters, claimed ranges, pending buffers) always runs,
/// so flipping to demand mid-run yields trees byte-identical to a channel
/// that materialized all along. [`TreePolicy::Eager`] forces
/// materialization on every output regardless of demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreePolicy {
    /// Materialize trees only while a feature or history subscription
    /// demands them.
    #[default]
    Lazy,
    /// Materialize a tree for every channel output.
    Eager,
}

impl TreePolicy {
    /// Canonical configuration name of the policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            TreePolicy::Lazy => "lazy",
            TreePolicy::Eager => "eager",
        }
    }

    /// Parses a configuration name (`"lazy"` / `"eager"`).
    pub fn from_name(name: &str) -> Option<TreePolicy> {
        match name.trim().to_ascii_lowercase().as_str() {
            "lazy" | "on-demand" | "on_demand" => Some(TreePolicy::Lazy),
            "eager" | "always" => Some(TreePolicy::Eager),
            _ => None,
        }
    }
}

impl fmt::Display for TreePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-channel buffer and materialization counters, surfaced over the
/// reflective `invoke("channel_stats")` surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Channel outputs recorded (emissions of the last member).
    pub outputs: u64,
    /// Outputs for which a [`DataTree`] was materialized.
    pub materialized: u64,
    /// Outputs whose tree was skipped under [`TreePolicy::Lazy`] with no
    /// demand. `materialized + skipped == outputs` always holds.
    pub skipped: u64,
    /// Pending entries evicted by [`LEVEL_BUFFER_CAP`] — data loss that
    /// used to be silent: evicted entries are missing from later trees.
    pub dropped: u64,
    /// Entries currently buffered across all levels awaiting a claim.
    pub buffered: u64,
}

impl ChannelStats {
    /// Renders the counters as a reflective [`Value`] map.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("outputs".to_string(), Value::Int(self.outputs as i64));
        map.insert(
            "materialized".to_string(),
            Value::Int(self.materialized as i64),
        );
        map.insert("skipped".to_string(), Value::Int(self.skipped as i64));
        map.insert("dropped".to_string(), Value::Int(self.dropped as i64));
        map.insert("buffered".to_string(), Value::Int(self.buffered as i64));
        Value::Map(map)
    }
}

#[derive(Debug, Default)]
struct LevelState {
    counter: u64,
    /// Highest logical time of this level already claimed by the next.
    claimed_upto: u64,
    /// Ring of unclaimed entries, logical times strictly increasing.
    /// Claims always consume a prefix (logical ≤ hi), so draining is
    /// `pop_front` — no memmove — and range lookups are binary searches.
    pending: VecDeque<PendingEntry>,
    /// Entries evicted by [`LEVEL_BUFFER_CAP`] at this level.
    dropped: u64,
}

#[derive(Debug, Clone)]
struct PendingEntry {
    item: DataItem,
    logical: u64,
    /// Claimed previous-level range, packed: `lo > hi` encodes "no
    /// contributors" (8 bytes smaller than `Option<(u64, u64)>`, and
    /// the claim math produces the sentinel for free — an empty claim
    /// window is exactly `lo = hi + 1`).
    lo: u64,
    hi: u64,
}

impl PendingEntry {
    /// The claimed range in `Option` form (the public tree surface).
    fn range(&self) -> Option<(u64, u64)> {
        (self.lo <= self.hi).then_some((self.lo, self.hi))
    }

    /// A copy with the item's arena provenance severed (snapshot seam).
    fn detached(&self) -> PendingEntry {
        PendingEntry {
            item: self.item.detached(),
            logical: self.logical,
            lo: self.lo,
            hi: self.hi,
        }
    }
}

/// Bounded ring of the most recent materialized trees — the second
/// demand source besides attached features.
struct TreeHistory {
    capacity: usize,
    trees: VecDeque<DataTree>,
}

struct ChannelRuntime {
    id: ChannelId,
    members: Vec<NodeId>,
    member_names: Vec<Arc<str>>,
    endpoint: Option<(NodeId, usize)>,
    levels: Vec<LevelState>,
    features: Vec<FeatureEntry>,
    history: Option<TreeHistory>,
    outputs: u64,
    materialized: u64,
    skipped: u64,
}

struct FeatureEntry {
    descriptor: FeatureDescriptor,
    feature: Box<dyn ChannelFeature>,
}

/// Captured state of one [`LevelState`] (see
/// [`ChannelLayer::snapshot`]).
#[derive(Debug, Clone)]
struct LevelSnapshot {
    counter: u64,
    claimed_upto: u64,
    pending: Vec<PendingEntry>,
    dropped: u64,
}

/// Captured state of one [`ChannelRuntime`].
#[derive(Debug, Clone)]
struct ChannelSnapshot {
    id: ChannelId,
    levels: Vec<LevelSnapshot>,
    /// History ring `(capacity, trees)` when subscribed.
    history: Option<(usize, Vec<DataTree>)>,
    /// Attached channel-feature names, for restore-time validation.
    feature_names: Vec<String>,
    /// Per-feature opaque state, aligned with `feature_names`.
    feature_state: Vec<Option<Value>>,
    outputs: u64,
    materialized: u64,
    skipped: u64,
}

/// The channel layer's contribution to a [`crate::Middleware::snapshot`]
/// checkpoint: every channel's logical-time state, buffers, counters and
/// channel-feature state. Opaque outside the crate.
#[derive(Debug, Clone)]
pub(crate) struct ChannelLayerSnapshot {
    policy: TreePolicy,
    channels: Vec<ChannelSnapshot>,
}

/// The channel layer runtime: derives channels from the graph, performs
/// logical-time bookkeeping and hosts Channel Features.
///
/// Layout is tuned for [`ChannelLayer::record`], which runs once per
/// component emission: runtimes live in a dense `Vec` (ascending id) and
/// membership is a node-id-indexed side table, so the hot path costs two
/// array reads instead of tree lookups.
#[derive(Default)]
pub(crate) struct ChannelLayer {
    /// Channel runtimes, ascending by id.
    runtimes: Vec<ChannelRuntime>,
    /// id -> index into `runtimes`, for the by-id management surface.
    by_id: BTreeMap<ChannelId, usize>,
    /// [`NodeId::index`] -> (runtime index, level) for channel members.
    node_index: Vec<Option<(u32, u32)>>,
    /// Materialization policy, shared by every channel of the layer.
    policy: TreePolicy,
}

impl fmt::Debug for ChannelLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelLayer")
            .field("channels", &self.runtimes.len())
            .finish()
    }
}

impl ChannelLayer {
    /// Re-derives channels after a graph change, preserving the features,
    /// observers, counters and buffers of channels whose head survived.
    pub(crate) fn recompute(&mut self, graph: &ProcessingGraph) {
        let old = std::mem::take(&mut self.runtimes);
        let mut old_by_id = std::mem::take(&mut self.by_id);
        let mut old: Vec<Option<ChannelRuntime>> = old.into_iter().map(Some).collect();
        self.node_index.clear();
        // `channel_heads` follows graph id order, so runtimes stay
        // ascending by id without sorting.
        for head in channel_heads(graph) {
            let (members, endpoint) = walk_channel(graph, head);
            let id = ChannelId(head);
            let member_names = members
                .iter()
                .map(|m| {
                    Arc::from(
                        graph
                            .info(*m)
                            .map(|i| i.descriptor.name)
                            .unwrap_or_default()
                            .as_str(),
                    )
                })
                .collect();
            let mut runtime = ChannelRuntime {
                id,
                member_names,
                endpoint,
                levels: members.iter().map(|_| LevelState::default()).collect(),
                members: members.clone(),
                features: Vec::new(),
                history: None,
                outputs: 0,
                materialized: 0,
                skipped: 0,
            };
            if let Some(mut prior) = old_by_id.remove(&id).and_then(|i| old[i].take()) {
                runtime.features = std::mem::take(&mut prior.features);
                runtime.history = prior.history.take();
                runtime.outputs = prior.outputs;
                runtime.materialized = prior.materialized;
                runtime.skipped = prior.skipped;
                if prior.members == runtime.members {
                    // Unchanged shape: keep logical time and buffers.
                    runtime.levels = prior.levels;
                }
            }
            let slot = self.runtimes.len();
            for (level, m) in members.iter().enumerate() {
                let i = m.index();
                if self.node_index.len() <= i {
                    self.node_index.resize(i + 1, None);
                }
                self.node_index[i] = Some((slot as u32, level as u32));
            }
            self.by_id.insert(id, slot);
            self.runtimes.push(runtime);
        }
    }

    /// The runtime behind `id`, or [`CoreError::UnknownChannel`].
    fn runtime(&self, id: ChannelId) -> Result<&ChannelRuntime, CoreError> {
        let idx = *self.by_id.get(&id).ok_or(CoreError::UnknownChannel(id))?;
        Ok(&self.runtimes[idx])
    }

    /// Mutable access to the runtime behind `id`.
    fn runtime_mut(&mut self, id: ChannelId) -> Result<&mut ChannelRuntime, CoreError> {
        let idx = *self.by_id.get(&id).ok_or(CoreError::UnknownChannel(id))?;
        Ok(&mut self.runtimes[idx])
    }

    /// Sets the materialization policy for every channel of the layer.
    pub(crate) fn set_policy(&mut self, policy: TreePolicy) {
        self.policy = policy;
    }

    /// The active materialization policy.
    pub(crate) fn policy(&self) -> TreePolicy {
        self.policy
    }

    /// Captures the layer's full runtime state — per-level logical-time
    /// counters, pending rings, eviction counts, output counters,
    /// history rings and channel-feature state — for a
    /// [`crate::Middleware::snapshot`] checkpoint.
    pub(crate) fn snapshot(&self) -> ChannelLayerSnapshot {
        ChannelLayerSnapshot {
            policy: self.policy,
            channels: self
                .runtimes
                .iter()
                .map(|r| ChannelSnapshot {
                    id: r.id,
                    levels: r
                        .levels
                        .iter()
                        .map(|l| LevelSnapshot {
                            counter: l.counter,
                            claimed_upto: l.claimed_upto,
                            // Snapshot seam: captured ring entries carry
                            // no provenance into the live arena's slots.
                            pending: l.pending.iter().map(PendingEntry::detached).collect(),
                            dropped: l.dropped,
                        })
                        .collect(),
                    history: r
                        .history
                        .as_ref()
                        .map(|h| (h.capacity, h.trees.iter().cloned().collect())),
                    feature_names: r
                        .features
                        .iter()
                        .map(|f| f.descriptor.name.clone())
                        .collect(),
                    feature_state: r
                        .features
                        .iter()
                        .map(|f| f.feature.snapshot_state())
                        .collect(),
                    outputs: r.outputs,
                    materialized: r.materialized,
                    skipped: r.skipped,
                })
                .collect(),
        }
    }

    /// Applies a state previously captured by
    /// [`ChannelLayer::snapshot`]. The layer must already have the same
    /// channel topology (same channel ids, level counts and attached
    /// channel-feature names) — the caller validates graph structure
    /// before calling this.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ComponentFailure`] when the topology differs
    /// from the snapshot's; the layer is left unchanged in that case.
    pub(crate) fn restore(&mut self, snap: &ChannelLayerSnapshot) -> Result<(), CoreError> {
        let mismatch = |reason: String| CoreError::ComponentFailure {
            component: "channel-layer".into(),
            reason,
        };
        if snap.channels.len() != self.runtimes.len() {
            return Err(mismatch(format!(
                "snapshot has {} channels, layer has {}",
                snap.channels.len(),
                self.runtimes.len()
            )));
        }
        for (s, r) in snap.channels.iter().zip(&self.runtimes) {
            if s.id != r.id || s.levels.len() != r.levels.len() {
                return Err(mismatch(format!(
                    "channel {} shape differs from the snapshot",
                    r.id
                )));
            }
            let names: Vec<String> = r
                .features
                .iter()
                .map(|f| f.descriptor.name.clone())
                .collect();
            if names != s.feature_names {
                return Err(mismatch(format!(
                    "channel {} features {:?} differ from snapshot {:?}",
                    r.id, names, s.feature_names
                )));
            }
        }
        self.policy = snap.policy;
        for (s, r) in snap.channels.iter().zip(self.runtimes.iter_mut()) {
            for (ls, level) in s.levels.iter().zip(r.levels.iter_mut()) {
                level.counter = ls.counter;
                level.claimed_upto = ls.claimed_upto;
                level.pending = ls.pending.iter().cloned().collect();
                level.dropped = ls.dropped;
            }
            r.history = s.history.as_ref().map(|(capacity, trees)| TreeHistory {
                capacity: *capacity,
                trees: trees.iter().cloned().collect(),
            });
            for (entry, state) in r.features.iter_mut().zip(&s.feature_state) {
                if let Some(state) = state {
                    entry.feature.restore_state(state);
                }
            }
            r.outputs = s.outputs;
            r.materialized = s.materialized;
            r.skipped = s.skipped;
        }
        Ok(())
    }

    /// Records an emission from `node`. Returns the completed data tree
    /// when the node is the channel's last member (a channel output) and
    /// the tree is demanded (a feature is attached, a history
    /// subscription is active, or the policy is [`TreePolicy::Eager`]).
    ///
    /// The logical-time bookkeeping — counters, claimed ranges, pending
    /// buffers, pruning — is identical whether or not a tree is built,
    /// so demand can flip at any step without perturbing later trees.
    pub(crate) fn record(&mut self, node: NodeId, item: &DataItem) -> Option<DataTree> {
        let (slot, level) = (*self.node_index.get(node.index())?)?;
        let rt = &mut self.runtimes[slot as usize];
        let (cid, level) = (rt.id, level as usize);
        let is_last = level + 1 == rt.levels.len();

        // The claimed window in packed form: `lo > hi` is the natural
        // encoding of "the producer emitted without fresh upstream data"
        // (a timer-driven component) — and of level 0, which claims
        // nothing by definition.
        let (lo, hi) = if level == 0 {
            (1, 0)
        } else {
            let prev = &mut rt.levels[level - 1];
            let lo = prev.claimed_upto + 1;
            let hi = prev.counter;
            prev.claimed_upto = hi.max(prev.claimed_upto);
            (lo, hi)
        };

        let state = &mut rt.levels[level];
        state.counter += 1;
        let logical = state.counter;

        if is_last {
            rt.outputs += 1;
            let demanded =
                self.policy == TreePolicy::Eager || !rt.features.is_empty() || rt.history.is_some();
            let tree = if demanded {
                rt.materialized += 1;
                let entry = PendingEntry {
                    item: item.clone(),
                    logical,
                    lo,
                    hi,
                };
                let root = build_node(&rt.levels, &rt.members, &rt.member_names, level, &entry);
                Some(DataTree { channel: cid, root })
            } else {
                rt.skipped += 1;
                None
            };
            prune_claimed(&mut rt.levels, level, lo, hi);
            if let (Some(t), Some(h)) = (&tree, rt.history.as_mut()) {
                if h.trees.len() == h.capacity {
                    h.trees.pop_front();
                }
                // History outlives the producing step: store the tree
                // with arena provenance severed.
                h.trees.push_back(t.detached());
            }
            tree
        } else {
            state.pending.push_back(PendingEntry {
                item: item.clone(),
                logical,
                lo,
                hi,
            });
            if state.pending.len() > LEVEL_BUFFER_CAP {
                state.pending.pop_front();
                state.dropped += 1;
            }
            None
        }
    }

    /// Runs every attached Channel Feature on a completed tree.
    pub(crate) fn apply_features(
        &mut self,
        graph: &mut ProcessingGraph,
        tree: &DataTree,
        now: SimTime,
    ) -> Result<Vec<(NodeId, DataItem)>, CoreError> {
        let Ok(rt) = self.runtime_mut(tree.channel) else {
            return Ok(Vec::new());
        };
        let mut host = ChannelHost {
            graph,
            members: &rt.members,
            now,
            emitted: Vec::new(),
        };
        for entry in &mut rt.features {
            entry.feature.apply(tree, &mut host)?;
        }
        Ok(host.emitted)
    }

    /// Attaches a Channel Feature, validating its declared dependencies
    /// against member component names, attached Component Features and
    /// already attached Channel Features.
    pub(crate) fn attach_feature(
        &mut self,
        graph: &ProcessingGraph,
        id: ChannelId,
        feature: Box<dyn ChannelFeature>,
    ) -> Result<(), CoreError> {
        let idx = *self.by_id.get(&id).ok_or(CoreError::UnknownChannel(id))?;
        let rt = &mut self.runtimes[idx];
        let descriptor = feature.descriptor();
        for dep in &descriptor.requires {
            let mut found = rt.member_names.iter().any(|n| n.as_ref() == dep.as_str())
                || rt.features.iter().any(|f| &f.descriptor.name == dep);
            if !found {
                for m in &rt.members {
                    if let Ok(info) = graph.info(*m) {
                        if info.features.iter().any(|f| &f.name == dep) {
                            found = true;
                            break;
                        }
                    }
                }
            }
            if !found {
                return Err(CoreError::MissingFeature {
                    node: id.0,
                    feature: dep.clone(),
                });
            }
        }
        rt.features.push(FeatureEntry {
            descriptor,
            feature,
        });
        Ok(())
    }

    /// Detaches a Channel Feature by name.
    pub(crate) fn detach_feature(
        &mut self,
        id: ChannelId,
        name: &str,
    ) -> Result<Box<dyn ChannelFeature>, CoreError> {
        let rt = self.runtime_mut(id)?;
        let idx = rt
            .features
            .iter()
            .position(|f| f.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        Ok(rt.features.remove(idx).feature)
    }

    /// Reflectively invokes a method on an attached Channel Feature.
    pub(crate) fn invoke_feature(
        &mut self,
        id: ChannelId,
        name: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let rt = self.runtime_mut(id)?;
        let entry = rt
            .features
            .iter_mut()
            .find(|f| f.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        entry.feature.invoke(method, args)
    }

    /// Typed access to an attached Channel Feature.
    pub(crate) fn with_feature_mut<T: 'static, R>(
        &mut self,
        id: ChannelId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, CoreError> {
        let rt = self.runtime_mut(id)?;
        let entry = rt
            .features
            .iter_mut()
            .find(|e| e.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        let typed = entry
            .feature
            .as_any_mut()
            .downcast_mut::<T>()
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        Ok(f(typed))
    }

    /// Starts (or resizes) a history subscription: the channel keeps its
    /// last `capacity` materialized trees, and the subscription itself
    /// creates demand under [`TreePolicy::Lazy`].
    pub(crate) fn subscribe_history(
        &mut self,
        id: ChannelId,
        capacity: usize,
    ) -> Result<(), CoreError> {
        let rt = self.runtime_mut(id)?;
        let capacity = capacity.max(1);
        match rt.history.as_mut() {
            Some(h) => {
                h.capacity = capacity;
                while h.trees.len() > capacity {
                    h.trees.pop_front();
                }
            }
            None => {
                rt.history = Some(TreeHistory {
                    capacity,
                    trees: VecDeque::new(),
                });
            }
        }
        Ok(())
    }

    /// Ends a history subscription, dropping retained trees (and, absent
    /// features, the channel's demand).
    pub(crate) fn unsubscribe_history(&mut self, id: ChannelId) -> Result<(), CoreError> {
        self.runtime_mut(id)?.history = None;
        Ok(())
    }

    /// The retained trees of a history subscription, oldest first.
    pub(crate) fn history(&self, id: ChannelId) -> Result<Vec<DataTree>, CoreError> {
        let rt = self.runtime(id)?;
        Ok(rt
            .history
            .as_ref()
            .map(|h| h.trees.iter().cloned().collect())
            .unwrap_or_default())
    }

    /// Buffer/materialization counters of one channel.
    pub(crate) fn stats(&self, id: ChannelId) -> Result<ChannelStats, CoreError> {
        let rt = self.runtime(id)?;
        Ok(ChannelStats {
            outputs: rt.outputs,
            materialized: rt.materialized,
            skipped: rt.skipped,
            dropped: rt.levels.iter().map(|l| l.dropped).sum(),
            buffered: rt.levels.iter().map(|l| l.pending.len() as u64).sum(),
        })
    }

    /// The channel a node belongs to, with its counters — backs the
    /// reflective `invoke(node, "channel_stats")` surface.
    pub(crate) fn stats_for_member(&self, node: NodeId) -> Option<(ChannelId, ChannelStats)> {
        let (slot, _) = (*self.node_index.get(node.index())?)?;
        let cid = self.runtimes[slot as usize].id;
        self.stats(cid).ok().map(|s| (cid, s))
    }

    /// Read-only channel descriptions.
    pub(crate) fn infos(&self) -> Vec<ChannelInfo> {
        self.runtimes
            .iter()
            .map(|rt| ChannelInfo {
                id: rt.id,
                members: rt.members.clone(),
                member_names: rt.member_names.iter().map(|n| n.to_string()).collect(),
                endpoint: rt.endpoint,
                features: rt
                    .features
                    .iter()
                    .map(|f| f.descriptor.name.clone())
                    .collect(),
                health: crate::supervision::HealthStatus::Healthy,
            })
            .collect()
    }

    /// The channel that delivers into `(node, port)`, if any.
    pub(crate) fn channel_into(&self, node: NodeId, port: usize) -> Option<ChannelId> {
        self.runtimes
            .iter()
            .find(|rt| rt.endpoint == Some((node, port)))
            .map(|rt| rt.id)
    }
}

/// A channel head is a source or a merge component (paper §2.2: nodes of
/// the PCL are data sources or merging components).
fn channel_heads(graph: &ProcessingGraph) -> Vec<NodeId> {
    graph
        .node_ids()
        .filter(|id| {
            graph
                .info(*id)
                .map(|i| {
                    matches!(
                        i.descriptor.role,
                        ComponentRole::Source | ComponentRole::Merge
                    )
                })
                .unwrap_or(false)
        })
        .collect()
}

/// Walks the linear run from `head` to the next merge, sink or fan-out.
fn walk_channel(graph: &ProcessingGraph, head: NodeId) -> (Vec<NodeId>, Option<(NodeId, usize)>) {
    let mut members = vec![head];
    let mut cur = head;
    loop {
        let outs = graph.downstream(cur);
        if outs.len() != 1 {
            return (members, None);
        }
        let (next, port) = outs[0];
        let Ok(info) = graph.info(next) else {
            return (members, None);
        };
        match info.descriptor.role {
            ComponentRole::Merge | ComponentRole::Sink => {
                return (members, Some((next, port)));
            }
            ComponentRole::Processor => {
                members.push(next);
                cur = next;
            }
            ComponentRole::Source => {
                // A source cannot consume; the graph prevents this, but
                // terminate defensively.
                return (members, None);
            }
        }
    }
}

fn build_node(
    levels: &[LevelState],
    members: &[NodeId],
    names: &[Arc<str>],
    level: usize,
    entry: &PendingEntry,
) -> DataNode {
    let children = match (level, entry.range()) {
        (0, _) | (_, None) => Vec::new(),
        (_, Some((lo, hi))) => {
            // Logical times are strictly increasing along the ring, so
            // the claimed [lo, hi] span is a contiguous run: locate it
            // with two binary searches instead of scanning every entry.
            let prev = &levels[level - 1].pending;
            let start = prev.partition_point(|e| e.logical < lo);
            let end = prev.partition_point(|e| e.logical <= hi);
            prev.range(start..end)
                .map(|e| build_node(levels, members, names, level - 1, e))
                .collect()
        }
    };
    DataNode {
        component: members[level],
        component_name: names.get(level).cloned().unwrap_or_else(|| Arc::from("")),
        item: entry.item.clone(),
        logical: entry.logical,
        range: entry.range(),
        children,
    }
}

/// Removes every buffered entry that the completed output claimed. Claims
/// always cover a prefix of each ring (everything with logical ≤ hi), so
/// draining is pure `pop_front` — the front of the ring never memmoves
/// the way `Vec::retain`/`drain(..n)` did.
fn prune_claimed(levels: &mut [LevelState], out_level: usize, out_lo: u64, out_hi: u64) {
    let (mut lo, mut hi) = (out_lo, out_hi);
    for level in (0..out_level).rev() {
        if lo > hi {
            break;
        }
        let state = &mut levels[level];
        // Fold the deepest range claimed transitively while popping.
        // No-contributor entries (packed sentinel `lo > hi`) stay out of
        // the fold: their `hi` reflects claims made by *siblings*, which
        // may have been evicted, not claims of their own.
        let (mut next_lo, mut next_hi) = (u64::MAX, 0);
        while let Some(front) = state.pending.front() {
            if front.logical > hi {
                break;
            }
            if front.lo <= front.hi {
                next_lo = next_lo.min(front.lo);
                next_hi = next_hi.max(front.hi);
            }
            state.pending.pop_front();
        }
        (lo, hi) = (next_lo, next_hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::kinds;

    fn item(kind: DataKind, v: i64) -> DataItem {
        DataItem::new(kind, SimTime::ZERO, Value::Int(v))
    }

    /// Builds the Fig. 1 GPS pipeline graph: gps -> parser -> interpreter
    /// -> app, and returns (graph, layer, gps, parser, interpreter).
    fn gps_pipeline() -> (
        ProcessingGraph,
        ChannelLayer,
        NodeId,
        NodeId,
        NodeId,
        NodeId,
    ) {
        use crate::component::{
            ComponentCtx, ComponentDescriptor, FnProcessor, FnSource, InputSpec,
        };

        struct App;
        impl crate::component::Component for App {
            fn descriptor(&self) -> ComponentDescriptor {
                ComponentDescriptor::sink("app", InputSpec::new("in", vec![]))
            }
            fn on_input(
                &mut self,
                _p: usize,
                _i: DataItem,
                _c: &mut ComponentCtx<'_>,
            ) -> Result<(), CoreError> {
                Ok(())
            }
        }

        let mut g = ProcessingGraph::new();
        let gps = g.add(Box::new(FnSource::new("GPS", kinds::RAW_STRING, |_| None)));
        let parser = g.add(Box::new(FnProcessor::new(
            "Parser",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |_| None,
        )));
        let interp = g.add(Box::new(FnProcessor::new(
            "Interpreter",
            vec![kinds::NMEA_SENTENCE],
            kinds::POSITION_WGS84,
            |_| None,
        )));
        let app = g.add(Box::new(App));
        g.connect(gps, parser, 0).unwrap();
        g.connect(parser, interp, 0).unwrap();
        g.connect(interp, app, 0).unwrap();
        let mut layer = ChannelLayer::default();
        // Most tests below observe trees directly, without attaching a
        // feature — force materialization.
        layer.set_policy(TreePolicy::Eager);
        layer.recompute(&g);
        (g, layer, gps, parser, interp, app)
    }

    #[test]
    fn derives_single_channel() {
        let (_g, layer, gps, parser, interp, app) = gps_pipeline();
        let infos = layer.infos();
        assert_eq!(infos.len(), 1);
        let info = &infos[0];
        assert_eq!(info.members, vec![gps, parser, interp]);
        assert_eq!(info.endpoint, Some((app, 0)));
        assert_eq!(info.member_names, vec!["GPS", "Parser", "Interpreter"]);
        assert_eq!(layer.channel_into(app, 0), Some(info.id));
    }

    /// Reproduces the exact data tree of the paper's Fig. 4:
    /// five GPS strings, two NMEA sentences (consuming strings 1-2 and
    /// 3-5), one WGS-84 position consuming NMEA 1-2.
    #[test]
    fn figure_4_data_tree() {
        let (_g, mut layer, gps, parser, interp, _app) = gps_pipeline();

        // Strings 1-2 -> NMEA1.
        assert!(layer.record(gps, &item(kinds::RAW_STRING, 1)).is_none());
        assert!(layer.record(gps, &item(kinds::RAW_STRING, 2)).is_none());
        assert!(layer
            .record(parser, &item(kinds::NMEA_SENTENCE, 1))
            .is_none());
        // Strings 3-5 -> NMEA2.
        for v in 3..=5 {
            assert!(layer.record(gps, &item(kinds::RAW_STRING, v)).is_none());
        }
        assert!(layer
            .record(parser, &item(kinds::NMEA_SENTENCE, 2))
            .is_none());
        // Interpreter consumes NMEA 1-2 -> WGS84_1 (channel output).
        let tree = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .expect("channel output completes the tree");

        assert_eq!(tree.root.logical, 1);
        assert_eq!(tree.root.range, Some((1, 2)));
        assert_eq!(tree.root.children.len(), 2);
        let nmea1 = &tree.root.children[0];
        let nmea2 = &tree.root.children[1];
        assert_eq!(nmea1.range, Some((1, 2)));
        assert_eq!(nmea2.range, Some((3, 5)));
        assert_eq!(nmea1.children.len(), 2);
        assert_eq!(nmea2.children.len(), 3);
        assert_eq!(tree.len(), 1 + 2 + 5);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.items_of_kind(&kinds::NMEA_SENTENCE).len(), 2);
        assert_eq!(tree.items_of_kind(&kinds::RAW_STRING).len(), 5);
        let rendered = tree.render();
        assert!(rendered.contains("consumed 3-5"), "{rendered}");
    }

    #[test]
    fn buffers_pruned_after_output() {
        let (_g, mut layer, gps, parser, interp, _app) = gps_pipeline();
        layer.record(gps, &item(kinds::RAW_STRING, 1));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 1));
        let t1 = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .unwrap();
        assert_eq!(t1.len(), 3);
        // Next round starts fresh: new string + sentence only.
        layer.record(gps, &item(kinds::RAW_STRING, 2));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 2));
        let t2 = layer
            .record(interp, &item(kinds::POSITION_WGS84, 2))
            .unwrap();
        assert_eq!(t2.len(), 3, "old entries must not leak into new trees");
        assert_eq!(t2.root.range, Some((2, 2)));
    }

    #[test]
    fn output_without_fresh_input_has_no_children() {
        let (_g, mut layer, _gps, _parser, interp, _app) = gps_pipeline();
        let tree = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .unwrap();
        assert_eq!(tree.root.range, None);
        assert!(tree.is_empty());
    }

    #[test]
    fn recompute_preserves_features_by_head() {
        struct Probe {
            applied: usize,
        }
        impl ChannelFeature for Probe {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Probe")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                self.applied += 1;
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (g, mut layer, gps, _parser, _interp, _app) = gps_pipeline();
        let id = ChannelId(gps);
        layer
            .attach_feature(&g, id, Box::new(Probe { applied: 0 }))
            .unwrap();
        layer.recompute(&g);
        assert_eq!(layer.infos()[0].features, vec!["Probe".to_string()]);
        let n = layer
            .with_feature_mut::<Probe, usize>(id, "Probe", |p| p.applied)
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn attach_validates_dependencies() {
        struct Dependent;
        impl ChannelFeature for Dependent {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Dependent").requiring("HDOP")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (mut g, mut layer, gps, parser, _interp, _app) = gps_pipeline();
        let id = ChannelId(gps);
        assert!(matches!(
            layer.attach_feature(&g, id, Box::new(Dependent)),
            Err(CoreError::MissingFeature { .. })
        ));
        // Attach the required Component Feature to a member, then retry.
        g.attach_feature(
            parser,
            Box::new(crate::feature::TagFeature::new(
                "HDOP",
                "hdop",
                Value::Float(1.0),
            )),
        )
        .unwrap();
        layer.attach_feature(&g, id, Box::new(Dependent)).unwrap();
        // Dependency on a member component name also works.
        struct OnParser;
        impl ChannelFeature for OnParser {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("OnParser").requiring("Parser")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        layer.attach_feature(&g, id, Box::new(OnParser)).unwrap();
        // And on a previously attached channel feature.
        struct OnDependent;
        impl ChannelFeature for OnDependent {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("OnDependent").requiring("Dependent")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        layer.attach_feature(&g, id, Box::new(OnDependent)).unwrap();
        assert_eq!(layer.infos()[0].features.len(), 3);
        // Detach works and unknown names error.
        layer.detach_feature(id, "OnDependent").unwrap();
        assert!(layer.detach_feature(id, "OnDependent").is_err());
    }

    #[test]
    fn features_applied_on_output() {
        struct Collect {
            kinds_seen: Vec<String>,
        }
        impl ChannelFeature for Collect {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Collect")
            }
            fn apply(
                &mut self,
                tree: &DataTree,
                _h: &mut ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                for n in tree.iter() {
                    self.kinds_seen.push(n.item.kind.to_string());
                }
                Ok(())
            }
            fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
                if method == "count" {
                    Ok(Value::Int(self.kinds_seen.len() as i64))
                } else {
                    Err(CoreError::NoSuchMethod {
                        target: "Collect".into(),
                        method: method.into(),
                    })
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (mut g, mut layer, gps, parser, interp, _app) = gps_pipeline();
        let id = ChannelId(gps);
        layer
            .attach_feature(&g, id, Box::new(Collect { kinds_seen: vec![] }))
            .unwrap();
        layer.record(gps, &item(kinds::RAW_STRING, 1));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 1));
        let tree = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .unwrap();
        layer.apply_features(&mut g, &tree, SimTime::ZERO).unwrap();
        assert_eq!(
            layer.invoke_feature(id, "Collect", "count", &[]).unwrap(),
            Value::Int(3)
        );
        assert!(layer.invoke_feature(id, "Collect", "nope", &[]).is_err());
        assert!(layer.invoke_feature(id, "Nope", "count", &[]).is_err());
    }

    #[test]
    fn level_buffer_cap_bounds_memory_and_counts_drops() {
        let (_g, mut layer, gps, _parser, _interp, _app) = gps_pipeline();
        for v in 0..(LEVEL_BUFFER_CAP as i64 + 100) {
            layer.record(gps, &item(kinds::RAW_STRING, v));
        }
        let rt = layer.runtimes.first().unwrap();
        assert_eq!(rt.levels[0].pending.len(), LEVEL_BUFFER_CAP);
        let stats = layer.stats(layer.infos()[0].id).unwrap();
        assert_eq!(stats.dropped, 100);
        assert_eq!(stats.buffered, LEVEL_BUFFER_CAP as u64);
    }

    #[test]
    fn lazy_skips_materialization_until_demand() {
        let (g, mut layer, gps, parser, interp, _app) = gps_pipeline();
        layer.set_policy(TreePolicy::Lazy);
        let id = ChannelId(gps);

        // No feature, no history: outputs complete without a tree, but
        // all bookkeeping still runs.
        layer.record(gps, &item(kinds::RAW_STRING, 1));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 1));
        assert!(layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .is_none());
        let stats = layer.stats(id).unwrap();
        assert_eq!(
            (stats.outputs, stats.materialized, stats.skipped),
            (1, 0, 1)
        );
        assert_eq!(stats.buffered, 0, "claimed entries are still pruned");

        // Attaching a feature creates demand; logical time carries on
        // exactly where the skipped outputs left it.
        struct Probe;
        impl ChannelFeature for Probe {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Probe")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        layer.attach_feature(&g, id, Box::new(Probe)).unwrap();
        layer.record(gps, &item(kinds::RAW_STRING, 2));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 2));
        let tree = layer
            .record(interp, &item(kinds::POSITION_WGS84, 2))
            .expect("demand materializes the tree");
        assert_eq!(tree.root.logical, 2, "logical time continued while lazy");
        assert_eq!(tree.root.range, Some((2, 2)));
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn history_subscription_demands_and_retains_trees() {
        let (_g, mut layer, gps, parser, interp, _app) = gps_pipeline();
        layer.set_policy(TreePolicy::Lazy);
        let id = ChannelId(gps);
        layer.subscribe_history(id, 2).unwrap();
        for v in 1..=3 {
            layer.record(gps, &item(kinds::RAW_STRING, v));
            layer.record(parser, &item(kinds::NMEA_SENTENCE, v));
            assert!(layer
                .record(interp, &item(kinds::POSITION_WGS84, v))
                .is_some());
        }
        let history = layer.history(id).unwrap();
        assert_eq!(history.len(), 2, "ring keeps the last `capacity` trees");
        assert_eq!(history[0].root.logical, 2);
        assert_eq!(history[1].root.logical, 3);
        layer.unsubscribe_history(id).unwrap();
        assert!(layer.history(id).unwrap().is_empty());
        layer.record(interp, &item(kinds::POSITION_WGS84, 9));
        assert_eq!(layer.stats(id).unwrap().skipped, 1);
    }
}
