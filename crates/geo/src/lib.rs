//! Geodesy substrate for the PerPos positioning middleware.
//!
//! This crate provides the coordinate systems and geometric primitives that
//! every other PerPos crate builds on:
//!
//! * [`Wgs84`] — global geodetic coordinates (the position format the
//!   paper's *Interpreter* component produces, Fig. 1/4),
//! * [`Ecef`] — earth-centred earth-fixed Cartesian coordinates used as the
//!   exact intermediate for frame conversions,
//! * [`LocalFrame`] / [`Enu`] — east-north-up tangent planes, used to map
//!   between global positions and building-local metric coordinates,
//! * [`Point2`], [`Vec2`], [`Segment2`] — planar geometry primitives used by
//!   the building model (walls, rooms) and the particle filter.
//!
//! # Examples
//!
//! ```
//! use perpos_geo::{Wgs84, LocalFrame};
//!
//! let aarhus = Wgs84::new(56.1629, 10.2039, 0.0)?;
//! let nearby = Wgs84::new(56.1630, 10.2041, 0.0)?;
//! let d = aarhus.distance_m(&nearby);
//! assert!(d > 10.0 && d < 25.0);
//!
//! // Project into a local metric frame anchored at the first point.
//! let frame = LocalFrame::new(aarhus);
//! let p = frame.to_local(&nearby);
//! assert!(p.x.abs() < 20.0 && p.y.abs() < 15.0);
//! # Ok::<(), perpos_geo::GeoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ecef;
mod enu;
mod error;
mod planar;
mod wgs84;

pub use ecef::Ecef;
pub use enu::{Enu, LocalFrame};
pub use error::GeoError;
pub use planar::{Point2, Segment2, Vec2};
pub use wgs84::Wgs84;

/// Mean Earth radius in metres (IUGG), used by the haversine formulas.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// WGS-84 ellipsoid semi-major axis in metres.
pub const WGS84_A: f64 = 6_378_137.0;

/// WGS-84 ellipsoid flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;

/// Normalizes an angle in degrees to the half-open interval `[0, 360)`.
///
/// ```
/// assert_eq!(perpos_geo::normalize_deg(370.0), 10.0);
/// assert_eq!(perpos_geo::normalize_deg(-10.0), 350.0);
/// ```
pub fn normalize_deg(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// Normalizes an angle in radians to `(-pi, pi]`.
pub fn normalize_rad(rad: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut r = rad % two_pi;
    if r <= -std::f64::consts::PI {
        r += two_pi;
    } else if r > std::f64::consts::PI {
        r -= two_pi;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_deg_wraps() {
        assert_eq!(normalize_deg(0.0), 0.0);
        assert_eq!(normalize_deg(360.0), 0.0);
        assert_eq!(normalize_deg(725.0), 5.0);
        assert_eq!(normalize_deg(-725.0), 355.0);
    }

    #[test]
    fn normalize_rad_wraps() {
        let pi = std::f64::consts::PI;
        assert!((normalize_rad(3.0 * pi) - pi).abs() < 1e-12);
        assert!((normalize_rad(-3.0 * pi) - pi).abs() < 1e-12);
        assert_eq!(normalize_rad(0.25), 0.25);
    }
}
