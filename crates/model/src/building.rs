use perpos_geo::{LocalFrame, Point2, Segment2, Wgs84};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Polygon;

/// Symbolic identifier of a room — the "RoomID" position format of the
/// paper's Room Number Application (Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoomId(String);

impl RoomId {
    /// Creates a room identifier.
    pub fn new(id: impl Into<String>) -> Self {
        RoomId(id.into())
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RoomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RoomId {
    fn from(s: &str) -> Self {
        RoomId::new(s)
    }
}

/// A room on a floor: a named polygon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Room {
    id: RoomId,
    name: String,
    outline: Polygon,
}

impl Room {
    /// Creates a room from an identifier, a human-readable name and its
    /// floor-plan outline.
    pub fn new(id: impl Into<RoomId>, name: impl Into<String>, outline: Polygon) -> Self {
        Room {
            id: id.into(),
            name: name.into(),
            outline,
        }
    }

    /// The room identifier.
    pub fn id(&self) -> &RoomId {
        &self.id
    }

    /// The human-readable room name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The floor-plan outline.
    pub fn outline(&self) -> &Polygon {
        &self.outline
    }

    /// Whether the planar point is inside the room.
    pub fn contains(&self, p: &Point2) -> bool {
        self.outline.contains(p)
    }
}

/// A door: an opening in a wall connecting two rooms (or a room and the
/// outside). Motion through a door is not blocked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Door {
    /// The opening segment in floor-plan coordinates.
    pub span: Segment2,
    /// Rooms this door connects; `None` means the outside.
    pub connects: (Option<RoomId>, Option<RoomId>),
}

/// One storey of a building: rooms, walls and doors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floor {
    level: i32,
    rooms: Vec<Room>,
    walls: Vec<Segment2>,
    doors: Vec<Door>,
}

impl Floor {
    /// Creates a floor at the given level.
    pub fn new(level: i32) -> Self {
        Floor {
            level,
            rooms: Vec::new(),
            walls: Vec::new(),
            doors: Vec::new(),
        }
    }

    /// The floor level (0 = ground).
    pub fn level(&self) -> i32 {
        self.level
    }

    /// Rooms on this floor.
    pub fn rooms(&self) -> &[Room] {
        &self.rooms
    }

    /// Wall segments of this floor.
    pub fn walls(&self) -> &[Segment2] {
        &self.walls
    }

    /// Doors on this floor.
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    /// Adds a room.
    pub fn add_room(&mut self, room: Room) -> &mut Self {
        self.rooms.push(room);
        self
    }

    /// Adds a wall segment.
    pub fn add_wall(&mut self, wall: Segment2) -> &mut Self {
        self.walls.push(wall);
        self
    }

    /// Adds a door.
    pub fn add_door(&mut self, door: Door) -> &mut Self {
        self.doors.push(door);
        self
    }

    /// The first room containing `p`, scanning in insertion order.
    pub fn room_at(&self, p: Point2) -> Option<&Room> {
        self.rooms.iter().find(|r| r.contains(&p))
    }

    /// Whether straight-line motion from `from` to `to` crosses any wall.
    pub fn path_blocked(&self, from: Point2, to: Point2) -> bool {
        let motion = Segment2::new(from, to);
        self.walls.iter().any(|w| w.intersects(&motion))
    }
}

/// A building: floors plus the tangent-plane frame anchoring the floor
/// plan to global coordinates.
///
/// Acts as the paper's location model service: it resolves WGS-84
/// positions to symbolic room identifiers and answers wall-crossing
/// queries for movement constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Building {
    name: String,
    frame: LocalFrame,
    floors: Vec<Floor>,
}

impl Building {
    /// Creates an empty building anchored at `origin`.
    pub fn new(name: impl Into<String>, origin: Wgs84) -> Self {
        Building {
            name: name.into(),
            frame: LocalFrame::new(origin),
            floors: Vec::new(),
        }
    }

    /// The building name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local tangent-plane frame of the floor plan.
    pub fn frame(&self) -> &LocalFrame {
        &self.frame
    }

    /// The floors of the building.
    pub fn floors(&self) -> &[Floor] {
        &self.floors
    }

    /// Adds a floor. Floors can be added in any order.
    pub fn add_floor(&mut self, floor: Floor) -> &mut Self {
        self.floors.push(floor);
        self
    }

    /// The floor at `level`, if present.
    pub fn floor(&self, level: i32) -> Option<&Floor> {
        self.floors.iter().find(|f| f.level() == level)
    }

    /// The room containing the planar point on the given floor level.
    pub fn room_at(&self, p: Point2, level: i32) -> Option<&Room> {
        self.floor(level)?.room_at(p)
    }

    /// Resolves a global position to a room on the given floor.
    ///
    /// This is the Resolver step of the Room Number Application pipeline
    /// (Fig. 1): WGS-84 in, RoomID out.
    pub fn resolve_wgs84(&self, p: &Wgs84, level: i32) -> Option<&Room> {
        self.room_at(self.frame.to_local(p), level)
    }

    /// Whether straight-line motion between two floor-plan points crosses
    /// a wall on the given floor. Used by the particle filter as a
    /// movement constraint (paper §3.2, Fig. 6).
    pub fn path_blocked(&self, from: Point2, to: Point2, level: i32) -> bool {
        self.floor(level).is_some_and(|f| f.path_blocked(from, to))
    }

    /// Whether the planar point is anywhere inside the building outline
    /// on the given floor (inside any room).
    pub fn inside(&self, p: Point2, level: i32) -> bool {
        self.room_at(p, level).is_some()
    }
}

/// Builder producing rectangular office floors: a central corridor with
/// rooms on both sides, door gaps into the corridor — the floor-plan shape
/// visible in the paper's Fig. 6.
///
/// ```
/// use perpos_geo::Wgs84;
/// use perpos_model::BuildingBuilder;
///
/// let building = BuildingBuilder::new("Hopper Building", Wgs84::new(56.17, 10.19, 0.0)?)
///     .corridor_floor(0, 4, 5.0, 4.0, 2.5)
///     .build();
/// assert_eq!(building.floors().len(), 1);
/// assert_eq!(building.floor(0).unwrap().rooms().len(), 9); // 8 rooms + corridor
/// # Ok::<(), perpos_geo::GeoError>(())
/// ```
#[derive(Debug)]
pub struct BuildingBuilder {
    building: Building,
}

impl BuildingBuilder {
    /// Starts a builder for a building anchored at `origin`.
    pub fn new(name: impl Into<String>, origin: Wgs84) -> Self {
        BuildingBuilder {
            building: Building::new(name, origin),
        }
    }

    /// Adds a pre-constructed floor.
    pub fn floor(mut self, floor: Floor) -> Self {
        self.building.add_floor(floor);
        self
    }

    /// Adds a classic office floor at `level`:
    ///
    /// * `rooms_per_side` rooms of `room_w × room_d` metres on each side of
    ///   a central corridor of width `corridor_w`,
    /// * outer walls all around, dividing walls between rooms,
    /// * a 1 m door gap from every room into the corridor.
    ///
    /// The floor spans `x ∈ [0, rooms_per_side * room_w]` and
    /// `y ∈ [0, 2 * room_d + corridor_w]`, with the corridor horizontal in
    /// the middle. Room ids are `R<k>` counted row-major from the south
    /// row; the corridor id is `CORRIDOR<level>`.
    pub fn corridor_floor(
        mut self,
        level: i32,
        rooms_per_side: usize,
        room_w: f64,
        room_d: f64,
        corridor_w: f64,
    ) -> Self {
        assert!(rooms_per_side > 0, "need at least one room per side");
        assert!(
            room_w > 1.5 && room_d > 0.5 && corridor_w > 0.5,
            "rooms must fit a 1 m door and people"
        );
        let mut floor = Floor::new(level);
        let width = rooms_per_side as f64 * room_w;
        let south_y = room_d;
        let north_y = room_d + corridor_w;
        let total_h = 2.0 * room_d + corridor_w;
        let door_half = 0.5;

        // Corridor room.
        floor.add_room(Room {
            id: RoomId::new(format!("CORRIDOR{level}")),
            name: format!("Corridor {level}"),
            outline: Polygon::rectangle(0.0, south_y, width, north_y),
        });

        // Outer walls.
        let sw = Point2::new(0.0, 0.0);
        let se = Point2::new(width, 0.0);
        let ne = Point2::new(width, total_h);
        let nw = Point2::new(0.0, total_h);
        floor.add_wall(Segment2::new(sw, se));
        floor.add_wall(Segment2::new(se, ne));
        floor.add_wall(Segment2::new(ne, nw));
        floor.add_wall(Segment2::new(nw, sw));

        let mut room_index = 0usize;
        for (row, (y0, y1, wall_y)) in [
            (0.0, south_y, south_y),     // south row, corridor wall at y = room_d
            (north_y, total_h, north_y), // north row, corridor wall at y = room_d + corridor_w
        ]
        .into_iter()
        .enumerate()
        {
            for i in 0..rooms_per_side {
                let x0 = i as f64 * room_w;
                let x1 = x0 + room_w;
                let id = RoomId::new(format!("R{room_index}"));
                floor.add_room(Room {
                    id: id.clone(),
                    name: format!("Room {room_index} (row {row})"),
                    outline: Polygon::rectangle(x0, y0, x1, y1),
                });
                room_index += 1;

                // Corridor-facing wall with a centred 1 m door gap.
                let door_centre = (x0 + x1) / 2.0;
                let gap0 = door_centre - door_half;
                let gap1 = door_centre + door_half;
                floor.add_wall(Segment2::new(
                    Point2::new(x0, wall_y),
                    Point2::new(gap0, wall_y),
                ));
                floor.add_wall(Segment2::new(
                    Point2::new(gap1, wall_y),
                    Point2::new(x1, wall_y),
                ));
                floor.add_door(Door {
                    span: Segment2::new(Point2::new(gap0, wall_y), Point2::new(gap1, wall_y)),
                    connects: (Some(id), Some(RoomId::new(format!("CORRIDOR{level}")))),
                });

                // Dividing wall to the next room in the row.
                if i + 1 < rooms_per_side {
                    floor.add_wall(Segment2::new(Point2::new(x1, y0), Point2::new(x1, y1)));
                }
            }
        }

        self.building.add_floor(floor);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Building {
        self.building
    }
}

/// A small two-sided office floor used throughout tests, examples and the
/// Fig. 6 experiment: four rooms per side (`R0`–`R7`), a central corridor,
/// anchored near Aarhus.
pub fn demo_building() -> Building {
    let origin = Wgs84::new(56.17, 10.19, 0.0).expect("demo origin is valid");
    BuildingBuilder::new("Demo Office", origin)
        .corridor_floor(0, 4, 5.0, 4.0, 2.5)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_building_room_layout() {
        let b = demo_building();
        let f = b.floor(0).unwrap();
        assert_eq!(f.rooms().len(), 9);
        assert_eq!(f.doors().len(), 8);
        // South row room 0 spans x 0..5, y 0..4.
        assert_eq!(
            b.room_at(Point2::new(2.5, 2.0), 0).unwrap().id().as_str(),
            "R0"
        );
        // North row first room is R4 at y 6.5..10.5.
        assert_eq!(
            b.room_at(Point2::new(2.5, 8.0), 0).unwrap().id().as_str(),
            "R4"
        );
        // Corridor in the middle.
        assert_eq!(
            b.room_at(Point2::new(10.0, 5.0), 0).unwrap().id().as_str(),
            "CORRIDOR0"
        );
        // Outside.
        assert!(b.room_at(Point2::new(-1.0, 5.0), 0).is_none());
        assert!(b.room_at(Point2::new(10.0, 5.0), 1).is_none());
    }

    #[test]
    fn walls_block_motion_but_doors_do_not() {
        let b = demo_building();
        // R0 centre to corridor through the door (door at x=2.5, y=4).
        assert!(!b.path_blocked(Point2::new(2.5, 2.0), Point2::new(2.5, 5.0), 0));
        // R0 centre to corridor through the wall (x=1, no door there).
        assert!(b.path_blocked(Point2::new(1.0, 2.0), Point2::new(1.0, 5.0), 0));
        // R0 to R1 through dividing wall at x=5.
        assert!(b.path_blocked(Point2::new(2.5, 2.0), Point2::new(7.5, 2.0), 0));
        // Within one room nothing blocks.
        assert!(!b.path_blocked(Point2::new(1.0, 1.0), Point2::new(4.0, 3.0), 0));
        // Through the outer wall.
        assert!(b.path_blocked(Point2::new(2.0, 2.0), Point2::new(2.0, -3.0), 0));
    }

    #[test]
    fn resolve_wgs84_round_trip() {
        let b = demo_building();
        let inside_r0 = b.frame().from_local(&Point2::new(2.5, 2.0));
        assert_eq!(b.resolve_wgs84(&inside_r0, 0).unwrap().id().as_str(), "R0");
        let outside = b.frame().from_local(&Point2::new(-50.0, -50.0));
        assert!(b.resolve_wgs84(&outside, 0).is_none());
    }

    #[test]
    fn missing_floor_behaves_benignly() {
        let b = demo_building();
        assert!(b.floor(3).is_none());
        assert!(!b.path_blocked(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0), 3));
        assert!(!b.inside(Point2::new(2.0, 2.0), 3));
    }

    #[test]
    fn door_spans_recorded() {
        let b = demo_building();
        let f = b.floor(0).unwrap();
        for d in f.doors() {
            assert!((d.span.length() - 1.0).abs() < 1e-9);
            assert!(d
                .connects
                .1
                .as_ref()
                .unwrap()
                .as_str()
                .starts_with("CORRIDOR"));
        }
    }

    #[test]
    #[should_panic(expected = "at least one room")]
    fn builder_rejects_zero_rooms() {
        let origin = Wgs84::new(0.0, 0.0, 0.0).unwrap();
        let _ = BuildingBuilder::new("x", origin).corridor_floor(0, 0, 5.0, 4.0, 2.0);
    }

    #[test]
    fn building_serde_round_trip() {
        // Location models are data: they must persist and reload intact.
        let b = demo_building();
        let json = serde_json::to_string(&b).unwrap();
        let back: Building = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
        assert_eq!(
            back.room_at(Point2::new(2.5, 2.0), 0)
                .unwrap()
                .id()
                .as_str(),
            "R0"
        );
    }

    #[test]
    fn multi_floor_lookup() {
        let origin = Wgs84::new(56.17, 10.19, 0.0).unwrap();
        let b = BuildingBuilder::new("Tower", origin)
            .corridor_floor(0, 2, 5.0, 4.0, 2.0)
            .corridor_floor(1, 3, 5.0, 4.0, 2.0)
            .build();
        assert_eq!(b.floor(0).unwrap().rooms().len(), 5);
        assert_eq!(b.floor(1).unwrap().rooms().len(), 7);
    }
}
