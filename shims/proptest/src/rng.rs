//! Deterministic sampling RNG (xorshift64*) for the proptest shim.

/// Fixed-seed pseudo-random source driving all strategies.
#[derive(Debug, Clone)]
pub struct SampleRng {
    state: u64,
}

impl SampleRng {
    /// Creates a generator from `seed` (zero is remapped — xorshift has a
    /// fixed point at zero).
    pub fn seeded(seed: u64) -> Self {
        SampleRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::SampleRng;

    #[test]
    fn deterministic_and_nondegenerate() {
        let mut a = SampleRng::seeded(1);
        let mut b = SampleRng::seeded(1);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = SampleRng::seeded(0);
        assert_ne!(z.next_u64(), 0);
    }
}
