//! Shard-level circuit breaker: escalates repeated instance failures to
//! a whole-shard quarantine with seeded exponential backoff.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Cap on the watchdog's backoff doubling, mirroring the per-node
/// supervisor's [`MAX_BACKOFF_LEVEL`](crate::supervision::MAX_BACKOFF_LEVEL).
pub const MAX_SHARD_BACKOFF_LEVEL: u32 = 10;

/// Watches one shard's fault stream and opens a quarantine window when
/// instance failures cluster: `threshold` faults within the last
/// `window` shard steps trip the breaker for `base_backoff * 2^level`
/// steps plus a seeded jitter of up to half that. Each consecutive trip
/// doubles the pause (capped); a clean round resets the ladder.
#[derive(Debug, Clone)]
pub struct Watchdog {
    threshold: u32,
    window: u64,
    base_backoff: u64,
    rng: StdRng,
    level: u32,
    recent: VecDeque<u64>,
    until: Option<u64>,
    quarantines: u64,
}

impl Watchdog {
    /// Creates a watchdog tripping after `threshold` faults within
    /// `window` steps, pausing `base_backoff` steps at first.
    ///
    /// The `seed` is **shard-local** by contract: the pool derives it
    /// as `FleetConfig::seed + shard_id` at construction, each watchdog
    /// owns its own RNG, and jitter draws are a pure function of this
    /// seed and the shard's own fault history. No draw ever depends on
    /// another shard's activity or on shard visitation order — which is
    /// exactly why backoff schedules stay byte-identical when a
    /// parallel [`FleetScheduler`](crate::fleet::FleetScheduler) steps
    /// the shards concurrently or in permuted order.
    pub fn new(threshold: u32, window: u64, base_backoff: u64, seed: u64) -> Self {
        Watchdog {
            threshold: threshold.max(1),
            window: window.max(1),
            base_backoff: base_backoff.max(1),
            rng: StdRng::seed_from_u64(seed),
            level: 0,
            recent: VecDeque::new(),
            until: None,
            quarantines: 0,
        }
    }

    /// Records one instance fault at shard step `step`; returns `true`
    /// when this fault trips the breaker.
    pub fn record_fault(&mut self, step: u64) -> bool {
        self.recent.push_back(step);
        while let Some(&front) = self.recent.front() {
            if front + self.window <= step {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        if self.recent.len() >= self.threshold as usize {
            let base = self
                .base_backoff
                .saturating_mul(1 << self.level.min(MAX_SHARD_BACKOFF_LEVEL));
            let jitter = (base as f64 * 0.5 * self.rng.gen::<f64>()) as u64;
            self.until = Some(step + base + jitter);
            self.level = (self.level + 1).min(MAX_SHARD_BACKOFF_LEVEL);
            self.quarantines += 1;
            self.recent.clear();
            return true;
        }
        false
    }

    /// Records a shard round that completed without any instance fault;
    /// closes the ladder so the next trip starts from the base backoff.
    pub fn record_clean_round(&mut self) {
        self.level = 0;
    }

    /// When quarantined at `step`, the step at which the shard may run
    /// again; `None` while the breaker is closed.
    pub fn quarantined_until(&self, step: u64) -> Option<u64> {
        self.until.filter(|&u| u > step)
    }

    /// Number of times the breaker has tripped.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_when_faults_cluster() {
        let mut w = Watchdog::new(3, 10, 4, 1);
        assert!(!w.record_fault(0));
        assert!(!w.record_fault(1));
        assert!(w.record_fault(2), "third fault within the window trips");
        assert_eq!(w.quarantines(), 1);
        let until = w.quarantined_until(2).unwrap();
        assert!(
            (6..=8).contains(&until),
            "base 4 + jitter <= 2 from step 2, got {until}"
        );
        assert!(w.quarantined_until(until).is_none(), "closes at the bound");
    }

    #[test]
    fn old_faults_age_out_of_the_window() {
        let mut w = Watchdog::new(3, 5, 4, 1);
        assert!(!w.record_fault(0));
        assert!(!w.record_fault(1));
        // Step 6: the fault at step 0 (and 1) aged out; no trip.
        assert!(!w.record_fault(6));
        assert!(!w.record_fault(7));
        assert!(w.record_fault(8));
    }

    #[test]
    fn backoff_doubles_until_clean_round_resets() {
        let mut w = Watchdog::new(1, 4, 8, 2);
        assert!(w.record_fault(0));
        let first = w.quarantined_until(0).unwrap();
        assert!((8..=12).contains(&first), "base 8 + jitter, got {first}");
        assert!(w.record_fault(first));
        let second = w.quarantined_until(first).unwrap() - first;
        assert!(
            (16..=24).contains(&second),
            "doubled to 16 + jitter, got {second}"
        );
        w.record_clean_round();
        assert!(w.record_fault(100));
        let after_reset = w.quarantined_until(100).unwrap() - 100;
        assert!(
            (8..=12).contains(&after_reset),
            "ladder reset to base, got {after_reset}"
        );
    }

    #[test]
    fn seeded_watchdogs_replay_identically() {
        let mut a = Watchdog::new(1, 4, 8, 7);
        let mut b = Watchdog::new(1, 4, 8, 7);
        for step in [0u64, 20, 50, 90] {
            a.record_fault(step);
            b.record_fault(step);
            assert_eq!(a.quarantined_until(step), b.quarantined_until(step));
        }
    }
}
