//! Experiment "overhead" — the cost of translucency. The paper defers
//! performance to future work ("we plan to research how traditional
//! software qualities can be supported", §6); this experiment measures
//! what the reflective machinery costs per data item so the deferral can
//! be quantified: a direct function-call pipeline vs the processing graph
//! vs the graph with attached features vs full channel (data-tree)
//! bookkeeping.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_overhead --release`

#![allow(clippy::unwrap_used)]
use std::any::Any;
use std::time::Instant;

use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos_core::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
use perpos_core::prelude::*;

const ITEMS: u64 = 200_000;

/// The workload: parse-ish transform of an integer payload, 3 stages.
fn direct_pipeline(n: u64) -> i64 {
    let mut acc = 0i64;
    for i in 0..n {
        // stage 1: "parse" (black_box defeats closed-form optimization)
        let v = std::hint::black_box(i as i64);
        // stage 2: "interpret"
        let v = std::hint::black_box(v * 2 + 1);
        // stage 3: "deliver"
        acc = acc.wrapping_add(std::hint::black_box(v));
    }
    acc
}

struct NoopFeature;
impl ComponentFeature for NoopFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("Noop")
    }
    fn on_produce(
        &mut self,
        item: DataItem,
        _h: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        Ok(FeatureAction::Continue(item))
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct NoopChannelFeature;
impl ChannelFeature for NoopChannelFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("NoopChannel")
    }
    fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn graph_pipeline(n: u64, features_per_node: usize, channel_features: usize) -> f64 {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        Some(Value::Int(i))
    }));
    let parse = mw.add_component(FnProcessor::new(
        "parse",
        vec![kinds::RAW_STRING],
        kinds::NMEA_SENTENCE,
        |item| Some(item.payload.clone()),
    ));
    let interp = mw.add_component(FnProcessor::new(
        "interp",
        vec![kinds::NMEA_SENTENCE],
        kinds::POSITION_WGS84,
        |item| item.payload.as_i64().map(|v| Value::Int(v * 2 + 1).into()),
    ));
    let app = mw.application_sink();
    mw.connect(src, parse, 0).unwrap();
    mw.connect(parse, interp, 0).unwrap();
    mw.connect(interp, app, 0).unwrap();
    for node in [src, parse, interp] {
        for _ in 0..features_per_node {
            mw.attach_feature(node, NoopFeature).unwrap();
        }
    }
    if channel_features > 0 {
        let channel = mw.channel_into(app, 0).unwrap();
        for _ in 0..channel_features {
            mw.attach_channel_feature(channel, NoopChannelFeature)
                .unwrap();
        }
    }
    let start = Instant::now();
    for _ in 0..n {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_micros(1));
    }
    start.elapsed().as_nanos() as f64 / n as f64
}

fn main() {
    println!("=== translucency overhead: ns per item through a 3-stage pipeline ===\n");

    // Warm up and measure the direct version.
    let start = Instant::now();
    let sink = direct_pipeline(ITEMS * 10);
    let direct_ns = start.elapsed().as_nanos() as f64 / (ITEMS * 10) as f64;
    std::hint::black_box(sink);

    println!("{:<44} {:>10}", "configuration", "ns/item");
    println!("{}", "-".repeat(56));
    println!(
        "{:<44} {:>10.1}",
        "direct function calls (no middleware)", direct_ns
    );
    let base = graph_pipeline(ITEMS / 10, 0, 0);
    println!(
        "{:<44} {:>10.1}",
        "processing graph (reified, inspectable)", base
    );
    for nf in [1, 2, 4, 8] {
        let ns = graph_pipeline(ITEMS / 10, nf, 0);
        println!(
            "{:<44} {:>10.1}",
            format!("graph + {nf} component feature(s) per node"),
            ns
        );
    }
    let chan = graph_pipeline(ITEMS / 10, 0, 1);
    println!(
        "{:<44} {:>10.1}",
        "graph + channel data-tree bookkeeping", chan
    );
    let full = graph_pipeline(ITEMS / 10, 2, 1);
    println!(
        "{:<44} {:>10.1}",
        "graph + 2 features/node + channel trees", full
    );
    println!(
        "\n(the graph costs microseconds per item — orders of magnitude above raw calls but\n far below sensor rates: a 1 Hz GPS needs ~10 items/s, leaving 5+ orders of headroom)"
    );
}
