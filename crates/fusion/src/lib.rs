//! Sensor fusion for PerPos: the probabilistic position tracking of the
//! paper's §3.2 plus baselines.
//!
//! * [`LikelihoodFeature`] — the Channel Feature of Fig. 5: it collects
//!   HDOP values from the GPS channel's data trees and serves likelihood
//!   estimates to the particle filter,
//! * [`ParticleFilter`] — an SIR (sample–importance–resample) filter
//!   implemented as a *merge* Processing Component, optionally
//!   constrained by a building model ("location models to impose
//!   restrictions on possible movements", §1) — the Fig. 6 system,
//! * [`KalmanFilter`] — a constant-velocity Kalman smoother baseline,
//! * [`CentroidFusion`] — an accuracy-weighted centroid baseline,
//! * [`transport`] — the segmentation → decision tree → HMM
//!   transportation-mode pipeline the paper's introduction motivates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod centroid;
mod kalman;
mod likelihood;
mod particle;
pub mod transport;

pub use centroid::CentroidFusion;
pub use kalman::KalmanFilter;
pub use likelihood::{LikelihoodFeature, LikelihoodHandle};
pub use particle::ParticleFilter;
