use perpos_core::SimDuration;
use std::fmt;

/// Power-draw constants for a smartphone-class tracking device, in
/// watts / joules.
///
/// Defaults follow the published EnTracked-era measurements (Nokia N95
/// class): an active GPS draws roughly 0.30–0.45 W, acquisition is more
/// expensive than tracking, the accelerometer is two orders of magnitude
/// cheaper, and each position report transmitted over the cellular radio
/// costs on the order of a joule once radio ramp-up is accounted for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// GPS draw while tracking with a fix, in watts.
    pub gps_tracking_w: f64,
    /// GPS draw while acquiring satellites, in watts.
    pub gps_acquiring_w: f64,
    /// Accelerometer draw while sampling, in watts.
    pub accelerometer_w: f64,
    /// Baseline device draw (CPU idle, middleware), in watts.
    pub idle_w: f64,
    /// Energy per transmitted position report, in joules.
    pub transmission_j: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            gps_tracking_w: 0.33,
            gps_acquiring_w: 0.45,
            accelerometer_w: 0.005,
            idle_w: 0.035,
            transmission_j: 1.2,
        }
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gps {:.2}/{:.2} W, accel {:.3} W, idle {:.3} W, tx {:.1} J",
            self.gps_tracking_w,
            self.gps_acquiring_w,
            self.accelerometer_w,
            self.idle_w,
            self.transmission_j
        )
    }
}

/// Integrates a device's energy consumption over simulated time.
///
/// The experiment loop samples the device state (GPS on/acquiring,
/// accelerometer on) once per tick and reports transmissions as they
/// happen; the meter accumulates joules.
///
/// ```
/// use perpos_core::SimDuration;
/// use perpos_energy::{EnergyMeter, PowerModel};
///
/// let mut meter = EnergyMeter::new(PowerModel::default());
/// meter.sample(true, false, true, SimDuration::from_secs(60)); // GPS tracking
/// meter.sample(false, false, true, SimDuration::from_secs(60)); // GPS off
/// meter.add_transmissions(3);
/// assert!(meter.total_j() > 20.0);
/// assert_eq!(meter.gps_on_s(), 60.0);
/// assert_eq!(meter.transmissions(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    model: PowerModel,
    total_j: f64,
    gps_on_s: f64,
    gps_acquiring_s: f64,
    transmissions: u64,
    elapsed_s: f64,
}

impl EnergyMeter {
    /// Creates a meter over the default power model.
    pub fn new(model: PowerModel) -> Self {
        EnergyMeter {
            model,
            ..EnergyMeter::default()
        }
    }

    /// Accounts one interval of device activity.
    pub fn sample(&mut self, gps_on: bool, gps_acquiring: bool, accel_on: bool, dt: SimDuration) {
        let dt_s = dt.as_secs_f64();
        self.elapsed_s += dt_s;
        let mut w = self.model.idle_w;
        if gps_on {
            self.gps_on_s += dt_s;
            if gps_acquiring {
                self.gps_acquiring_s += dt_s;
                w += self.model.gps_acquiring_w;
            } else {
                w += self.model.gps_tracking_w;
            }
        }
        if accel_on {
            w += self.model.accelerometer_w;
        }
        self.total_j += w * dt_s;
    }

    /// Accounts `n` transmitted position reports.
    pub fn add_transmissions(&mut self, n: u64) {
        self.transmissions += n;
        self.total_j += self.model.transmission_j * n as f64;
    }

    /// Total consumed energy in joules.
    pub fn total_j(&self) -> f64 {
        self.total_j
    }

    /// Mean power over the sampled interval in watts.
    pub fn mean_power_w(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.total_j / self.elapsed_s
        }
    }

    /// Seconds the GPS spent powered.
    pub fn gps_on_s(&self) -> f64 {
        self.gps_on_s
    }

    /// Seconds the GPS spent acquiring.
    pub fn gps_acquiring_s(&self) -> f64 {
        self.gps_acquiring_s
    }

    /// Number of accounted transmissions.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Total sampled wall time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_device_draws_idle_power() {
        let mut m = EnergyMeter::new(PowerModel::default());
        m.sample(false, false, false, SimDuration::from_secs(100));
        assert!((m.total_j() - 3.5).abs() < 1e-9);
        assert!((m.mean_power_w() - 0.035).abs() < 1e-12);
        assert_eq!(m.gps_on_s(), 0.0);
    }

    #[test]
    fn gps_dominates_when_active() {
        let mut on = EnergyMeter::new(PowerModel::default());
        let mut off = EnergyMeter::new(PowerModel::default());
        on.sample(true, false, true, SimDuration::from_secs(3600));
        off.sample(false, false, true, SimDuration::from_secs(3600));
        assert!(on.total_j() > off.total_j() * 5.0);
        assert_eq!(on.gps_on_s(), 3600.0);
    }

    #[test]
    fn acquisition_costs_more_than_tracking() {
        let mut acq = EnergyMeter::new(PowerModel::default());
        let mut track = EnergyMeter::new(PowerModel::default());
        acq.sample(true, true, false, SimDuration::from_secs(60));
        track.sample(true, false, false, SimDuration::from_secs(60));
        assert!(acq.total_j() > track.total_j());
        assert_eq!(acq.gps_acquiring_s(), 60.0);
    }

    #[test]
    fn transmissions_add_energy() {
        let mut m = EnergyMeter::new(PowerModel::default());
        m.add_transmissions(10);
        assert!((m.total_j() - 12.0).abs() < 1e-9);
        assert_eq!(m.transmissions(), 10);
    }

    #[test]
    fn display_model() {
        assert!(!format!("{}", PowerModel::default()).is_empty());
    }
}
