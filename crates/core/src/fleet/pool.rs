//! The fleet pool: builds the shards, drives them, and aggregates their
//! supervision counters behind a reflective surface.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use crate::data::Value;
use crate::fleet::scheduler::{chunk_plan, shuffled_indices, FleetScheduler};
use crate::fleet::shard::{InstanceFactory, Shard, ShardStats};
use crate::fleet::watchdog::Watchdog;
use crate::{CoreError, Middleware, SimDuration};

/// Sizing and supervision knobs of a [`FleetPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of shards the instances are partitioned into.
    pub shards: usize,
    /// Total middleware instances across all shards.
    pub instances: usize,
    /// Checkpoint cadence in shard rounds: every instance refreshes its
    /// [`Snapshot`](crate::fleet::Snapshot) at this interval, bounding
    /// how far a restart can rewind.
    pub checkpoint_every: u64,
    /// Instance faults within [`FleetConfig::shard_fault_window`] rounds
    /// that quarantine the whole shard.
    pub shard_fault_threshold: u32,
    /// Window, in shard rounds, over which faults count towards the
    /// threshold.
    pub shard_fault_window: u64,
    /// Base quarantine pause in shard rounds; consecutive trips double
    /// it (with seeded jitter) until a clean round resets the ladder.
    pub shard_backoff: u64,
    /// Seed feeding each shard watchdog's backoff jitter.
    pub seed: u64,
    /// How [`FleetPool::run`] distributes shards over cores. Every
    /// scheduler produces byte-identical [`ShardStats`], checkpoints
    /// and instance histories; only wall-clock differs.
    pub scheduler: FleetScheduler,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            instances: 64,
            checkpoint_every: 8,
            shard_fault_threshold: 16,
            shard_fault_window: 16,
            shard_backoff: 4,
            seed: 0xf1ee7,
            scheduler: FleetScheduler::Serial,
        }
    }
}

/// Aggregated supervision counters of a whole fleet, with the per-shard
/// breakdown preserved.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStats>,
}

impl FleetStats {
    /// Total instances across shards.
    pub fn instances(&self) -> u64 {
        self.shards.iter().map(|s| s.instances).sum()
    }

    /// Total instance-steps completed.
    pub fn live_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.live_steps).sum()
    }

    /// Total instance-steps lost to faults or quarantine.
    pub fn missed_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.missed_steps).sum()
    }

    /// Total instance faults that escaped in-instance containment.
    pub fn instance_faults(&self) -> u64 {
        self.shards.iter().map(|s| s.instance_faults).sum()
    }

    /// Total restarts (checkpoint-recovered plus cold).
    pub fn restarts(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.restarts + s.cold_restarts)
            .sum()
    }

    /// Total shard quarantines.
    pub fn quarantines(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantines).sum()
    }

    /// Fraction of attempted instance-steps that completed, across the
    /// whole fleet (`1.0` for an idle fleet).
    pub fn availability(&self) -> f64 {
        let live = self.live_steps();
        let attempted = live + self.missed_steps();
        if attempted == 0 {
            1.0
        } else {
            live as f64 / attempted as f64
        }
    }

    /// Mean steps-to-healthy over all recoveries (`0.0` without any).
    pub fn mean_recovery_steps(&self) -> f64 {
        let restarts = self.restarts();
        if restarts == 0 {
            0.0
        } else {
            let total: u64 = self.shards.iter().map(|s| s.recovery_steps).sum();
            total as f64 / restarts as f64
        }
    }

    /// Renders fleet totals plus the per-shard breakdown as a
    /// reflective [`Value`] map — the shape `invoke("fleet_stats")`
    /// serves.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("instances".into(), Value::Int(self.instances() as i64));
        map.insert("live_steps".into(), Value::Int(self.live_steps() as i64));
        map.insert(
            "missed_steps".into(),
            Value::Int(self.missed_steps() as i64),
        );
        map.insert(
            "instance_faults".into(),
            Value::Int(self.instance_faults() as i64),
        );
        map.insert("restarts".into(), Value::Int(self.restarts() as i64));
        map.insert("quarantines".into(), Value::Int(self.quarantines() as i64));
        map.insert("availability".into(), Value::Float(self.availability()));
        map.insert(
            "mean_recovery_steps".into(),
            Value::Float(self.mean_recovery_steps()),
        );
        map.insert(
            "shards".into(),
            Value::List(self.shards.iter().map(|s| s.to_value()).collect()),
        );
        Value::Map(map)
    }
}

/// Flat fleet-wide counter totals, cached on the pool so stats polling
/// inside a soak loop is O(1) instead of re-collecting (and summing)
/// every shard's counters per probe. Refreshed at construction and at
/// the end of every [`FleetPool::run`] call; after mutating shards
/// directly (via [`FleetPool::shard_mut`]) call
/// [`FleetPool::refresh_totals`]. `tests` pin the cache to the value
/// recomputed from the per-shard breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetTotals {
    /// Instances across all shards.
    pub instances: u64,
    /// Instance-steps completed.
    pub live_steps: u64,
    /// Instance-steps lost to faults or quarantine.
    pub missed_steps: u64,
    /// Faults that escaped in-instance containment.
    pub instance_faults: u64,
    /// Checkpoint-recovered restarts.
    pub restarts: u64,
    /// Cold restarts (checkpoint rejected).
    pub cold_restarts: u64,
    /// Checkpoints captured.
    pub checkpoints: u64,
    /// Shard quarantines.
    pub quarantines: u64,
    /// Steps-to-healthy summed over recoveries.
    pub recovery_steps: u64,
}

impl FleetTotals {
    /// Sums one shard's counters into the totals.
    fn absorb(&mut self, s: &ShardStats) {
        self.instances += s.instances;
        self.live_steps += s.live_steps;
        self.missed_steps += s.missed_steps;
        self.instance_faults += s.instance_faults;
        self.restarts += s.restarts;
        self.cold_restarts += s.cold_restarts;
        self.checkpoints += s.checkpoints;
        self.quarantines += s.quarantines;
        self.recovery_steps += s.recovery_steps;
    }

    /// Restarts of either kind (warm plus cold).
    pub fn total_restarts(&self) -> u64 {
        self.restarts + self.cold_restarts
    }

    /// Fraction of attempted instance-steps that completed (`1.0` for
    /// an idle fleet) — the same quantity as
    /// [`FleetStats::availability`], served from the cache.
    pub fn availability(&self) -> f64 {
        let attempted = self.live_steps + self.missed_steps;
        if attempted == 0 {
            1.0
        } else {
            self.live_steps as f64 / attempted as f64
        }
    }

    /// Mean steps-to-healthy over all recoveries (`0.0` without any).
    pub fn mean_recovery_steps(&self) -> f64 {
        let restarts = self.total_restarts();
        if restarts == 0 {
            0.0
        } else {
            self.recovery_steps as f64 / restarts as f64
        }
    }
}

/// A supervised multi-instance engine: owns [`FleetConfig::shards`]
/// shards of factory-built [`Middleware`](crate::Middleware) instances
/// and steps them under the escalation ladder described in the
/// [module docs](crate::fleet).
pub struct FleetPool {
    config: FleetConfig,
    factory: InstanceFactory,
    shards: Vec<Shard>,
    /// Rounds run so far — every shard's `steps_run` in lockstep; the
    /// schedulers use it to align their chunk plans to checkpoint
    /// boundaries across multiple `run` calls.
    rounds_run: u64,
    totals: FleetTotals,
}

impl FleetPool {
    /// Builds the fleet: `config.instances` instances partitioned
    /// contiguously over `config.shards` shards, each instance built by
    /// `factory` from its fleet-wide index and checkpointed immediately.
    pub fn new(
        config: FleetConfig,
        factory: impl Fn(usize) -> Middleware + Send + Sync + 'static,
    ) -> Self {
        let factory: InstanceFactory = Box::new(factory);
        let shard_count = config.shards.max(1);
        let per = config.instances / shard_count;
        let extra = config.instances % shard_count;
        let mut shards = Vec::with_capacity(shard_count);
        let mut next = 0usize;
        for s in 0..shard_count {
            let count = per + usize::from(s < extra);
            let watchdog = Watchdog::new(
                config.shard_fault_threshold,
                config.shard_fault_window,
                config.shard_backoff,
                config.seed.wrapping_add(s as u64),
            );
            shards.push(Shard::new(
                s,
                next..next + count,
                &factory,
                config.checkpoint_every,
                watchdog,
            ));
            next += count;
        }
        let mut pool = FleetPool {
            config,
            factory,
            shards,
            rounds_run: 0,
            totals: FleetTotals::default(),
        };
        pool.refresh_totals();
        pool
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shards, in order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Mutable access to one shard (instance reflection, soak drivers).
    pub fn shard_mut(&mut self, s: usize) -> Option<&mut Shard> {
        self.shards.get_mut(s)
    }

    /// Total live instances.
    pub fn instances(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// The scheduler [`FleetPool::run`] currently uses.
    pub fn scheduler(&self) -> FleetScheduler {
        self.config.scheduler
    }

    /// Switches the scheduler for subsequent [`FleetPool::run`] calls.
    /// Safe at any round boundary: schedulers are observationally
    /// interchangeable, so a mid-soak switch changes wall-clock only.
    pub fn set_scheduler(&mut self, scheduler: FleetScheduler) {
        self.config.scheduler = scheduler;
    }

    /// Steps every shard `rounds` times with `tick` clock advance per
    /// step, distributing shards over cores per the configured
    /// [`FleetScheduler`]. `run` is a round barrier: whatever the
    /// scheduler, every shard has completed all `rounds` when it
    /// returns, and the per-shard observables ([`ShardStats`],
    /// checkpoints, watchdog schedules, instance histories) are
    /// byte-identical across schedulers and worker counts.
    pub fn run(&mut self, rounds: u64, tick: SimDuration) {
        match self.config.scheduler {
            FleetScheduler::Serial => {
                for shard in &mut self.shards {
                    shard.run(&self.factory, rounds, tick);
                }
            }
            FleetScheduler::WorkStealing { .. } => self.run_work_stealing(rounds, tick),
            FleetScheduler::Permuted { seed } => self.run_permuted(seed, rounds, tick),
        }
        self.rounds_run += rounds;
        self.refresh_totals();
    }

    /// Work-stealing parallel stepping: for each checkpoint-aligned
    /// round-chunk, scoped workers pull shard indices off a shared
    /// atomic cursor until the chunk drains, then meet at a barrier
    /// before the next chunk — so a worker stuck on a heavy shard
    /// cannot idle the others (they steal the remaining indices), and
    /// rebalancing happens every chunk without moving shard state. The
    /// chunk alignment (see [`chunk_plan`]) is what keeps every shard's
    /// internal fault/checkpoint accounting identical to one serial
    /// `run(rounds)` call.
    fn run_work_stealing(&mut self, rounds: u64, tick: SimDuration) {
        let workers = self
            .config
            .scheduler
            .resolved_workers()
            .clamp(1, self.shards.len().max(1));
        if workers <= 1 {
            for shard in &mut self.shards {
                shard.run(&self.factory, rounds, tick);
            }
            return;
        }
        let plan = chunk_plan(self.rounds_run, rounds, self.config.checkpoint_every);
        // Each cell is locked exactly once per chunk (the cursor hands
        // every index to exactly one worker), so the mutexes are
        // uncontended — they exist to prove disjoint access to the
        // borrow checker, not to serialize work.
        let cells: Vec<Mutex<&mut Shard>> = self.shards.iter_mut().map(Mutex::new).collect();
        let cursors: Vec<AtomicUsize> = plan.iter().map(|_| AtomicUsize::new(0)).collect();
        let barrier = Barrier::new(workers);
        let factory = &self.factory;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    for (ci, &chunk) in plan.iter().enumerate() {
                        loop {
                            let i = cursors[ci].fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = cells.get(i) else { break };
                            let mut shard = cell.lock().unwrap_or_else(|p| p.into_inner());
                            shard.run(factory, chunk, tick);
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    /// The interleaving sanitizer: serial execution, but each
    /// checkpoint-aligned chunk visits the shards in a seeded permuted
    /// order. Any cross-shard coupling shows up as a deterministic
    /// divergence from [`FleetScheduler::Serial`] — no thread timing
    /// involved.
    fn run_permuted(&mut self, seed: u64, rounds: u64, tick: SimDuration) {
        let plan = chunk_plan(self.rounds_run, rounds, self.config.checkpoint_every);
        let mut state = seed;
        for &chunk in &plan {
            for i in shuffled_indices(&mut state, self.shards.len()) {
                self.shards[i].run(&self.factory, chunk, tick);
            }
        }
    }

    /// Aggregated supervision counters with per-shard breakdown.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.shards.iter().map(|s| s.stats()).collect(),
        }
    }

    /// The cached fleet-wide totals — O(1), no per-shard collection.
    /// Current as of the last [`FleetPool::run`] /
    /// [`FleetPool::refresh_totals`] call.
    pub fn totals(&self) -> FleetTotals {
        self.totals
    }

    /// Recomputes the cached [`FleetTotals`] from the shards. `run`
    /// calls this once per invocation (O(shards), amortized O(1) per
    /// polled round); call it manually after mutating shards through
    /// [`FleetPool::shard_mut`].
    pub fn refresh_totals(&mut self) {
        let mut totals = FleetTotals::default();
        for shard in &self.shards {
            totals.absorb(&shard.stats());
        }
        self.totals = totals;
    }

    /// Fleet-wide availability so far, served from the cached totals.
    pub fn availability(&self) -> f64 {
        self.totals.availability()
    }

    /// The fleet's reflective surface, mirroring
    /// [`Middleware::invoke`](crate::Middleware::invoke):
    /// `"fleet_stats"` answers with [`FleetStats::to_value`],
    /// `"availability"` with the fleet-wide fraction (from the cached
    /// totals), `"scheduler"` with the active scheduler's name and
    /// `"workers"` with the worker count the next `run` will use.
    /// `"set_scheduler"` takes the scheduler name plus an optional
    /// integer (worker cap for `"work_stealing"`, where 0 means
    /// machine-sized; shuffle seed for `"permuted"`) and answers with
    /// the name it installed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] for unknown methods and
    /// [`CoreError::BadArguments`] for a malformed `"set_scheduler"`
    /// call.
    pub fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "fleet_stats" => Ok(self.stats().to_value()),
            "availability" => Ok(Value::Float(self.availability())),
            "scheduler" => Ok(Value::from(self.config.scheduler.as_str())),
            "workers" => Ok(Value::Int(self.config.scheduler.resolved_workers() as i64)),
            "set_scheduler" => {
                let name = args.first().and_then(|v| v.as_text()).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: "set_scheduler".into(),
                        reason: "expected a text argument naming the scheduler".into(),
                    }
                })?;
                let mut scheduler =
                    FleetScheduler::from_name(name).ok_or_else(|| CoreError::BadArguments {
                        method: "set_scheduler".into(),
                        reason: format!("unknown fleet scheduler {name:?}"),
                    })?;
                if let Some(n) = args.get(1).and_then(|v| v.as_i64()) {
                    if n < 0 {
                        return Err(CoreError::BadArguments {
                            method: "set_scheduler".into(),
                            reason: "numeric argument must be non-negative".into(),
                        });
                    }
                    scheduler = match scheduler {
                        FleetScheduler::WorkStealing { .. } => FleetScheduler::WorkStealing {
                            workers: n as usize,
                        },
                        FleetScheduler::Permuted { .. } => {
                            FleetScheduler::Permuted { seed: n as u64 }
                        }
                        FleetScheduler::Serial => {
                            return Err(CoreError::BadArguments {
                                method: "set_scheduler".into(),
                                reason: "the serial scheduler takes no argument".into(),
                            })
                        }
                    };
                }
                self.set_scheduler(scheduler);
                Ok(Value::from(scheduler.as_str()))
            }
            m => Err(CoreError::NoSuchMethod {
                target: "fleet".into(),
                method: m.into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCtx, FnSource};
    use crate::data::{kinds, DataItem};
    use crate::prelude::{Component, Criteria};
    use crate::supervision::FaultPolicy;

    /// Fails (uncontained) whenever `tick % period == phase`.
    struct PeriodicFault {
        counter: u64,
        period: u64,
        phase: u64,
    }
    impl Component for PeriodicFault {
        fn descriptor(&self) -> crate::component::ComponentDescriptor {
            crate::component::ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            self.counter += 1;
            if self.period > 0 && self.counter % self.period == self.phase {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".into(),
                    reason: "periodic fault".into(),
                });
            }
            ctx.emit_value(kinds::RAW_STRING, Value::Int(self.counter as i64));
            Ok(())
        }
        fn snapshot_state(&self) -> Option<Value> {
            Some(Value::Int(self.counter as i64))
        }
        fn restore_state(&mut self, state: &Value) {
            if let Some(v) = state.as_i64() {
                self.counter = v as u64;
            }
        }
    }

    /// Faults randomly at `rate` per tick. The RNG is *environmental*:
    /// it is not part of the snapshot, and every incarnation gets a
    /// fresh seed, so a restored instance does not replay the crash —
    /// the shape real chaos has.
    struct RandomFault {
        counter: u64,
        rng: rand::rngs::StdRng,
        rate: f64,
    }
    impl Component for RandomFault {
        fn descriptor(&self) -> crate::component::ComponentDescriptor {
            crate::component::ComponentDescriptor::source("chaotic", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            use rand::Rng;
            self.counter += 1;
            if self.rng.gen::<f64>() < self.rate {
                return Err(CoreError::ComponentFailure {
                    component: "chaotic".into(),
                    reason: "random fault".into(),
                });
            }
            ctx.emit_value(kinds::RAW_STRING, Value::Int(self.counter as i64));
            Ok(())
        }
        fn snapshot_state(&self) -> Option<Value> {
            Some(Value::Int(self.counter as i64))
        }
        fn restore_state(&mut self, state: &Value) {
            if let Some(v) = state.as_i64() {
                self.counter = v as u64;
            }
        }
    }

    /// Chaos factory with *per-index* incarnation counters: the RNG
    /// reseed of incarnation `n` of instance `index` is a pure function
    /// of `(seed, index, n)`, so the fault schedule is invariant to the
    /// order in which other instances restart — the order-freedom the
    /// [`InstanceFactory`] contract demands of parallel schedulers. (A
    /// single shared counter would make reseeds depend on global
    /// interleaving and diverge under work stealing.)
    fn flaky_factory(rate: f64, seed: u64, capacity: usize) -> impl Fn(usize) -> Middleware {
        use rand::SeedableRng;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let incarnations: Arc<Vec<AtomicU64>> =
            Arc::new((0..capacity).map(|_| AtomicU64::new(0)).collect());
        move |index| {
            let n = incarnations[index].fetch_add(1, Ordering::Relaxed);
            let mut mw = Middleware::new();
            let src = mw.add_boxed_component(Box::new(RandomFault {
                counter: 0,
                rng: rand::rngs::StdRng::seed_from_u64(
                    seed ^ (index as u64).wrapping_mul(0x9E37) ^ n.wrapping_mul(0xC0FFEE),
                ),
                rate,
            }));
            let app = mw.application_sink();
            mw.connect(src, app, 0).unwrap();
            mw
        }
    }

    fn healthy_factory() -> impl Fn(usize) -> Middleware {
        |_| {
            let mut mw = Middleware::new();
            let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, |_| {
                Some(Value::Int(1))
            }));
            let app = mw.application_sink();
            mw.connect(src, app, 0).unwrap();
            mw
        }
    }

    #[test]
    fn healthy_fleet_has_full_availability() {
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 2,
                instances: 10,
                ..FleetConfig::default()
            },
            healthy_factory(),
        );
        pool.run(20, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert_eq!(pool.instances(), 10);
        assert_eq!(stats.live_steps(), 200);
        assert_eq!(stats.missed_steps(), 0);
        assert_eq!(stats.availability(), 1.0);
        assert_eq!(stats.instance_faults(), 0);
        // Every instance actually delivered every step.
        let p = pool.shards()[0]
            .instance(0)
            .unwrap()
            .location_provider(Criteria::new())
            .unwrap();
        assert_eq!(p.delivered_count(), 20);
    }

    #[test]
    fn faulted_instances_restart_from_checkpoints() {
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 1,
                instances: 4,
                checkpoint_every: 4,
                shard_fault_threshold: 100, // never quarantine here
                ..FleetConfig::default()
            },
            flaky_factory(0.05, 21, 4),
        );
        pool.run(40, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert!(stats.instance_faults() > 0, "faults were injected");
        assert_eq!(
            stats.restarts(),
            stats.instance_faults(),
            "every fault recovered by a restart"
        );
        assert_eq!(stats.shards[0].cold_restarts, 0, "checkpoints all valid");
        assert!(stats.availability() > 0.7, "most steps still completed");
        assert!(stats.availability() < 1.0, "but faults cost steps");
        assert!(stats.mean_recovery_steps() >= 1.0);
    }

    #[test]
    fn storming_shard_gets_quarantined_and_recovers() {
        // Every instance faults every 4th tick with the same phase: a
        // coordinated storm that must trip the shard watchdog.
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 1,
                instances: 8,
                checkpoint_every: 2,
                shard_fault_threshold: 8,
                shard_fault_window: 4,
                shard_backoff: 4,
                seed: 11,
                scheduler: FleetScheduler::Serial,
            },
            move |_| {
                let mut mw = Middleware::new();
                let src = mw.add_boxed_component(Box::new(PeriodicFault {
                    counter: 0,
                    period: 4,
                    phase: 0,
                }));
                let app = mw.application_sink();
                mw.connect(src, app, 0).unwrap();
                mw
            },
        );
        pool.run(64, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert!(stats.quarantines() > 0, "storm tripped the watchdog");
        assert!(
            stats.missed_steps() > stats.instance_faults(),
            "quarantine skipped whole rounds beyond the faults themselves"
        );
        // The shard is running again at the end (backoffs are finite).
        assert!(stats.live_steps() > 0);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let build = || {
            FleetPool::new(
                FleetConfig {
                    shards: 3,
                    instances: 12,
                    checkpoint_every: 4,
                    shard_fault_threshold: 4,
                    shard_fault_window: 8,
                    shard_backoff: 4,
                    seed: 99,
                    scheduler: FleetScheduler::Serial,
                },
                flaky_factory(0.1, 7, 12),
            )
        };
        let mut a = build();
        let mut b = build();
        a.run(50, SimDuration::from_millis(10));
        b.run(50, SimDuration::from_millis(10));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn fleet_stats_are_reflective() {
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 2,
                instances: 4,
                ..FleetConfig::default()
            },
            healthy_factory(),
        );
        pool.run(5, SimDuration::from_millis(10));
        let Value::Map(m) = pool.invoke("fleet_stats", &[]).unwrap() else {
            panic!("fleet_stats must be a map");
        };
        assert_eq!(m["instances"], Value::Int(4));
        assert_eq!(m["availability"], Value::Float(1.0));
        let Value::List(shards) = &m["shards"] else {
            panic!("per-shard breakdown present");
        };
        assert_eq!(shards.len(), 2);
        assert!(matches!(
            pool.invoke("nope", &[]),
            Err(CoreError::NoSuchMethod { .. })
        ));
    }

    #[test]
    fn fault_policies_contain_faults_below_the_fleet() {
        // The same flaky component under a DropItem policy never faults
        // the instance, so the fleet sees full availability.
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 1,
                instances: 4,
                ..FleetConfig::default()
            },
            move |index| {
                let mut mw = Middleware::new();
                let src = mw.add_boxed_component(Box::new(PeriodicFault {
                    counter: 0,
                    period: 5,
                    phase: (index as u64) % 5,
                }));
                let app = mw.application_sink();
                mw.connect(src, app, 0).unwrap();
                mw.set_fault_policy(src, FaultPolicy::DropItem).unwrap();
                mw
            },
        );
        pool.run(30, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert_eq!(stats.instance_faults(), 0);
        assert_eq!(stats.availability(), 1.0);
    }

    fn chaotic_config(scheduler: FleetScheduler) -> FleetConfig {
        FleetConfig {
            shards: 5,
            instances: 20,
            checkpoint_every: 4,
            shard_fault_threshold: 3,
            shard_fault_window: 8,
            shard_backoff: 4,
            seed: 77,
            scheduler,
        }
    }

    #[test]
    fn schedulers_are_observationally_identical() {
        // The same chaotic fleet under every scheduler: per-shard stats
        // must match to the last counter (the full byte-equality suite
        // lives in tests/fleet_parallel_determinism.rs; this is the
        // in-crate smoke).
        let run = |scheduler| {
            let mut pool = FleetPool::new(chaotic_config(scheduler), flaky_factory(0.08, 13, 20));
            pool.run(50, SimDuration::from_millis(10));
            pool.stats()
        };
        let serial = run(FleetScheduler::Serial);
        assert!(
            serial.instance_faults() > 0,
            "chaos must actually fire for the comparison to mean anything"
        );
        for scheduler in [
            FleetScheduler::WorkStealing { workers: 2 },
            FleetScheduler::WorkStealing { workers: 8 },
            FleetScheduler::Permuted { seed: 0xdead },
        ] {
            assert_eq!(serial, run(scheduler), "{scheduler:?} diverged from serial");
        }
    }

    #[test]
    fn totals_cache_matches_recomputed_stats() {
        let mut pool = FleetPool::new(
            chaotic_config(FleetScheduler::WorkStealing { workers: 2 }),
            flaky_factory(0.08, 13, 20),
        );
        // Multiple run calls, including a round count that is not a
        // checkpoint multiple, keep the cache fresh.
        pool.run(10, SimDuration::from_millis(10));
        pool.run(3, SimDuration::from_millis(10));
        let totals = pool.totals();
        let stats = pool.stats();
        assert_eq!(totals.instances, stats.instances());
        assert_eq!(totals.live_steps, stats.live_steps());
        assert_eq!(totals.missed_steps, stats.missed_steps());
        assert_eq!(totals.instance_faults, stats.instance_faults());
        assert_eq!(totals.total_restarts(), stats.restarts());
        assert_eq!(totals.quarantines, stats.quarantines());
        assert_eq!(totals.availability(), stats.availability());
        assert_eq!(totals.mean_recovery_steps(), stats.mean_recovery_steps());
        // And the O(1) availability getter serves the cached value.
        assert_eq!(pool.availability(), totals.availability());
    }

    #[test]
    fn scheduler_is_reflective() {
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 2,
                instances: 4,
                ..FleetConfig::default()
            },
            healthy_factory(),
        );
        assert_eq!(
            pool.invoke("scheduler", &[]).unwrap(),
            Value::from("serial")
        );
        assert_eq!(pool.invoke("workers", &[]).unwrap(), Value::Int(1));
        let installed = pool
            .invoke(
                "set_scheduler",
                &[Value::from("work_stealing"), Value::Int(2)],
            )
            .unwrap();
        assert_eq!(installed, Value::from("work_stealing"));
        assert_eq!(
            pool.scheduler(),
            FleetScheduler::WorkStealing { workers: 2 }
        );
        assert_eq!(pool.invoke("workers", &[]).unwrap(), Value::Int(2));
        // A mid-soak switch is safe and changes nothing observable.
        pool.run(7, SimDuration::from_millis(10));
        assert_eq!(pool.availability(), 1.0);
        assert!(matches!(
            pool.invoke("set_scheduler", &[Value::from("threads")]),
            Err(CoreError::BadArguments { .. })
        ));
        assert!(matches!(
            pool.invoke("set_scheduler", &[Value::from("serial"), Value::Int(3)]),
            Err(CoreError::BadArguments { .. })
        ));
        assert!(matches!(
            pool.invoke("set_scheduler", &[]),
            Err(CoreError::BadArguments { .. })
        ));
    }
}
