//! Pipeline synthesis: goal-directed search over the example catalog,
//! lint-gated acceptance, deterministic ranking, and machine-readable
//! infeasibility explanations naming the binding constraint.

use perpos_analysis::{analyze_config, synthesize, Code, SynthesisGoal, TypeCatalog};

fn example_catalog() -> TypeCatalog {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/configs/catalog.json"
    ))
    .expect("example catalog readable");
    serde_json::from_str(&json).expect("example catalog parses")
}

#[test]
fn accuracy_goal_selects_wifi_positioning_chain() {
    let goal = SynthesisGoal {
        accuracy_m: Some(5.0),
        no_identifiable_at_sink: true,
        ..SynthesisGoal::default()
    };
    let result = synthesize(&goal, &example_catalog());
    assert!(result.feasible, "accuracy<=5m is satisfiable: {result:?}");
    assert!(result.infeasibility.is_none());
    let best = &result.candidates[0];
    assert_eq!(best.rank, 0);
    // wifipositioning declares (1, 8) m — strictly better than the GPS
    // chain's (2, 30) — so the wifi chain must rank first.
    assert_eq!(best.accuracy_best_m, Some(1.0));
    assert_eq!(best.accuracy_worst_m, Some(8.0));
    assert_eq!(best.frames, vec!["wgs84".to_string()]);
    let kinds: Vec<&str> = best
        .config
        .components
        .iter()
        .map(|c| c.kind.as_str())
        .collect();
    assert_eq!(kinds, vec!["wifi", "wifipositioning", "application"]);
}

#[test]
fn every_candidate_passes_the_full_lint_pass() {
    let catalog = example_catalog();
    let goal = SynthesisGoal {
        accuracy_m: Some(40.0),
        candidates: Some(10),
        ..SynthesisGoal::default()
    };
    let result = synthesize(&goal, &catalog);
    assert!(result.feasible);
    assert!(result.candidates.len() > 1, "catalog offers several chains");
    for candidate in &result.candidates {
        let report = analyze_config(&candidate.config, &catalog);
        assert!(
            report.is_clean(),
            "synthesized candidate rank {} must lint clean, got: {}",
            candidate.rank,
            report.render_human()
        );
    }
}

#[test]
fn synthesis_output_is_byte_deterministic() {
    let catalog = example_catalog();
    let goal = SynthesisGoal {
        accuracy_m: Some(40.0),
        candidates: Some(10),
        ..SynthesisGoal::default()
    };
    let a = synthesize(&goal, &catalog).doc_json();
    let b = synthesize(&goal, &catalog).doc_json();
    assert_eq!(a, b, "same goal + catalog must produce identical bytes");
}

#[test]
fn infeasible_accuracy_names_the_binding_constraint() {
    let goal = SynthesisGoal {
        accuracy_m: Some(0.5),
        ..SynthesisGoal::default()
    };
    let result = synthesize(&goal, &example_catalog());
    assert!(!result.feasible);
    assert!(result.candidates.is_empty());
    let inf = result.infeasibility.as_ref().expect("explanation present");
    assert_eq!(inf.constraint, "accuracy");
    assert_eq!(inf.domain, "accuracy");
    assert_eq!(inf.requested, Some(0.5));
    // The catalog's best achievable accuracy is wifipositioning's 1 m.
    assert_eq!(inf.achievable, Some(1.0));
    let report = result.report();
    assert_eq!(report.with_code(Code::P015).len(), 1);
    assert!(report.has_errors());
}

#[test]
fn power_budget_is_reported_when_binding() {
    // The cheapest position.wgs84 chain is wifi (80) + wifipositioning
    // (10) = 90 mW; a 50 mW budget is unsatisfiable.
    let goal = SynthesisGoal {
        power_budget_mw: Some(50.0),
        ..SynthesisGoal::default()
    };
    let result = synthesize(&goal, &example_catalog());
    assert!(!result.feasible);
    let inf = result.infeasibility.as_ref().expect("explanation present");
    assert_eq!(inf.constraint, "power");
    assert_eq!(inf.domain, "power");
    assert_eq!(inf.requested, Some(50.0));
    assert_eq!(inf.achievable, Some(90.0));
}

#[test]
fn unknown_output_kind_is_a_structural_infeasibility() {
    let goal = SynthesisGoal {
        output_kind: Some("position.galactic".into()),
        ..SynthesisGoal::default()
    };
    let result = synthesize(&goal, &example_catalog());
    assert!(!result.feasible);
    let inf = result.infeasibility.as_ref().expect("explanation present");
    assert_eq!(inf.constraint, "provider");
    assert_eq!(inf.domain, "structure");
    assert!(inf.detail.contains("position.galactic"));
}

#[test]
fn privacy_goal_routes_identifiable_data_through_the_anonymizer() {
    // Asking for raw wifi.scan at the sink: the direct wifi→app wiring
    // is a P012 error (identifiable data at the application), so the
    // gate forces the anonymizer into the chain.
    let goal = SynthesisGoal {
        output_kind: Some("wifi.scan".into()),
        no_identifiable_at_sink: true,
        ..SynthesisGoal::default()
    };
    let result = synthesize(&goal, &example_catalog());
    assert!(result.feasible, "anonymized wifi.scan is deliverable");
    let kinds: Vec<&str> = result.candidates[0]
        .config
        .components
        .iter()
        .map(|c| c.kind.as_str())
        .collect();
    assert_eq!(kinds, vec!["wifi", "anonymizer", "application"]);
}

#[test]
fn goal_summary_and_synthesized_wrapper_round_trip() {
    let goal = SynthesisGoal {
        accuracy_m: Some(5.0),
        no_identifiable_at_sink: true,
        ..SynthesisGoal::default()
    };
    assert_eq!(
        goal.summary(),
        "kind=position.wgs84, accuracy<=5m, no-identifiable-at-sink"
    );
    let result = synthesize(&goal, &example_catalog());
    let synthesized = result.candidates[0].clone().into_synthesized(&goal);
    assert_eq!(synthesized.rank, 0);
    assert_eq!(synthesized.goal, goal.summary());
    assert_eq!(synthesized.config.components.len(), 3);
}
