//! Criterion bench: WiFi fingerprinting — radio map construction and
//! k-NN estimation cost vs map density.

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpos_geo::Point2;
use perpos_model::demo_building;
use perpos_sensors::{RadioMap, WifiEnvironment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env() -> WifiEnvironment {
    WifiEnvironment::with_ap_per_room(Arc::new(demo_building()), 0)
}

fn bench_map_build(c: &mut Criterion) {
    let e = env();
    let mut group = c.benchmark_group("radiomap_build");
    for step in [2.0f64, 1.0, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{step}m")),
            &step,
            |b, &s| {
                b.iter(|| RadioMap::build(&e, s));
            },
        );
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let e = env();
    let mut group = c.benchmark_group("knn_estimate");
    for step in [2.0f64, 1.0, 0.5] {
        let map = RadioMap::build(&e, step);
        let mut rng = StdRng::seed_from_u64(1);
        let scan = e.scan(Point2::new(7.5, 2.0), &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}fp", map.len())),
            &map,
            |b, map| {
                b.iter(|| map.estimate(&scan, 3));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_map_build, bench_knn);
criterion_main!(benches);
