use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::{Floor, RoomId};

/// Room adjacency graph of a floor, derived from its doors.
///
/// Two rooms are adjacent when a door connects them. The graph answers
/// reachability and shortest-path (fewest doors) queries, which
/// applications use for symbolic navigation and which fusion components
/// can use as coarse movement constraints.
///
/// ```
/// use perpos_model::{demo_building, RoomGraph};
///
/// let building = demo_building();
/// let graph = RoomGraph::from_floor(building.floor(0).unwrap());
/// let path = graph
///     .shortest_path(&"R0".into(), &"R7".into())
///     .expect("connected through the corridor");
/// assert_eq!(path.len(), 3); // R0 -> CORRIDOR0 -> R7
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoomGraph {
    adjacency: BTreeMap<RoomId, BTreeSet<RoomId>>,
}

impl RoomGraph {
    /// Builds the adjacency graph from a floor's doors.
    ///
    /// Doors to the outside (one side `None`) contribute no edge.
    pub fn from_floor(floor: &Floor) -> Self {
        let mut graph = RoomGraph::default();
        for room in floor.rooms() {
            graph.adjacency.entry(room.id().clone()).or_default();
        }
        for door in floor.doors() {
            if let (Some(a), Some(b)) = (&door.connects.0, &door.connects.1) {
                graph.add_edge(a.clone(), b.clone());
            }
        }
        graph
    }

    /// Adds an undirected edge between two rooms, creating nodes on demand.
    pub fn add_edge(&mut self, a: RoomId, b: RoomId) {
        self.adjacency
            .entry(a.clone())
            .or_default()
            .insert(b.clone());
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Number of rooms in the graph.
    pub fn room_count(&self) -> usize {
        self.adjacency.len()
    }

    /// The rooms directly connected to `room`.
    pub fn neighbors(&self, room: &RoomId) -> impl Iterator<Item = &RoomId> + '_ {
        self.adjacency.get(room).into_iter().flatten()
    }

    /// Whether the two rooms are directly connected by a door.
    pub fn adjacent(&self, a: &RoomId, b: &RoomId) -> bool {
        self.adjacency.get(a).is_some_and(|n| n.contains(b))
    }

    /// Breadth-first shortest path (fewest door transitions), inclusive of
    /// both endpoints. Returns `None` when unreachable or unknown.
    pub fn shortest_path(&self, from: &RoomId, to: &RoomId) -> Option<Vec<RoomId>> {
        if !self.adjacency.contains_key(from) || !self.adjacency.contains_key(to) {
            return None;
        }
        if from == to {
            return Some(vec![from.clone()]);
        }
        let mut prev: BTreeMap<RoomId, RoomId> = BTreeMap::new();
        let mut queue = VecDeque::from([from.clone()]);
        let mut seen = BTreeSet::from([from.clone()]);
        while let Some(cur) = queue.pop_front() {
            for next in self.neighbors(&cur) {
                if seen.insert(next.clone()) {
                    prev.insert(next.clone(), cur.clone());
                    if next == to {
                        let mut path = vec![to.clone()];
                        let mut at = to;
                        while let Some(p) = prev.get(at) {
                            path.push(p.clone());
                            at = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next.clone());
                }
            }
        }
        None
    }

    /// Number of door transitions between two rooms, if reachable.
    pub fn door_distance(&self, from: &RoomId, to: &RoomId) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo_building;

    fn graph() -> RoomGraph {
        RoomGraph::from_floor(demo_building().floor(0).unwrap())
    }

    #[test]
    fn all_rooms_reach_corridor() {
        let g = graph();
        let corridor = RoomId::new("CORRIDOR0");
        for i in 0..8 {
            let room = RoomId::new(format!("R{i}"));
            assert!(g.adjacent(&room, &corridor), "R{i} should adjoin corridor");
        }
    }

    #[test]
    fn rooms_not_directly_adjacent() {
        let g = graph();
        assert!(!g.adjacent(&"R0".into(), &"R1".into()));
        assert_eq!(g.door_distance(&"R0".into(), &"R1".into()), Some(2));
    }

    #[test]
    fn path_to_self_is_trivial() {
        let g = graph();
        assert_eq!(
            g.shortest_path(&"R0".into(), &"R0".into()).unwrap().len(),
            1
        );
        assert_eq!(g.door_distance(&"R0".into(), &"R0".into()), Some(0));
    }

    #[test]
    fn unknown_rooms_unreachable() {
        let g = graph();
        assert_eq!(g.shortest_path(&"R0".into(), &"NOPE".into()), None);
        assert_eq!(g.shortest_path(&"NOPE".into(), &"R0".into()), None);
    }

    #[test]
    fn disconnected_room_unreachable() {
        let mut g = graph();
        g.adjacency.entry(RoomId::new("ISLAND")).or_default();
        assert_eq!(g.shortest_path(&"R0".into(), &"ISLAND".into()), None);
        assert_eq!(g.room_count(), 10);
    }

    #[test]
    fn door_distance_is_symmetric() {
        let g = graph();
        let rooms: Vec<RoomId> = (0..8).map(|i| RoomId::new(format!("R{i}"))).collect();
        for a in &rooms {
            for b in &rooms {
                assert_eq!(
                    g.door_distance(a, b),
                    g.door_distance(b, a),
                    "distance {a} <-> {b}"
                );
            }
        }
    }

    #[test]
    fn neighbor_iteration() {
        let g = graph();
        let n: Vec<_> = g.neighbors(&"CORRIDOR0".into()).collect();
        assert_eq!(n.len(), 8);
        assert_eq!(g.neighbors(&"NOPE".into()).count(), 0);
    }
}
