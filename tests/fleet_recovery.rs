//! Checkpoint/restore determinism suite: a [`Middleware`] restored from
//! a mid-run [`Snapshot`] and stepped to the end must be byte-identical
//! — trees, channel history, health, clocks — to the same instance
//! stepped without interruption. Pinned across both executors, both
//! tree policies, with seeded panics in flight and with a Channel
//! Feature attached mid-run after the restore point. This is the
//! contract the fleet runtime's restart path relies on.

#![allow(clippy::unwrap_used)]
use std::any::Any;

use perpos::core::channel::{ChannelFeature, ChannelHost, ChannelId, DataTree, TreePolicy};
use perpos::core::component::{ComponentCtx, ComponentDescriptor};
use perpos::prelude::*;

/// A counting source whose counter participates in checkpoints.
struct CountingSource(i64);

impl Component for CountingSource {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source("counter", vec![kinds::RAW_STRING])
    }
    fn on_input(
        &mut self,
        _p: usize,
        _i: DataItem,
        _c: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }
    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        self.0 += 1;
        ctx.emit_value(kinds::RAW_STRING, Value::Int(self.0));
        Ok(())
    }
    fn snapshot_state(&self) -> Option<Value> {
        Some(Value::Int(self.0))
    }
    fn restore_state(&mut self, state: &Value) {
        if let Some(v) = state.as_i64() {
            self.0 = v;
        }
    }
}

/// Records the rendered form of every tree it observes.
#[derive(Default)]
struct TreeLog(Vec<String>);

impl TreeLog {
    const NAME: &'static str = "TreeLog";
}

impl ChannelFeature for TreeLog {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
    }
    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.0.push(tree.render());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn tick() -> SimDuration {
    SimDuration::from_millis(100)
}

/// The factory every scenario (and the fleet restart path) uses: a
/// counting source with a seeded panic-injecting feature, a pass-through
/// processor, and a history subscription on the application channel.
fn build(mode: ExecMode, policy: TreePolicy) -> (Middleware, NodeId, ChannelId) {
    let mut mw = Middleware::new();
    mw.set_executor(mode);
    mw.set_tree_policy(policy);
    let src = mw.add_boxed_component(Box::new(CountingSource(0)));
    mw.attach_feature(src, FaultInjector::with_seed(0xcafe).with_panic_rate(0.15))
        .unwrap();
    mw.set_fault_policy(src, FaultPolicy::DropItem).unwrap();
    let stage = mw.add_component(FnProcessor::new(
        "stage",
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        |i| Some(i.payload.clone()),
    ));
    let app = mw.application_sink();
    mw.connect(src, stage, 0).unwrap();
    let port = mw.connect_to_sink(stage, app).unwrap();
    let channel = mw.channel_into(app, port).unwrap();
    mw.subscribe_channel_history(channel, 64).unwrap();
    (mw, src, channel)
}

fn run(mw: &mut Middleware, steps: u64) {
    mw.step_batch(steps, tick()).unwrap();
}

/// Everything the contract is stated over: rendered history trees, the
/// source's health record, logical clocks and step counters.
fn observe(mw: &Middleware, src: NodeId, channel: ChannelId) -> (Vec<String>, Value, u64, SimTime) {
    let trees = mw
        .channel_history(channel)
        .unwrap()
        .iter()
        .map(|t| t.render())
        .collect();
    (
        trees,
        mw.node_health(src).to_value(),
        mw.steps_run(),
        mw.now(),
    )
}

fn assert_restore_equivalence(mode: ExecMode, policy: TreePolicy) {
    let (mut reference, ref_src, ref_chan) = build(mode, policy);
    run(&mut reference, 40);

    let (mut original, _, _) = build(mode, policy);
    run(&mut original, 17);
    let snap = original.snapshot();
    assert_eq!(snap.steps_run(), 17);

    let (mut restored, src, chan) = build(mode, policy);
    restored.restore(&snap).unwrap();
    assert_eq!(restored.steps_run(), 17);
    assert_eq!(restored.executor_mode(), mode);
    assert_eq!(restored.tree_policy(), policy);
    run(&mut restored, 23);

    assert_eq!(
        observe(&reference, ref_src, ref_chan),
        observe(&restored, src, chan),
        "restore-then-step must equal the uninterrupted run \
         ({mode:?}, {policy:?})"
    );
}

#[test]
fn restore_equivalence_sequential_lazy() {
    assert_restore_equivalence(ExecMode::Sequential, TreePolicy::Lazy);
}

#[test]
fn restore_equivalence_sequential_eager() {
    assert_restore_equivalence(ExecMode::Sequential, TreePolicy::Eager);
}

#[test]
fn restore_equivalence_level_parallel_lazy() {
    assert_restore_equivalence(ExecMode::LevelParallel, TreePolicy::Lazy);
}

#[test]
fn restore_equivalence_level_parallel_eager() {
    assert_restore_equivalence(ExecMode::LevelParallel, TreePolicy::Eager);
}

#[test]
fn restored_instance_accepts_mid_run_feature_attach() {
    // Attach a Channel Feature *after* the restore point, at the same
    // logical step in both runs: the trees it observes must match, even
    // under the lazy policy where the attachment itself creates the
    // materialization demand.
    for mode in [ExecMode::Sequential, ExecMode::LevelParallel] {
        let (mut reference, _, ref_chan) = build(mode, TreePolicy::Lazy);
        run(&mut reference, 20);
        reference
            .attach_channel_feature(ref_chan, TreeLog::default())
            .unwrap();
        run(&mut reference, 20);

        let (mut original, _, _) = build(mode, TreePolicy::Lazy);
        run(&mut original, 20);
        let snap = original.snapshot();
        let (mut restored, _, chan) = build(mode, TreePolicy::Lazy);
        restored.restore(&snap).unwrap();
        restored
            .attach_channel_feature(chan, TreeLog::default())
            .unwrap();
        run(&mut restored, 20);

        let logs = |mw: &mut Middleware, chan| {
            mw.with_channel_feature_mut::<TreeLog, Vec<String>>(chan, TreeLog::NAME, |f| {
                f.0.clone()
            })
            .unwrap()
        };
        let a = logs(&mut reference, ref_chan);
        let b = logs(&mut restored, chan);
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "mid-run attached feature sees identical trees ({mode:?})"
        );
    }
}

#[test]
fn snapshots_restore_across_executors() {
    // A snapshot taken under one executor restores into an instance
    // built with the other: the snapshot carries the mode, and the
    // restored run still matches the uninterrupted reference.
    let (mut reference, ref_src, ref_chan) = build(ExecMode::Sequential, TreePolicy::Lazy);
    run(&mut reference, 30);

    let (mut original, _, _) = build(ExecMode::Sequential, TreePolicy::Lazy);
    run(&mut original, 11);
    let snap = original.snapshot();

    let (mut restored, src, chan) = build(ExecMode::LevelParallel, TreePolicy::Lazy);
    restored.restore(&snap).unwrap();
    assert_eq!(restored.executor_mode(), ExecMode::Sequential);
    run(&mut restored, 19);

    assert_eq!(
        observe(&reference, ref_src, ref_chan),
        observe(&restored, src, chan)
    );
}

#[test]
fn channel_stats_survive_snapshot_restore() {
    // The channel counters (outputs / materialized / skipped) are part
    // of the checkpoint contract: a restored instance reports exactly
    // the counters the original had at snapshot time, and continuing it
    // reproduces the uninterrupted run's counters.
    let (mut original, _, chan) = build(ExecMode::Sequential, TreePolicy::Lazy);
    run(&mut original, 17);
    let at_snapshot = original.channel_stats(chan).unwrap();
    assert!(at_snapshot.outputs > 0, "the pipeline produced outputs");
    assert_eq!(
        at_snapshot.materialized + at_snapshot.skipped,
        at_snapshot.outputs
    );
    let snap = original.snapshot();

    let (mut restored, _, rchan) = build(ExecMode::Sequential, TreePolicy::Lazy);
    restored.restore(&snap).unwrap();
    assert_eq!(
        restored.channel_stats(rchan).unwrap(),
        at_snapshot,
        "restore carries the channel counters, not just the buffers"
    );

    let (mut reference, _, ref_chan) = build(ExecMode::Sequential, TreePolicy::Lazy);
    run(&mut reference, 40);
    run(&mut restored, 23);
    assert_eq!(
        restored.channel_stats(rchan).unwrap(),
        reference.channel_stats(ref_chan).unwrap()
    );
}

#[test]
fn shard_stats_are_runtime_state_not_snapshot_state() {
    // ShardStats counts supervision activity of the shard *runtime*; no
    // instance Snapshot carries it (instances keep their channel and
    // component counters instead — see above). A rebuilt fleet therefore
    // starts its supervision counters from the build-time baseline:
    // instances owned, one construction checkpoint each, nothing else.
    let factory = |_: usize| build(ExecMode::Sequential, TreePolicy::Lazy).0;
    let config = FleetConfig {
        shards: 2,
        instances: 6,
        checkpoint_every: 4,
        ..FleetConfig::default()
    };
    let mut pool = FleetPool::new(config, factory);
    pool.run(12, tick());
    let stats = pool.stats();
    assert!(stats.live_steps() > 0, "the fleet actually ran");
    assert!(stats.shards.iter().all(|s| s.steps == 12));
    assert!(
        stats.shards.iter().all(|s| s.checkpoints > s.instances),
        "the cadence refreshed checkpoints beyond the construction ones"
    );

    let rebuilt = FleetPool::new(config, factory);
    for (old, fresh) in stats.shards.iter().zip(&rebuilt.stats().shards) {
        assert_eq!(
            *fresh,
            ShardStats {
                instances: old.instances,
                checkpoints: old.instances,
                ..ShardStats::default()
            },
            "rebuilt shards start from the baseline, not the history"
        );
    }
}

#[test]
fn snapshots_cross_the_arena_boundary_intact() {
    // A snapshot captures payloads that live in the donor's arena (the
    // pending rings and history hold interned slots). The snapshot must
    // detach them: the donor running on — recycling those very slots —
    // cannot retroactively corrupt it, and restoring into an instance
    // whose own arena is mid-flight (or disabled) resets cleanly and
    // continues byte-identical to the uninterrupted reference.
    let (mut reference, ref_src, ref_chan) = build(ExecMode::Sequential, TreePolicy::Lazy);
    run(&mut reference, 40);

    let (mut donor, _, _) = build(ExecMode::Sequential, TreePolicy::Lazy);
    run(&mut donor, 17);
    let snap = donor.snapshot();
    // Donor keeps running long past the retire lag: every slot its
    // arena held at snapshot time is rewritten many times over. If the
    // snapshot aliased arena slots instead of detaching, this would
    // scramble its payload bytes.
    run(&mut donor, 200);

    // Restore into an instance with its own arena traffic in flight.
    let (mut restored, src, chan) = build(ExecMode::Sequential, TreePolicy::Lazy);
    run(&mut restored, 31);
    restored.restore(&snap).unwrap();
    assert_eq!(restored.steps_run(), 17);
    run(&mut restored, 23);
    assert_eq!(
        observe(&reference, ref_src, ref_chan),
        observe(&restored, src, chan),
        "restore across a dirty arena must equal the uninterrupted run"
    );

    // And into an instance that interns nothing at all: arena on or off
    // is invisible to the restored trace.
    let (mut plain, psrc, pchan) = build(ExecMode::Sequential, TreePolicy::Lazy);
    plain.set_arena_enabled(false);
    plain.restore(&snap).unwrap();
    run(&mut plain, 23);
    assert_eq!(
        observe(&reference, ref_src, ref_chan),
        observe(&plain, psrc, pchan)
    );
}

#[test]
fn restore_rejects_structural_mismatch() {
    let (original, _, _) = build(ExecMode::Sequential, TreePolicy::Lazy);
    let snap = original.snapshot();
    assert_eq!(snap.version(), SNAPSHOT_VERSION);
    assert_eq!(snap.node_count(), 3);

    // A different pipeline must refuse the snapshot, untouched.
    let mut other = Middleware::new();
    let src = other.add_boxed_component(Box::new(CountingSource(0)));
    let app = other.application_sink();
    other.connect_to_sink(src, app).unwrap();
    let before = other.steps_run();
    let err = other.restore(&snap).unwrap_err();
    assert!(matches!(err, CoreError::ComponentFailure { .. }));
    assert_eq!(other.steps_run(), before);

    // And so must the same pipeline with an extra feature attached.
    let (mut drifted, dsrc, _) = build(ExecMode::Sequential, TreePolicy::Lazy);
    drifted
        .attach_feature(dsrc, perpos::sensors::HdopFeature::new())
        .unwrap();
    assert!(drifted.restore(&snap).is_err());
}
