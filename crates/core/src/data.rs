//! The dynamic data model flowing through the processing graph.
//!
//! The paper's middleware moves heterogeneous data — raw byte strings,
//! NMEA sentences, WGS-84 positions, room identifiers — through one graph,
//! and lets Component Features attach arbitrary extra data (HDOP values,
//! satellite counts) to items in flight. A strict type system cannot fix
//! those types at compile time without closing the system, so PerPos uses
//! a designed dynamic representation:
//!
//! * [`Value`] — a self-describing value (JSON-like, plus positions),
//! * [`DataKind`] — a namespaced tag describing what an item *is*
//!   (`"position.wgs84"`, `"nmea.sentence"`, …); ports declare the kinds
//!   they accept and provide,
//! * [`DataItem`] — a kind + timestamp + payload + feature-attached
//!   attributes, the unit that travels along graph edges.

use perpos_geo::Wgs84;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::{CoreError, SimTime};

/// A namespaced tag classifying the data carried by a [`DataItem`].
///
/// Kinds are cheap to clone and compare. By convention they are
/// dot-namespaced lowercase, e.g. `"position.wgs84"`. The well-known kinds
/// used across the PerPos crates live in [`kinds`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataKind(Cow<'static, str>);

impl DataKind {
    /// Creates a kind from a static string (zero allocation).
    pub const fn from_static(s: &'static str) -> Self {
        DataKind(Cow::Borrowed(s))
    }

    /// Creates a kind from a runtime string.
    pub fn new(s: impl Into<String>) -> Self {
        DataKind(Cow::Owned(s.into()))
    }

    /// The kind name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DataKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&'static str> for DataKind {
    fn from(s: &'static str) -> Self {
        DataKind(Cow::Borrowed(s))
    }
}

/// Well-known data kinds shared by the PerPos crates.
pub mod kinds {
    use super::DataKind;

    /// Raw sensor bytes rendered as text (e.g. NMEA lines off the wire).
    pub const RAW_STRING: DataKind = DataKind::from_static("raw.string");
    /// A parsed NMEA sentence (payload is the sentence encoded as a map).
    pub const NMEA_SENTENCE: DataKind = DataKind::from_static("nmea.sentence");
    /// A WGS-84 position ([`super::Value::Position`] payload).
    pub const POSITION_WGS84: DataKind = DataKind::from_static("position.wgs84");
    /// A symbolic room position (payload is the room id text).
    pub const POSITION_ROOM: DataKind = DataKind::from_static("position.room");
    /// A WiFi signal-strength scan (payload maps AP id to RSSI dBm).
    pub const WIFI_SCAN: DataKind = DataKind::from_static("wifi.scan");
    /// An accelerometer/motion sample (payload is a map).
    pub const MOTION_SAMPLE: DataKind = DataKind::from_static("motion.sample");
}

/// A self-describing dynamic value.
///
/// This is the payload representation of [`DataItem`]s and the argument /
/// return representation of the reflective `invoke` surfaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A floating point number.
    Float(f64),
    /// A text string.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values.
    Map(BTreeMap<String, Value>),
    /// A position (the primary domain value of a positioning middleware).
    Position(Position),
}

impl Value {
    /// The variant name, used in diagnostics.
    pub fn variant_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Position(_) => "position",
        }
    }

    /// Numeric view: `Int` and `Float` read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Position view.
    pub fn as_position(&self) -> Option<&Position> {
        match self {
            Value::Position(p) => Some(p),
            _ => None,
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Position view as an error-producing accessor for `?`-style code.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PayloadMismatch`] when the value is not a
    /// position.
    pub fn expect_position(&self) -> Result<&Position, CoreError> {
        self.as_position().ok_or(CoreError::PayloadMismatch {
            expected: "position",
            found: self.variant_name(),
        })
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Position> for Value {
    fn from(v: Position) -> Self {
        Value::Position(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}
impl From<BTreeMap<String, Value>> for Value {
    fn from(v: BTreeMap<String, Value>) -> Self {
        Value::Map(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => write!(f, "[{} items]", l.len()),
            Value::Map(m) => write!(f, "{{{} entries}}", m.len()),
            Value::Position(p) => write!(f, "{p}"),
        }
    }
}

/// A technology-independent position estimate: WGS-84 coordinates plus an
/// optional horizontal accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    coord: Wgs84,
    accuracy_m: Option<f64>,
}

impl Position {
    /// Creates a position with an optional 1-sigma horizontal accuracy in
    /// metres.
    pub fn new(coord: Wgs84, accuracy_m: Option<f64>) -> Self {
        Position { coord, accuracy_m }
    }

    /// The WGS-84 coordinates.
    pub fn coord(&self) -> &Wgs84 {
        &self.coord
    }

    /// The estimated horizontal accuracy in metres, if known.
    pub fn accuracy_m(&self) -> Option<f64> {
        self.accuracy_m
    }

    /// Distance in metres to another position.
    pub fn distance_m(&self, other: &Position) -> f64 {
        self.coord.distance_m(&other.coord)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.accuracy_m {
            Some(a) => write!(f, "{} ±{a:.1}m", self.coord),
            None => write!(f, "{}", self.coord),
        }
    }
}

/// A [`DataItem`] payload: a [`Value`] behind an [`Arc`], so fanning an
/// item out to many downstream edges shares one allocation instead of
/// deep-cloning the value per edge.
///
/// `Payload` dereferences to [`Value`], so all read accessors
/// (`as_text`, `as_position`, …) work unchanged. It is immutable by
/// sharing; the rare mutation site goes through [`Payload::make_mut`]
/// (copy-on-write).
#[derive(Debug, Clone, Default)]
pub struct Payload(Arc<Value>);

impl Payload {
    /// Wraps a value (one allocation; every subsequent clone is an
    /// `Arc` reference-count bump).
    pub fn new(value: Value) -> Self {
        Payload(Arc::new(value))
    }

    /// Borrow of the wrapped value (also available via `Deref`).
    pub fn as_value(&self) -> &Value {
        &self.0
    }

    /// An owned deep copy of the wrapped value, for APIs that need a
    /// bare [`Value`].
    pub fn to_value(&self) -> Value {
        (*self.0).clone()
    }

    /// Copy-on-write mutable access: clones the inner value only when
    /// the payload is currently shared with another item.
    pub fn make_mut(&mut self) -> &mut Value {
        Arc::make_mut(&mut self.0)
    }

    /// Whether two payloads share the same allocation (zero-copy
    /// fan-out diagnostic; implies equality).
    pub fn shares_with(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for Payload {
    type Target = Value;
    fn deref(&self) -> &Value {
        &self.0
    }
}

impl<'a> From<&'a Payload> for Payload {
    fn from(p: &'a Payload) -> Self {
        p.clone()
    }
}

impl From<Value> for Payload {
    fn from(v: Value) -> Self {
        Payload::new(v)
    }
}

macro_rules! payload_from {
    ($($t:ty),*) => {$(
        impl From<$t> for Payload {
            fn from(v: $t) -> Self {
                Payload::new(Value::from(v))
            }
        }
    )*};
}
payload_from!(
    bool,
    i64,
    f64,
    &str,
    String,
    Position,
    Vec<Value>,
    BTreeMap<String, Value>
);

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl PartialEq<Value> for Payload {
    fn eq(&self, other: &Value) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<Payload> for Value {
    fn eq(&self, other: &Payload) -> bool {
        *self == *other.0
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.0, f)
    }
}

impl Serialize for Payload {
    fn to_content(&self) -> serde::Content {
        self.0.to_content()
    }
}

impl Deserialize for Payload {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        Value::from_content(c).map(Payload::new)
    }
}

/// Feature-attached attributes of a [`DataItem`], copy-on-write behind
/// an [`Arc`]: edges and history buffers share one map; the first
/// mutation after a share clones it.
///
/// Dereferences to [`BTreeMap`] for all read access; writes go through
/// [`Attrs::insert`] / [`Attrs::remove`], which trigger the
/// copy-on-write.
#[derive(Debug, Clone, Default)]
pub struct Attrs(Arc<BTreeMap<String, Value>>);

impl Attrs {
    /// An empty attribute map.
    pub fn new() -> Self {
        Attrs::default()
    }

    /// Sets an attribute (copy-on-write when shared).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        Arc::make_mut(&mut self.0).insert(key.into(), value)
    }

    /// Removes an attribute (copy-on-write when shared).
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        if !self.0.contains_key(key) {
            return None;
        }
        Arc::make_mut(&mut self.0).remove(key)
    }

    /// Whether two attribute maps share the same allocation.
    pub fn shares_with(&self, other: &Attrs) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for Attrs {
    type Target = BTreeMap<String, Value>;
    fn deref(&self) -> &BTreeMap<String, Value> {
        &self.0
    }
}

impl From<BTreeMap<String, Value>> for Attrs {
    fn from(m: BTreeMap<String, Value>) -> Self {
        Attrs(Arc::new(m))
    }
}

impl<'a> IntoIterator for &'a Attrs {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq for Attrs {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl Serialize for Attrs {
    fn to_content(&self) -> serde::Content {
        self.0.to_content()
    }
}

impl Deserialize for Attrs {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        BTreeMap::from_content(c).map(|m| Attrs(Arc::new(m)))
    }
}

/// The unit of data travelling along processing-graph edges.
///
/// Cloning a `DataItem` is cheap: the payload and attributes live
/// behind shared [`Arc`]s, so fan-out to N consumers bumps reference
/// counts instead of deep-copying the data N times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataItem {
    /// What the payload is.
    pub kind: DataKind,
    /// Simulated time at which the item was produced.
    pub timestamp: SimTime,
    /// The payload itself, shared zero-copy between edges.
    pub payload: Payload,
    /// Extra data associated with the item by Component Features
    /// (paper §2.1 "Adding Data"), keyed by attribute name.
    pub attrs: Attrs,
}

impl DataItem {
    /// Creates an item with no attributes. Accepts anything convertible
    /// into a [`Payload`] — a bare [`Value`], primitives, or an existing
    /// (shared) payload.
    pub fn new(kind: DataKind, timestamp: SimTime, payload: impl Into<Payload>) -> Self {
        DataItem {
            kind,
            timestamp,
            payload: payload.into(),
            attrs: Attrs::new(),
        }
    }

    /// Builder-style attribute attachment.
    pub fn with_attr(mut self, key: impl Into<String>, value: Value) -> Self {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Reads an attribute.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// The payload as a position.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PayloadMismatch`] when the payload is not a
    /// position.
    pub fn position(&self) -> Result<&Position, CoreError> {
        self.payload.expect_position()
    }
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @{}] {}", self.kind, self.timestamp, self.payload)?;
        if !self.attrs.is_empty() {
            write!(f, " +{:?}", self.attrs.keys().collect::<Vec<_>>())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wgs(lat: f64, lon: f64) -> Wgs84 {
        Wgs84::new(lat, lon, 0.0).unwrap()
    }

    #[test]
    fn kind_equality_and_display() {
        assert_eq!(kinds::POSITION_WGS84, DataKind::new("position.wgs84"));
        assert_ne!(kinds::POSITION_WGS84, kinds::POSITION_ROOM);
        assert_eq!(kinds::RAW_STRING.to_string(), "raw.string");
    }

    #[test]
    fn value_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_f64(), None);
        let p = Position::new(wgs(1.0, 2.0), Some(3.0));
        assert_eq!(Value::from(p).as_position(), Some(&p));
    }

    #[test]
    fn expect_position_reports_mismatch() {
        let err = Value::Int(1).expect_position().unwrap_err();
        assert_eq!(
            err,
            CoreError::PayloadMismatch {
                expected: "position",
                found: "int"
            }
        );
    }

    #[test]
    fn item_attributes() {
        let item = DataItem::new(kinds::NMEA_SENTENCE, SimTime::ZERO, Value::from("x"))
            .with_attr("hdop", Value::Float(1.5));
        assert_eq!(item.attr("hdop").and_then(Value::as_f64), Some(1.5));
        assert_eq!(item.attr("nope"), None);
        assert!(format!("{item}").contains("hdop"));
    }

    #[test]
    fn position_distance() {
        let a = Position::new(wgs(0.0, 0.0), None);
        let b = Position::new(wgs(0.0, 1.0), Some(10.0));
        assert!(a.distance_m(&b) > 100_000.0);
        assert!(format!("{b}").contains("±10.0m"));
    }

    #[test]
    fn serde_round_trip_items() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::default();
        let strategy = (
            proptest::option::of(-90.0f64..90.0),
            any::<i64>(),
            ".{0,20}",
            0u64..u64::MAX / 2,
        );
        runner
            .run(&strategy, |(lat, int_v, text, ts)| {
                let payload = match lat {
                    Some(lat) => Value::from(Position::new(
                        Wgs84::new(lat, 10.0, 0.0).unwrap(),
                        Some(5.0),
                    )),
                    None => Value::List(vec![Value::Int(int_v), Value::from(text.clone())]),
                };
                let item = DataItem::new(kinds::POSITION_WGS84, SimTime::from_micros(ts), payload)
                    .with_attr("k", Value::Bool(true));
                let json = serde_json::to_string(&item).unwrap();
                let back: DataItem = serde_json::from_str(&json).unwrap();
                prop_assert_eq!(item, back);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn variant_names_cover_all() {
        for (v, name) in [
            (Value::Null, "null"),
            (Value::Bool(true), "bool"),
            (Value::Int(1), "int"),
            (Value::Float(1.0), "float"),
            (Value::from("s"), "text"),
            (Value::Bytes(vec![1]), "bytes"),
            (Value::List(vec![]), "list"),
            (Value::Map(BTreeMap::new()), "map"),
        ] {
            assert_eq!(v.variant_name(), name);
            assert!(!format!("{v}").is_empty());
        }
    }
}
