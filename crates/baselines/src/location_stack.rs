//! A Location Stack / Unified Location Framework style middleware: fixed
//! layers, fixed measurement schema, fixed fusion.

use perpos_core::component::ComponentCtx;
use perpos_core::prelude::*;
use perpos_geo::{LocalFrame, Point2, Wgs84};
use perpos_nmea::{parse_sentence, Sentence};
use perpos_sensors::{GpsSimulator, Trajectory, WifiEnvironment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The Location Stack's *fixed* measurement schema: this struct is the
/// layer boundary. Note what is **not** here — HDOP, satellite counts,
/// raw sentences. Sensor adaptation discards them, reproducing the §3.1
/// observation that exposing them "requires access to the code for the
/// middleware" (the schema would have to change).
#[derive(Debug, Clone, PartialEq)]
pub struct LsMeasurement {
    /// The measured position.
    pub position: Wgs84,
    /// 1-sigma accuracy in metres.
    pub accuracy_m: f64,
    /// Producing technology, e.g. `"gps"`.
    pub technology: &'static str,
    /// Measurement time.
    pub timestamp: SimTime,
}

/// A sensor in the Sensors/Measurements layers: produces normalized
/// measurements, full stop. There is no other way to get data upward.
pub trait LsSensor: Send {
    /// Samples the sensor at `now`.
    fn sample(&mut self, now: SimTime) -> Vec<LsMeasurement>;

    /// The technology name.
    fn technology(&self) -> &'static str;
}

/// Adapter putting the PerPos GPS simulator below the Location Stack:
/// parses the NMEA internally and forwards positions only.
pub struct LsGpsAdapter {
    sim: GpsSimulator,
}

impl LsGpsAdapter {
    /// Wraps a GPS simulator.
    pub fn new(sim: GpsSimulator) -> Self {
        LsGpsAdapter { sim }
    }
}

impl LsSensor for LsGpsAdapter {
    fn sample(&mut self, now: SimTime) -> Vec<LsMeasurement> {
        let mut ctx = ComponentCtx::new(now);
        use perpos_core::component::Component;
        if self.sim.on_tick(&mut ctx).is_err() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for item in ctx.take_emitted() {
            let Some(text) = item.payload.as_text() else {
                continue;
            };
            let Ok(Sentence::Gga(gga)) = parse_sentence(text) else {
                continue;
            };
            let (Some(lat), Some(lon)) = (gga.lat_deg, gga.lon_deg) else {
                continue;
            };
            if !gga.quality.has_fix() {
                continue;
            }
            let Ok(position) = Wgs84::new(lat, lon, gga.altitude_m) else {
                continue;
            };
            // HDOP and num_satellites are dropped HERE: the fixed schema
            // has no place for them.
            out.push(LsMeasurement {
                position,
                accuracy_m: gga.hdop * 5.0,
                technology: "gps",
                timestamp: now,
            });
        }
        out
    }

    fn technology(&self) -> &'static str {
        "gps"
    }
}

/// Adapter sampling the WiFi environment directly into measurements.
pub struct LsWifiAdapter {
    env: Arc<WifiEnvironment>,
    map: Arc<perpos_sensors::RadioMap>,
    trajectory: Trajectory,
    frame: LocalFrame,
    rng: StdRng,
}

impl LsWifiAdapter {
    /// Creates the adapter.
    pub fn new(
        env: Arc<WifiEnvironment>,
        map: Arc<perpos_sensors::RadioMap>,
        trajectory: Trajectory,
        frame: LocalFrame,
        seed: u64,
    ) -> Self {
        LsWifiAdapter {
            env,
            map,
            trajectory,
            frame,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl LsSensor for LsWifiAdapter {
    fn sample(&mut self, now: SimTime) -> Vec<LsMeasurement> {
        let p = self.trajectory.position_at(now);
        let scan = self.env.scan(p, &mut self.rng);
        let Some((est, acc)) = self.map.estimate(&scan, 3) else {
            return Vec::new();
        };
        vec![LsMeasurement {
            position: self.frame.from_local(&est),
            accuracy_m: acc,
            technology: "wifi",
            timestamp: now,
        }]
    }

    fn technology(&self) -> &'static str {
        "wifi"
    }
}

/// The layered middleware: Sensors -> Measurements -> **fixed** Fusion.
///
/// The fusion engine (inverse-variance weighted centroid over a sliding
/// window) is baked in; plugging a particle filter in "as a new kind of
/// sensor … will violate the architecture of the middleware" (§1, citing
/// Graumann et al.) — this type simply offers no seam to do it.
pub struct LocationStack {
    sensors: Vec<Box<dyn LsSensor>>,
    frame: LocalFrame,
    window: Vec<LsMeasurement>,
    window_s: f64,
}

impl LocationStack {
    /// Creates an empty stack anchored in `frame`.
    pub fn new(frame: LocalFrame) -> Self {
        LocationStack {
            sensors: Vec::new(),
            frame,
            window: Vec::new(),
            window_s: 5.0,
        }
    }

    /// Registers a sensor (the only extension point the architecture
    /// offers).
    pub fn add_sensor(&mut self, sensor: Box<dyn LsSensor>) {
        self.sensors.push(sensor);
    }

    /// Samples all sensors and returns the fused position, if any
    /// measurement is in the window.
    pub fn poll(&mut self, now: SimTime) -> Option<(Wgs84, f64)> {
        for s in &mut self.sensors {
            self.window.extend(s.sample(now));
        }
        let horizon = self.window_s;
        self.window
            .retain(|m| now.since(m.timestamp).as_secs_f64() <= horizon);
        if self.window.is_empty() {
            return None;
        }
        // Fixed fusion: inverse-variance weighted centroid.
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for m in &self.window {
            let p = self.frame.to_local(&m.position);
            let w = 1.0 / m.accuracy_m.max(0.5).powi(2);
            wx += p.x * w;
            wy += p.y * w;
            wsum += w;
        }
        let est = Point2::new(wx / wsum, wy / wsum);
        Some((self.frame.from_local(&est), (1.0 / wsum).sqrt()))
    }

    /// Number of registered sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }
}

impl std::fmt::Debug for LocationStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocationStack")
            .field("sensors", &self.sensors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_sensors::GpsEnvironment;

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    fn gps(traj: Trajectory) -> GpsSimulator {
        GpsSimulator::new("gps", frame(), traj)
            .with_seed(11)
            .with_environment(GpsEnvironment {
                dropout_prob: 0.0,
                ..GpsEnvironment::open_sky()
            })
    }

    #[test]
    fn fuses_gps_measurements() {
        let mut stack = LocationStack::new(frame());
        stack.add_sensor(Box::new(LsGpsAdapter::new(gps(Trajectory::stationary(
            Point2::new(5.0, 5.0),
        )))));
        let mut last = None;
        for t in 0..30 {
            if let Some((pos, _acc)) = stack.poll(SimTime::from_secs_f64(t as f64)) {
                last = Some(pos);
            }
        }
        let est = frame().to_local(&last.expect("fused position"));
        assert!(est.distance(&Point2::new(5.0, 5.0)) < 15.0);
        assert_eq!(stack.sensor_count(), 1);
    }

    #[test]
    fn measurement_schema_has_no_seam_fields() {
        // Compile-time documentation of the architectural limitation: the
        // fixed schema carries exactly these four fields.
        let m = LsMeasurement {
            position: Wgs84::new(0.0, 0.0, 0.0).unwrap(),
            accuracy_m: 1.0,
            technology: "gps",
            timestamp: SimTime::ZERO,
        };
        // There is no m.hdop, m.satellites, m.raw — the §3.1 point.
        assert_eq!(m.technology, "gps");
    }

    #[test]
    fn fusion_weights_by_accuracy_across_sensors() {
        // Two synthetic sensors: an accurate one at x=0 and a sloppy one
        // at x=20; the fixed fusion must land near the accurate one.
        struct Fixed {
            p: Point2,
            acc: f64,
            tech: &'static str,
        }
        impl LsSensor for Fixed {
            fn sample(&mut self, now: SimTime) -> Vec<LsMeasurement> {
                vec![LsMeasurement {
                    position: frame().from_local(&self.p),
                    accuracy_m: self.acc,
                    technology: self.tech,
                    timestamp: now,
                }]
            }
            fn technology(&self) -> &'static str {
                self.tech
            }
        }
        let mut stack = LocationStack::new(frame());
        stack.add_sensor(Box::new(Fixed {
            p: Point2::new(0.0, 0.0),
            acc: 1.0,
            tech: "gps",
        }));
        stack.add_sensor(Box::new(Fixed {
            p: Point2::new(20.0, 0.0),
            acc: 15.0,
            tech: "wifi",
        }));
        let (pos, acc) = stack.poll(SimTime::ZERO).unwrap();
        let local = frame().to_local(&pos);
        assert!(local.x < 2.0, "fused x = {}", local.x);
        assert!(acc < 1.5, "fused accuracy improves: {acc}");
    }

    #[test]
    fn window_evicts_stale_measurements() {
        struct Once {
            fired: bool,
        }
        impl LsSensor for Once {
            fn sample(&mut self, now: SimTime) -> Vec<LsMeasurement> {
                if self.fired {
                    return vec![];
                }
                self.fired = true;
                vec![LsMeasurement {
                    position: frame().from_local(&Point2::new(0.0, 0.0)),
                    accuracy_m: 1.0,
                    technology: "gps",
                    timestamp: now,
                }]
            }
            fn technology(&self) -> &'static str {
                "gps"
            }
        }
        let mut stack = LocationStack::new(frame());
        stack.add_sensor(Box::new(Once { fired: false }));
        assert!(stack.poll(SimTime::ZERO).is_some());
        // 100 s later the sole measurement has aged out.
        assert!(stack.poll(SimTime::from_secs_f64(100.0)).is_none());
    }

    #[test]
    fn wifi_adapter_produces_positions() {
        use perpos_sensors::RadioMap;
        use std::sync::Arc;
        let building = Arc::new(perpos_model::demo_building());
        let env = Arc::new(WifiEnvironment::with_ap_per_room(Arc::clone(&building), 0));
        let map = Arc::new(RadioMap::build(&env, 1.0));
        let mut adapter = LsWifiAdapter::new(
            env,
            map,
            Trajectory::stationary(Point2::new(7.5, 2.0)),
            *building.frame(),
            5,
        );
        let out = adapter.sample(SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].technology, "wifi");
        let local = building.frame().to_local(&out[0].position);
        assert!(local.distance(&Point2::new(7.5, 2.0)) < 6.0);
    }

    #[test]
    fn empty_stack_yields_nothing() {
        let mut stack = LocationStack::new(frame());
        assert!(stack.poll(SimTime::ZERO).is_none());
    }
}
