//! The §3.2 / Fig. 5 / Fig. 6 scenario: probabilistic position tracking
//! with a particle filter integrated through Channel Features.
//!
//! * an `HDOP` Component Feature on the Parser exposes the seam the
//!   likelihood needs (Fig. 5, artifact 3),
//! * a `Likelihood` Channel Feature on the GPS channel collects HDOP
//!   values from each output's data tree (artifact 2),
//! * the particle filter weights its particles with that likelihood and
//!   respects the building's walls (artifact 1),
//! * an ASCII rendering of the floor plan shows raw fixes vs the refined
//!   trace — the Fig. 6 picture.
//!
//! Run with: `cargo run --example particle_filter_tracking`

use std::sync::Arc;

use perpos::fusion::{LikelihoodFeature, ParticleFilter};
use perpos::prelude::*;

fn main() -> Result<(), CoreError> {
    let building = Arc::new(demo_building());
    let frame = *building.frame();

    // Walk down the corridor and into room R6.
    let walk = Trajectory::new(
        vec![
            Point2::new(1.0, 5.25),
            Point2::new(12.5, 5.25),
            Point2::new(12.5, 8.0), // room R6
        ],
        1.0,
    );

    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(23)
            .with_environment(GpsEnvironment::urban()),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());

    // The particle filter is "inserted as a new kind of positioning
    // mechanism, without affecting the high-level functionality".
    let likelihood = LikelihoodFeature::new();
    let handle = likelihood.handle();
    let pf = mw.add_component(
        ParticleFilter::new("ParticleFilter", frame, 1)
            .with_seed(29)
            .with_particles(800)
            .with_building(Arc::clone(&building), 0)
            .with_likelihood(handle),
    );
    let app = mw.application_sink();

    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect(interpreter, pf, 0)?;
    mw.connect(pf, app, 0)?;

    // Fig. 5 wiring: HDOP on the Parser, Likelihood on the GPS channel.
    mw.attach_feature(parser, HdopFeature::new())?;
    // A recorder on the Interpreter keeps the raw fixes for comparison.
    let recorder = perpos::sensors::TraceRecorderFeature::new();
    let raw_trace = recorder.handle();
    mw.attach_feature(interpreter, recorder)?;
    let gps_channel = mw.channel_into(pf, 0).expect("GPS channel exists");
    mw.attach_channel_feature(gps_channel, likelihood)?;

    let fused = mw.location_provider(Criteria::new().source("fusion"))?;

    // Track errors over the walk.
    let mut pf_errs = Vec::new();
    let mut trace = Vec::new();
    let total_s = walk.duration().as_secs_f64() as u64 + 5;
    for _ in 0..total_s {
        mw.step()?;
        let truth = walk.position_at(mw.now());
        if let Some(p) = fused.last_position() {
            let est = frame.to_local(p.coord());
            pf_errs.push(est.distance(&truth));
            trace.push(est);
        }
        mw.advance_clock(SimDuration::from_secs(1));
    }
    // Raw errors from the Interpreter's recorded fixes.
    let raw_errs: Vec<f64> = raw_trace
        .trace()
        .items
        .iter()
        .filter_map(|item| {
            let p = item.payload.as_position()?;
            let truth = walk.position_at(item.timestamp);
            Some(frame.to_local(p.coord()).distance(&truth))
        })
        .collect();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "samples          : raw {} / filtered {}",
        raw_errs.len(),
        pf_errs.len()
    );
    println!("mean error (raw) : {:.2} m", mean(&raw_errs));
    println!("mean error (pf)  : {:.2} m", mean(&pf_errs));
    println!(
        "likelihood sigma : {:.2} m (from {} data trees)",
        mw.invoke_channel_feature(gps_channel, "Likelihood", "getSigma", &[])?
            .as_f64()
            .unwrap_or(f64::NAN),
        total_s,
    );

    // Fig. 6, in ASCII: walls '#', refined trace 'o', truth path '.'.
    println!("\nfloor plan (o = refined trace, * = final particles):");
    let particles: Vec<Point2> = mw
        .invoke(pf, "getParticles", &[])?
        .as_list()
        .map(|l| {
            l.iter()
                .filter_map(|p| {
                    let xy = p.as_list()?;
                    Some(Point2::new(xy[0].as_f64()?, xy[1].as_f64()?))
                })
                .collect()
        })
        .unwrap_or_default();
    print!("{}", render_floor(&building, &trace, &particles));
    Ok(())
}

/// Renders floor 0 at half-metre resolution.
fn render_floor(
    building: &perpos::model::Building,
    trace: &[Point2],
    particles: &[Point2],
) -> String {
    let cell = 0.5;
    let (w, h) = (20.0, 10.5);
    let cols = (w / cell) as usize + 1;
    let rows = (h / cell) as usize + 1;
    let mut grid = vec![vec![' '; cols]; rows];
    let floor = building.floor(0).expect("demo floor");
    for wall in floor.walls() {
        let steps = (wall.length() / (cell / 2.0)).ceil() as usize;
        for i in 0..=steps {
            let p = wall.lerp(i as f64 / steps.max(1) as f64);
            let (r, c) = to_cell(p, cell, rows, cols);
            grid[r][c] = '#';
        }
    }
    for p in particles {
        let (r, c) = to_cell(*p, cell, rows, cols);
        if grid[r][c] == ' ' {
            grid[r][c] = '*';
        }
    }
    for p in trace {
        let (r, c) = to_cell(*p, cell, rows, cols);
        if grid[r][c] != '#' {
            grid[r][c] = 'o';
        }
    }
    let mut out = String::new();
    for row in grid.iter().rev() {
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out
}

fn to_cell(p: Point2, cell: f64, rows: usize, cols: usize) -> (usize, usize) {
    let c = ((p.x / cell).round().max(0.0) as usize).min(cols - 1);
    let r = ((p.y / cell).round().max(0.0) as usize).min(rows - 1);
    (r, c)
}
