//! Offline shim for the `criterion` surface the PerPos benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_with_setup`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a deliberately small wall-clock loop (fixed warm-up,
//! fixed measurement window, median-of-batches ns/iter) — good enough to
//! compare orders of magnitude locally; not a statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

impl Bencher {
    fn new() -> Self {
        Bencher { ns_per_iter: 0.0 }
    }

    /// Times `routine`, called back-to-back in batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates a batch size targeting ~1ms per batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples.get(samples.len() / 2).copied().unwrap_or(per_iter);
    }

    /// Times `routine` on a fresh `setup()` value per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let wall = Instant::now();
        while wall.elapsed() < WARMUP + MEASURE {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(label: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{label:<40} {value:>10.3} {unit}/iter");
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of parameterized benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group against `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter);
        self
    }

    /// Runs an unparameterized benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("knn", 5).to_string(), "knn/5");
        assert_eq!(BenchmarkId::from_parameter("30m").to_string(), "30m");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter > 0.0);
    }
}
