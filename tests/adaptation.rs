//! End-to-end tests of the paper's §3.1 adaptation: detecting unreliable
//! GPS readings by adding a Component Feature and inserting a filter
//! component — all through the public middleware API, while running.

#![allow(clippy::unwrap_used)]
use perpos::prelude::*;

struct Setup {
    mw: Middleware,
    parser: perpos::core::graph::NodeId,
    interpreter: perpos::core::graph::NodeId,
    provider: LocationProvider,
    frame: LocalFrame,
    walk: Trajectory,
}

/// GPS in bad conditions (few satellites, drifting fixes) feeding the
/// standard pipeline.
fn bad_sky_pipeline() -> Setup {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(7)
            .with_environment(GpsEnvironment {
                mean_visible_sats: 4.0, // straddles the reliability edge
                sat_stddev: 1.5,
                base_noise_m: 10.0,
                dropout_prob: 0.0,
            }),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    Setup {
        mw,
        parser,
        interpreter,
        provider,
        frame,
        walk,
    }
}

fn mean_error(setup: &Setup) -> f64 {
    let truth = setup.walk.position_at(SimTime::ZERO);
    let errs: Vec<f64> = setup
        .provider
        .history()
        .iter()
        .filter_map(|i| i.payload.as_position())
        .map(|p| setup.frame.to_local(p.coord()).distance(&truth))
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

#[test]
fn satellite_filter_improves_reliability() {
    // Without the filter.
    let mut unfiltered = bad_sky_pipeline();
    unfiltered
        .mw
        .run_for(SimDuration::from_secs(120), SimDuration::from_secs(1))
        .unwrap();
    let raw_err = mean_error(&unfiltered);
    let raw_count = unfiltered.provider.history().len();

    // With the §3.1 adaptation.
    let mut filtered = bad_sky_pipeline();
    filtered
        .mw
        .attach_feature(filtered.parser, NumberOfSatellitesFeature::new())
        .unwrap();
    let filter_node = filtered.mw.add_component(SatelliteFilter::new(4));
    filtered
        .mw
        .insert_between(filter_node, filtered.parser, filtered.interpreter, 0)
        .unwrap();
    filtered
        .mw
        .run_for(SimDuration::from_secs(120), SimDuration::from_secs(1))
        .unwrap();
    let filt_err = mean_error(&filtered);
    let filt_count = filtered.provider.history().len();

    assert!(filt_count < raw_count, "filter must drop some readings");
    assert!(
        filt_err < raw_err,
        "filtered error {filt_err:.1} m must beat raw {raw_err:.1} m"
    );
    let dropped = filtered
        .mw
        .invoke(filter_node, "filteredCount", &[])
        .unwrap();
    assert!(matches!(dropped, Value::Int(n) if n > 0));
}

#[test]
fn filter_cannot_connect_without_feature() {
    let mut setup = bad_sky_pipeline();
    let filter_node = setup.mw.add_component(SatelliteFilter::new(4));
    // The paper's declared dependency: inserting before attaching the
    // NumberOfSatellites feature fails validation and leaves the original
    // pipeline untouched.
    let err = setup
        .mw
        .insert_between(filter_node, setup.parser, setup.interpreter, 0)
        .unwrap_err();
    assert!(matches!(err, CoreError::MissingFeature { .. }));
    assert_eq!(
        setup.mw.graph().downstream(setup.parser),
        vec![(setup.interpreter, 0)],
        "failed insert must restore the original edge"
    );
    // The pipeline still runs.
    setup
        .mw
        .run_for(SimDuration::from_secs(5), SimDuration::from_secs(1))
        .unwrap();
}

#[test]
fn adaptation_mid_run_affects_only_subsequent_data() {
    let mut setup = bad_sky_pipeline();
    setup
        .mw
        .run_for(SimDuration::from_secs(30), SimDuration::from_secs(1))
        .unwrap();
    let before = setup.provider.history().len();
    assert!(before > 0);

    setup
        .mw
        .attach_feature(setup.parser, NumberOfSatellitesFeature::new())
        .unwrap();
    let filter_node = setup.mw.add_component(SatelliteFilter::new(12)); // absurd bar
    setup
        .mw
        .insert_between(filter_node, setup.parser, setup.interpreter, 0)
        .unwrap();
    setup
        .mw
        .run_for(SimDuration::from_secs(30), SimDuration::from_secs(1))
        .unwrap();
    let after = setup.provider.history().len();
    // With a 12-satellite bar virtually nothing passes any more.
    assert!(
        after - before <= 2,
        "threshold 12 must block essentially all data ({before} -> {after})"
    );
}

#[test]
fn reflective_state_reaches_through_layers() {
    let mut setup = bad_sky_pipeline();
    setup
        .mw
        .attach_feature(setup.parser, NumberOfSatellitesFeature::new())
        .unwrap();
    setup
        .mw
        .run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    // Parser itself does not know getNumberOfSatellites; the feature
    // answers through the node-level dispatch (paper §2.1).
    let sats = setup
        .mw
        .invoke(setup.parser, "getNumberOfSatellites", &[])
        .unwrap();
    assert!(matches!(sats, Value::Int(_)), "got {sats:?}");
    // Methods listing includes both component and feature methods.
    let methods = setup.mw.methods(setup.parser).unwrap();
    let names: Vec<&str> = methods.iter().map(|m| m.name.as_str()).collect();
    assert!(names.contains(&"parsedCount"));
    assert!(names.contains(&"getNumberOfSatellites"));
}
