//! Infeasibility diagnosis: when no pipeline satisfies a goal, name the
//! *binding constraint* instead of returning a bare empty list.
//!
//! The diagnosis is search-based: [`diagnose`] re-runs the enumeration
//! with one criterion relaxed at a time, in a fixed order. If dropping a
//! single criterion makes the goal satisfiable, that criterion is the
//! binding constraint and the relaxed candidates show the *achievable*
//! bound (e.g. "requested 0.5 m, catalog achieves 1 m"). If no single
//! relaxation helps, criteria are dropped cumulatively; if even the
//! unconstrained goal has no clean pipeline, the problem is structural —
//! no provider chain in the catalog delivers the output kind at all.

use serde::Serialize;

use super::search;
use super::SynthesisGoal;
use crate::catalog::TypeCatalog;

/// Machine-readable explanation of an unsatisfiable [`SynthesisGoal`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Infeasibility {
    /// The binding constraint: `"accuracy"`, `"rate"`, `"power"`,
    /// `"frame"`, `"privacy"`, a `+`-joined combination when only
    /// cumulative relaxation helps, or `"provider"` when the catalog
    /// cannot produce the output kind at all.
    pub constraint: String,
    /// The abstract domain that enforces the constraint (`"accuracy"`,
    /// `"rate"`, `"frame"`, `"taint"`, `"power"`, `"structure"`).
    pub domain: String,
    /// The requested numeric bound, when the constraint is numeric.
    pub requested: Option<f64>,
    /// The best value the catalog can actually achieve, measured on the
    /// relaxed search's candidates; absent when not numeric or when even
    /// the relaxed search found nothing.
    pub achievable: Option<f64>,
    /// Human-readable one-line explanation.
    pub detail: String,
}

impl Infeasibility {
    /// Fix-it hint for the P015 diagnostic.
    pub fn hint(&self) -> String {
        match (self.requested, self.achievable) {
            (Some(req), Some(ach)) => format!(
                "relax the {} bound from {req} to at least {ach}, or extend the catalog",
                self.constraint
            ),
            _ => format!(
                "relax the {} constraint or extend the catalog with suitable component types",
                self.constraint
            ),
        }
    }
}

/// The relaxable criteria, in the order they are probed. The order is
/// part of the contract: when several constraints are independently
/// binding, the first in this list is reported.
const RELAX_ORDER: [&str; 5] = ["accuracy", "rate", "power", "frame", "privacy"];

/// Whether `goal` actually states the named criterion.
fn goal_has(goal: &SynthesisGoal, constraint: &str) -> bool {
    match constraint {
        "accuracy" => goal.accuracy_m.is_some(),
        "rate" => goal.max_rate_hz.is_some(),
        "power" => goal.power_budget_mw.is_some(),
        "frame" => goal.frame.is_some(),
        "privacy" => goal.no_identifiable_at_sink,
        _ => false,
    }
}

/// `goal` with the named criterion removed.
fn relax(goal: &SynthesisGoal, constraint: &str) -> SynthesisGoal {
    let mut relaxed = goal.clone();
    match constraint {
        "accuracy" => relaxed.accuracy_m = None,
        "rate" => relaxed.max_rate_hz = None,
        "power" => relaxed.power_budget_mw = None,
        "frame" => relaxed.frame = None,
        "privacy" => relaxed.no_identifiable_at_sink = false,
        _ => {}
    }
    relaxed
}

/// The abstract domain enforcing the named criterion.
fn domain_of(constraint: &str) -> &'static str {
    match constraint {
        "accuracy" => "accuracy",
        "rate" => "rate",
        "power" => "power",
        "frame" => "frame",
        "privacy" => "taint",
        _ => "structure",
    }
}

/// The requested numeric bound for the named criterion, if numeric.
fn requested_of(goal: &SynthesisGoal, constraint: &str) -> Option<f64> {
    match constraint {
        "accuracy" => goal.accuracy_m,
        "rate" => goal.max_rate_hz,
        "power" => goal.power_budget_mw,
        _ => None,
    }
}

/// The best value the relaxed candidates achieve for the named
/// criterion — the bound the caller would have to accept.
fn achievable_of(candidates: &[search::Candidate], constraint: &str) -> Option<f64> {
    let mut best: Option<f64> = None;
    for c in candidates {
        let v = match constraint {
            "accuracy" => c.accuracy.map(|(b, _)| b),
            "rate" => c.rate.and_then(|(_, hi)| hi.is_finite().then_some(hi)),
            "power" => Some(c.power.unwrap_or(0.0)),
            _ => None,
        };
        if let Some(v) = v {
            best = Some(best.map_or(v, |prev: f64| prev.min(v)));
        }
    }
    best
}

/// Diagnoses why `goal` has no satisfying pipeline. Call only after the
/// full search came back empty.
pub(crate) fn diagnose(goal: &SynthesisGoal, catalog: &TypeCatalog) -> Infeasibility {
    let stated: Vec<&str> = RELAX_ORDER
        .iter()
        .copied()
        .filter(|c| goal_has(goal, c))
        .collect();

    // Single-criterion relaxation: the first one whose removal makes the
    // goal satisfiable is the binding constraint.
    for &constraint in &stated {
        let found = search::enumerate(&relax(goal, constraint), catalog);
        if !found.is_empty() {
            let requested = requested_of(goal, constraint);
            let achievable = achievable_of(&found, constraint);
            let detail = match (requested, achievable) {
                (Some(req), Some(ach)) => format!(
                    "goal is unsatisfiable: the {constraint} bound is binding \
                     (requested {req}, catalog achieves {ach})"
                ),
                _ => format!(
                    "goal is unsatisfiable: the {constraint} constraint is binding \
                     (dropping it yields {} candidate(s))",
                    found.len()
                ),
            };
            return Infeasibility {
                constraint: constraint.to_string(),
                domain: domain_of(constraint).to_string(),
                requested,
                achievable,
                detail,
            };
        }
    }

    // Cumulative relaxation: drop criteria one after another until the
    // goal becomes satisfiable; the dropped set is jointly binding.
    let mut relaxed = goal.clone();
    let mut dropped: Vec<&str> = Vec::new();
    for &constraint in &stated {
        relaxed = relax(&relaxed, constraint);
        dropped.push(constraint);
        if dropped.len() < 2 {
            continue; // single relaxations were already probed above
        }
        if !search::enumerate(&relaxed, catalog).is_empty() {
            let constraint = dropped.join("+");
            return Infeasibility {
                detail: format!(
                    "goal is unsatisfiable: the {constraint} constraints are \
                     jointly binding (no single relaxation suffices)"
                ),
                constraint,
                domain: "combined".to_string(),
                requested: None,
                achievable: None,
            };
        }
    }

    // Even the unconstrained goal is empty: structural infeasibility.
    let kind = goal.effective_output_kind();
    Infeasibility {
        constraint: "provider".to_string(),
        domain: "structure".to_string(),
        requested: None,
        achievable: None,
        detail: format!(
            "goal is unsatisfiable: no clean provider chain in the catalog \
             delivers kind {kind:?} within {} components",
            goal.effective_max_components()
        ),
    }
}
