//! Parallel fleet determinism suite: a [`FleetPool`] stepped by the
//! work-stealing scheduler — at any worker count, with any shard
//! visitation order — must be *byte-identical* to the serial run. Not
//! statistically close: the same `ShardStats` counters, the same
//! checkpoint contents, the same per-instance channel histories, health
//! records and clocks, under seeded environmental faults that exercise
//! the whole escalation ladder (containment, checkpoint-restart,
//! quarantine), across both executors and both tree policies, and
//! through mid-soak checkpoint/restore. This is the contract
//! `perpos_core::fleet::scheduler` states; here it is pinned against a
//! chaotic fleet rather than argued from the chunk-alignment proof.

#![allow(clippy::unwrap_used)]
use perpos::core::channel::{ChannelId, TreePolicy};
use perpos::core::component::{ComponentCtx, ComponentDescriptor};
use perpos::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-step failure probability of a faulty instance's source — high
/// enough that 96 rounds of a 24-instance fleet walk every rung of the
/// escalation ladder (the tests assert they did).
const STEP_FAIL_PROB: f64 = 0.05;

const ROUNDS: u64 = 96;

fn tick() -> SimDuration {
    SimDuration::from_millis(100)
}

/// A counting source whose counter rides through checkpoints while its
/// fault schedule stays environmental: the RNG is not snapshotted and
/// is reseeded per incarnation (same contract as the fleet soak bench).
struct FlakySource {
    counter: i64,
    rng: Option<StdRng>,
}

impl Component for FlakySource {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
    }
    fn on_input(
        &mut self,
        _p: usize,
        _i: DataItem,
        _c: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }
    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        if let Some(rng) = self.rng.as_mut() {
            if rng.gen::<f64>() < STEP_FAIL_PROB {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".to_string(),
                    reason: "injected fault".to_string(),
                });
            }
        }
        self.counter += 1;
        ctx.emit_value(kinds::RAW_STRING, Value::Int(self.counter));
        Ok(())
    }
    fn snapshot_state(&self) -> Option<Value> {
        Some(Value::Int(self.counter))
    }
    fn restore_state(&mut self, state: &Value) {
        if let Some(v) = state.as_i64() {
            self.counter = v;
        }
    }
}

/// Builds one instance: flaky source, pass-through stage, history
/// subscription on the application channel. Structure is identical for
/// every index, so the returned node/channel ids hold fleet-wide.
fn build_instance(
    mode: ExecMode,
    policy: TreePolicy,
    rng: Option<StdRng>,
) -> (Middleware, NodeId, ChannelId) {
    let mut mw = Middleware::new();
    mw.set_executor(mode);
    mw.set_tree_policy(policy);
    let src = mw.add_boxed_component(Box::new(FlakySource { counter: 0, rng }));
    let stage = mw.add_component(FnProcessor::new(
        "stage",
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        |i| Some(i.payload.clone()),
    ));
    let app = mw.application_sink();
    mw.connect(src, stage, 0).unwrap();
    let port = mw.connect_to_sink(stage, app).unwrap();
    let channel = mw.channel_into(app, port).unwrap();
    mw.subscribe_channel_history(channel, 64).unwrap();
    (mw, src, channel)
}

/// The fleet factory: every third instance is faulty. Restart reseeding
/// uses one incarnation counter per index, so the seed of incarnation
/// `n` of instance `i` is a pure function of `(i, n)` — byte-identical
/// whatever order a parallel scheduler rebuilds crashed instances in.
fn chaotic_factory(
    mode: ExecMode,
    policy: TreePolicy,
    capacity: usize,
) -> impl Fn(usize) -> Middleware + Send + Sync + 'static {
    let incarnations: Arc<Vec<AtomicU64>> =
        Arc::new((0..capacity).map(|_| AtomicU64::new(0)).collect());
    move |index| {
        let rng = (index % 3 == 0).then(|| {
            let n = incarnations[index].fetch_add(1, Ordering::Relaxed);
            StdRng::seed_from_u64(
                0xc4a05 ^ (index as u64).wrapping_mul(0x9E37_79B9) ^ n.wrapping_mul(0xC0FF_EE11),
            )
        });
        build_instance(mode, policy, rng).0
    }
}

/// Quarantine-prone configuration: small shards, a tight fault window
/// and a short backoff, so 96 chaotic rounds make every shard visit
/// Backoff and some visit Quarantined — and come back.
fn config(scheduler: FleetScheduler) -> FleetConfig {
    FleetConfig {
        shards: 4,
        instances: 24,
        checkpoint_every: 4,
        shard_fault_threshold: 4,
        shard_fault_window: 8,
        shard_backoff: 4,
        seed: 0xf1ee7,
        scheduler,
    }
}

fn pool(mode: ExecMode, policy: TreePolicy, scheduler: FleetScheduler) -> FleetPool {
    FleetPool::new(config(scheduler), chaotic_factory(mode, policy, 24))
}

/// Everything the byte-equality contract is stated over: supervision
/// counters, latest checkpoint contents, and per-instance rendered
/// histories, health records and clocks.
type Observation = (
    Vec<ShardStats>,
    Vec<String>,
    Vec<(Vec<String>, Value, u64, SimTime)>,
);

fn observe(pool: &FleetPool, src: NodeId, chan: ChannelId) -> Observation {
    let stats = pool.stats().shards;
    let mut checkpoints = Vec::new();
    let mut instances = Vec::new();
    for shard in pool.shards() {
        for i in 0..shard.len() {
            checkpoints.push(format!("{:?}", shard.checkpoint(i)));
            let mw = shard.instance(i).unwrap();
            let trees: Vec<String> = mw
                .channel_history(chan)
                .unwrap()
                .iter()
                .map(|t| t.render())
                .collect();
            instances.push((
                trees,
                mw.node_health(src).to_value(),
                mw.steps_run(),
                mw.now(),
            ));
        }
    }
    (stats, checkpoints, instances)
}

/// Ids shared by every instance the factory builds (identical
/// structure), taken from a probe instance.
fn probe_ids(mode: ExecMode, policy: TreePolicy) -> (NodeId, ChannelId) {
    let (_, src, chan) = build_instance(mode, policy, None);
    (src, chan)
}

/// Asserts the chaos actually exercised the ladder: containment alone
/// would make the equality below vacuous.
fn assert_chaotic(stats: &FleetStats) {
    assert!(stats.instance_faults() > 0, "faults fired");
    assert!(stats.restarts() > 0, "checkpoint-restarts fired");
    assert!(stats.quarantines() > 0, "quarantines fired");
    assert!(stats.missed_steps() > 0, "backoff skipped rounds");
}

#[test]
fn work_stealing_matches_serial_across_executors_and_policies() {
    for mode in [ExecMode::Sequential, ExecMode::LevelParallel] {
        for policy in [TreePolicy::Lazy, TreePolicy::Eager] {
            let (src, chan) = probe_ids(mode, policy);
            let mut serial = pool(mode, policy, FleetScheduler::Serial);
            serial.run(ROUNDS, tick());
            assert_chaotic(&serial.stats());
            let reference = observe(&serial, src, chan);
            for workers in [1usize, 2, 8] {
                let mut ws = pool(mode, policy, FleetScheduler::WorkStealing { workers });
                ws.run(ROUNDS, tick());
                assert_eq!(
                    reference,
                    observe(&ws, src, chan),
                    "work stealing ({workers} workers) diverged from serial \
                     ({mode:?}, {policy:?})"
                );
            }
        }
    }
}

#[test]
fn unaligned_multi_call_splits_agree() {
    // A run() call end is observable by design — a fault's missed-step
    // accounting is charged against the chunk it happened in, and a
    // call end cuts the final chunk short of the checkpoint cadence.
    // The determinism contract is therefore stated per call sequence:
    // for the SAME sequence of run() calls, every scheduler produces
    // the same bytes, however awkwardly the call ends straddle the
    // cadence. The pool's round cursor keeps the outer chunks of later
    // calls aligned to the cadence mid-stream.
    let mode = ExecMode::Sequential;
    let policy = TreePolicy::Lazy;
    let (src, chan) = probe_ids(mode, policy);

    let splits: [&[u64]; 3] = [&[37, 59], &[5, 91], &[1, 2, 3, 90]];
    for (w, split) in [(2usize, 0usize), (8, 1), (2, 2)] {
        let mut serial = pool(mode, policy, FleetScheduler::Serial);
        for &rounds in splits[split] {
            serial.run(rounds, tick());
        }
        let reference = observe(&serial, src, chan);

        let mut ws = pool(mode, policy, FleetScheduler::WorkStealing { workers: w });
        for &rounds in splits[split] {
            ws.run(rounds, tick());
        }
        assert_eq!(
            reference,
            observe(&ws, src, chan),
            "split {:?} at {w} workers diverged from the same-split serial run",
            splits[split]
        );
    }
}

#[test]
fn permuted_visitation_matches_serial() {
    // The permuted scheduler is the loom-free interleaving sanitizer:
    // serial execution, shard visitation shuffled per chunk from a
    // seed. Any seed must reproduce the serial bytes — shard order is
    // not allowed to be observable.
    let mode = ExecMode::Sequential;
    let policy = TreePolicy::Lazy;
    let (src, chan) = probe_ids(mode, policy);
    let mut serial = pool(mode, policy, FleetScheduler::Serial);
    serial.run(ROUNDS, tick());
    let reference = observe(&serial, src, chan);
    for seed in [0u64, 1, 42, 0xdead_beef] {
        let mut permuted = pool(mode, policy, FleetScheduler::Permuted { seed });
        permuted.run(ROUNDS, tick());
        assert_eq!(
            reference,
            observe(&permuted, src, chan),
            "permuted visitation (seed {seed:#x}) diverged from serial"
        );
    }
}

#[test]
fn mid_soak_checkpoints_restore_identically_from_any_scheduler() {
    // The checkpoints a parallel soak captures are the same bytes the
    // serial soak captures — and restoring one into a fresh instance
    // and stepping on produces the same continuation either way.
    let mode = ExecMode::Sequential;
    let policy = TreePolicy::Lazy;
    let (src, chan) = probe_ids(mode, policy);

    let mut serial = pool(mode, policy, FleetScheduler::Serial);
    serial.run(40, tick());
    let mut ws = pool(mode, policy, FleetScheduler::WorkStealing { workers: 8 });
    ws.run(40, tick());

    let mut restored_pair = Vec::new();
    for p in [&serial, &ws] {
        let snap = p.shards()[1].checkpoint(2).unwrap().clone();
        assert!(snap.steps_run() > 0 && snap.steps_run() % 4 == 0);
        let (mut fresh, _, _) = build_instance(mode, policy, None);
        fresh.restore(&snap).unwrap();
        fresh.step_batch(23, tick()).unwrap();
        restored_pair.push((
            format!("{snap:?}"),
            fresh
                .channel_history(chan)
                .unwrap()
                .iter()
                .map(|t| t.render())
                .collect::<Vec<_>>(),
            fresh.node_health(src).to_value(),
            fresh.steps_run(),
            fresh.now(),
        ));
    }
    assert_eq!(
        restored_pair[0], restored_pair[1],
        "a checkpoint captured under work stealing restores and continues \
         byte-identically to its serial twin"
    );
}

#[test]
fn scheduler_switches_mid_soak_do_not_change_the_trace() {
    // Flipping the scheduler between run() calls — serial, stealing,
    // permuted — is purely operational: the trace stays the one the
    // serial scheduler produces for the same call sequence (call ends
    // themselves are observable; see unaligned_multi_call_splits_agree).
    let mode = ExecMode::LevelParallel;
    let policy = TreePolicy::Eager;
    let (src, chan) = probe_ids(mode, policy);
    let mut serial = pool(mode, policy, FleetScheduler::Serial);
    serial.run(30, tick());
    serial.run(33, tick());
    serial.run(33, tick());
    let reference = observe(&serial, src, chan);

    let mut mixed = pool(mode, policy, FleetScheduler::Serial);
    mixed.run(30, tick());
    mixed.set_scheduler(FleetScheduler::WorkStealing { workers: 4 });
    mixed.run(33, tick());
    mixed.set_scheduler(FleetScheduler::Permuted { seed: 7 });
    mixed.run(33, tick());
    assert_eq!(
        reference,
        observe(&mixed, src, chan),
        "mid-soak scheduler switches leaked into the trace"
    );
}
