//! Failure-injection tests: the middleware must degrade gracefully under
//! sensor dropouts, garbage data, runtime component removal, and features
//! that swallow everything.

#![allow(clippy::unwrap_used)]
use std::any::Any;

use perpos::core::component::{Component, ComponentCtx, ComponentDescriptor};
use perpos::core::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
use perpos::prelude::*;

/// A source that emits garbage interleaved with valid NMEA.
struct GarbageGps {
    inner: GpsSimulator,
    counter: u64,
}

impl Component for GarbageGps {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source("GarbageGPS", vec![kinds::RAW_STRING])
    }

    fn on_input(
        &mut self,
        _p: usize,
        _i: DataItem,
        _c: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }

    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        self.counter += 1;
        match self.counter % 4 {
            0 => ctx.emit_value(kinds::RAW_STRING, Value::from("$GARBAGE*ZZ")),
            1 => ctx.emit_value(kinds::RAW_STRING, Value::from("!!noise!!")),
            2 => ctx.emit_value(kinds::RAW_STRING, Value::Int(42)), // not even text
            _ => {}
        }
        self.inner.on_tick(ctx)
    }
}

fn frame() -> LocalFrame {
    LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
}

#[test]
fn garbage_bursts_do_not_stop_the_pipeline() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(GarbageGps {
        inner: GpsSimulator::new("GPS", frame(), walk).with_seed(3),
        counter: 0,
    });
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    mw.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    assert!(
        provider.last_position().is_some(),
        "positions still flow despite garbage"
    );
    let errors = mw.invoke(parser, "errorCount", &[]).unwrap();
    assert!(matches!(errors, Value::Int(n) if n > 20), "{errors:?}");
}

#[test]
fn dropout_heavy_sensor_keeps_engine_running() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk)
            .with_seed(7)
            .with_environment(GpsEnvironment {
                dropout_prob: 0.95,
                ..GpsEnvironment::open_sky()
            }),
    );
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    mw.run_for(SimDuration::from_secs(120), SimDuration::from_secs(1))
        .unwrap();
    // No panic, and the engine stepped every tick.
    assert_eq!(mw.steps_run(), 120);
}

#[test]
fn removing_a_running_component_stops_its_branch_only() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps1 = mw.add_component(GpsSimulator::new("GPS-1", frame(), walk.clone()).with_seed(1));
    let gps2 = mw.add_component(GpsSimulator::new("GPS-2", frame(), walk).with_seed(2));
    let p1 = mw.add_component(Parser::new());
    let p2 = mw.add_component(Parser::new());
    let app = mw.application_sink();
    mw.connect(gps1, p1, 0).unwrap();
    mw.connect(gps2, p2, 0).unwrap();
    mw.connect_to_sink(p1, app).unwrap();
    mw.connect_to_sink(p2, app).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(5), SimDuration::from_secs(1))
        .unwrap();
    let before = provider.delivered_count();
    assert!(before > 0);

    // Remove the first pipeline's source mid-run.
    mw.remove_component(gps1).unwrap();
    mw.run_for(SimDuration::from_secs(5), SimDuration::from_secs(1))
        .unwrap();
    let after = provider.delivered_count();
    assert!(after > before, "second branch still delivers");
    // Only one channel remains rooted at a source.
    assert_eq!(
        mw.channels()
            .iter()
            .filter(|c| c.member_names.iter().any(|n| n.starts_with("GPS")))
            .count(),
        1
    );
}

/// A feature that swallows every item.
struct BlackHole;

impl ComponentFeature for BlackHole {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("BlackHole")
    }
    fn on_produce(
        &mut self,
        _item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        Ok(FeatureAction::Drop)
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn black_hole_feature_is_detachable() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(GpsSimulator::new("GPS", frame(), walk).with_seed(5));
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    mw.attach_feature(gps, BlackHole).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    assert_eq!(provider.delivered_count(), 0, "everything swallowed");
    // Detach and recover.
    mw.detach_feature(gps, "BlackHole").unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    assert!(provider.delivered_count() > 0, "flow restored");
}

#[test]
fn failing_component_surfaces_error_once() {
    struct FailsAfter {
        remaining: u32,
    }
    impl Component for FailsAfter {
        fn descriptor(&self) -> ComponentDescriptor {
            ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            if self.remaining == 0 {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".into(),
                    reason: "hardware fault".into(),
                });
            }
            self.remaining -= 1;
            ctx.emit_value(kinds::RAW_STRING, Value::from("ok"));
            Ok(())
        }
    }
    let mut mw = Middleware::new();
    let flaky = mw.add_component(FailsAfter { remaining: 3 });
    let app = mw.application_sink();
    mw.connect(flaky, app, 0).unwrap();
    for _ in 0..3 {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_secs(1));
    }
    let err = mw.step().unwrap_err();
    assert!(matches!(err, CoreError::ComponentFailure { .. }));
    // The application can remove the faulty component and continue.
    mw.remove_component(flaky).unwrap();
    mw.step().unwrap();
}

// ---------------------------------------------------------------------------
// Supervision: fault policies, quarantine lifecycle, panic containment and
// provider failover, all driven by the seeded FaultInjector feature.
// ---------------------------------------------------------------------------

/// A sensor stand-in emitting one tagged WGS84 position per tick.
struct TaggedSource {
    name: &'static str,
    lat: f64,
}

impl Component for TaggedSource {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source(self.name, vec![kinds::POSITION_WGS84])
    }
    fn on_input(
        &mut self,
        _p: usize,
        _i: DataItem,
        _c: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }
    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        let coord = Wgs84::new(self.lat, 10.0, 0.0).unwrap();
        ctx.emit(
            DataItem::new(
                kinds::POSITION_WGS84,
                ctx.now(),
                Value::from(Position::new(coord, Some(5.0))),
            )
            .with_attr("source", Value::from(self.name)),
        );
        Ok(())
    }
}

#[test]
fn supervised_faulty_source_never_aborts_run_for() {
    // Without a policy this run aborts on the first injected fault (the
    // contract failing_component_surfaces_error_once pins). With DropItem
    // the same 120 s scenario completes, errors AND panics contained.
    std::panic::set_hook(Box::new(|_| {})); // keep injected panics quiet
    let mut mw = Middleware::new();
    let gps = mw.add_component(TaggedSource {
        name: "gps",
        lat: 1.0,
    });
    mw.attach_feature(
        gps,
        FaultInjector::with_seed(9)
            .with_error_rate(0.2)
            .with_panic_rate(0.1),
    )
    .unwrap();
    mw.set_fault_policy(gps, FaultPolicy::DropItem).unwrap();
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(120), SimDuration::from_secs(1))
        .unwrap();
    let _ = std::panic::take_hook();
    assert_eq!(mw.steps_run(), 120);
    let h = mw.node_health(gps);
    assert!(h.faults > 20, "faults = {}", h.faults);
    assert_eq!(provider.delivered_count() + h.faults, 120);
}

#[test]
fn quarantine_lifecycle_backoff_and_reinstate() {
    // Every item faults until the injector is detached (the "repair"),
    // after which the next probe reinstates the source.
    let mut mw = Middleware::new();
    let gps = mw.add_component(TaggedSource {
        name: "gps",
        lat: 1.0,
    });
    mw.attach_feature(gps, FaultInjector::with_seed(1).with_error_rate(1.0))
        .unwrap();
    mw.set_fault_policy(
        gps,
        FaultPolicy::Quarantine {
            max_faults: 2,
            window: SimDuration::from_secs(30),
            backoff: SimDuration::from_secs(4),
        },
    )
    .unwrap();
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();

    let step = |mw: &mut Middleware, n: u32| {
        for _ in 0..n {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_secs(1));
        }
    };
    // t=0,1: two faults open the breaker until t=5 (4 s backoff).
    step(&mut mw, 2);
    assert_eq!(mw.node_health(gps).status, HealthStatus::Quarantined);
    // t=2..=4 skipped; t=5 probe still faults: backoff doubles to 8 s.
    step(&mut mw, 4);
    let h = mw.node_health(gps);
    assert_eq!(h.status, HealthStatus::Quarantined);
    assert_eq!(h.quarantines, 2);
    assert_eq!(h.faults, 3, "quarantined ticks must not call the source");
    // Repair the sensor while the breaker is open (t=6..=12 skipped).
    mw.detach_feature(gps, FaultInjector::NAME).unwrap();
    step(&mut mw, 7);
    assert_eq!(provider.delivered_count(), 0);
    // t=13: probe succeeds — reinstated, flow resumes.
    step(&mut mw, 1);
    assert_eq!(mw.node_health(gps).status, HealthStatus::Healthy);
    assert_eq!(provider.delivered_count(), 1);
    step(&mut mw, 5);
    assert_eq!(provider.delivered_count(), 6);
}

#[test]
fn injected_panics_are_contained_and_reported() {
    std::panic::set_hook(Box::new(|_| {}));
    let mut mw = Middleware::new();
    let gps = mw.add_component(TaggedSource {
        name: "gps",
        lat: 1.0,
    });
    mw.attach_feature(gps, FaultInjector::with_seed(2).with_panic_rate(1.0))
        .unwrap();
    mw.set_fault_policy(gps, FaultPolicy::DropItem).unwrap();
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    let _ = std::panic::take_hook();
    let h = mw.node_health(gps);
    assert_eq!(h.faults, 10);
    assert!(
        h.last_error.as_deref().unwrap_or("").contains("panic"),
        "{:?}",
        h.last_error
    );
    // The health model is reachable reflectively, like any other method.
    let v = mw.invoke(gps, "health", &[]).unwrap();
    assert!(matches!(v, Value::Map(_)));
}

#[test]
fn provider_failover_survives_a_quarantined_pipeline() {
    let mut mw = Middleware::new();
    let gps = mw.add_component(TaggedSource {
        name: "gps",
        lat: 1.0,
    });
    let wifi = mw.add_component(TaggedSource {
        name: "wifi",
        lat: 2.0,
    });
    mw.attach_feature(gps, FaultInjector::with_seed(4).with_error_rate(1.0))
        .unwrap();
    mw.set_fault_policy(
        gps,
        FaultPolicy::Quarantine {
            max_faults: 2,
            window: SimDuration::from_secs(30),
            backoff: SimDuration::from_secs(60),
        },
    )
    .unwrap();
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    mw.connect(wifi, app, 1).unwrap();
    let failover = mw
        .failover_provider(vec![
            Criteria::new().source("gps"),
            Criteria::new().source("wifi"),
        ])
        .unwrap();
    let events = failover.events();
    assert_eq!(failover.active(), Some(0));

    for _ in 0..5 {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_secs(1));
    }
    // GPS is quarantined; the provider fell over to the WiFi pipeline
    // and still answers position queries.
    assert_eq!(mw.node_health(gps).status, HealthStatus::Quarantined);
    assert!(failover.is_degraded());
    assert_eq!(failover.active(), Some(1));
    let pos = failover
        .last_position()
        .expect("wifi keeps positions alive");
    assert!((pos.coord().lat_deg() - 2.0).abs() < 1e-9);
    assert!(matches!(
        events.try_recv(),
        Ok(ProviderEvent::Degraded { from: 0, .. })
    ));
}
