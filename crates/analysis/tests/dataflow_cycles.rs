//! Widening coverage: the four real domains on a *cyclic* graph.
//!
//! Cyclic structures are configuration errors (P005), but the solver
//! must still terminate on them and produce sound over-approximations —
//! the analysis runs before the structural checks reject anything. Each
//! test solves one domain over the same two-node feedback loop
//! (`src → m ⇄ r → app`) and asserts (a) the worklist reached its
//! fixpoint within the step cap and (b) the facts over-approximate every
//! concrete behaviour.

use perpos_analysis::domains::{accuracy, frame, rate, taint};
use perpos_analysis::{solve, ComponentTypeSpec, FlowGraph, PortSpec, TypeCatalog};
use perpos_core::assembly::{ComponentConfig, ConnectionConfig, GraphConfig};
use perpos_core::component::TransferSpec;

fn spec(kind: &str, role: &str, inputs: usize, provides: &[&str]) -> ComponentTypeSpec {
    ComponentTypeSpec {
        kind: kind.into(),
        role: role.into(),
        inputs: (0..inputs)
            .map(|i| PortSpec {
                name: format!("in{i}"),
                accepts: Vec::new(),
                required_features: Vec::new(),
            })
            .collect(),
        provides: provides.iter().map(|s| s.to_string()).collect(),
        transfer: None,
        effects: None,
    }
}

fn instance(name: &str, kind: &str) -> ComponentConfig {
    ComponentConfig {
        name: name.into(),
        kind: kind.into(),
        fault_policy: None,
        transfer: None,
        effects: None,
    }
}

fn edge(from: &str, to: &str, port: usize) -> ConnectionConfig {
    ConnectionConfig {
        from: from.into(),
        to: to.into(),
        port,
    }
}

/// `src → m`, `m ⇄ r` (feedback), `r → app`: the merge and the relay
/// form a cycle that keeps re-feeding each other.
fn cyclic_graph(src_transfer: TransferSpec, relay_transfer: TransferSpec) -> FlowGraph {
    let mut catalog = TypeCatalog::new();
    let mut src = spec("src", "source", 0, &["raw.string"]);
    src.transfer = Some(src_transfer);
    catalog.insert(src);
    catalog.insert(spec("m", "merge", 2, &["raw.string"]));
    let mut relay = spec("relay", "processor", 1, &["raw.string"]);
    relay.transfer = Some(relay_transfer);
    catalog.insert(relay);
    let config = GraphConfig {
        components: vec![
            instance("src", "src"),
            instance("m", "m"),
            instance("r", "relay"),
            instance("app", "application"),
        ],
        connections: vec![
            edge("src", "m", 0),
            edge("r", "m", 1),
            edge("m", "r", 0),
            edge("r", "app", 0),
        ],
        executor: None,
        tree_policy: None,
        fleet: None,
    };
    let graph = FlowGraph::from_config(&config, &catalog);
    assert!(
        graph.topological_order().is_none(),
        "the fixture must actually be cyclic"
    );
    graph
}

fn node(graph: &FlowGraph, label: &str) -> usize {
    graph
        .nodes
        .iter()
        .position(|n| n.label == label)
        .unwrap_or_else(|| panic!("node {label} present"))
}

#[test]
fn frame_domain_converges_on_cycles_and_keeps_the_source_frame() {
    let graph = cyclic_graph(
        TransferSpec::default().with_frame("wgs84"),
        TransferSpec::default(),
    );
    let solution = solve(&graph, &frame::FrameDomain);
    assert!(solution.converged, "finite lattice must reach its fixpoint");
    // Sound: the only concrete frame flowing through the loop is the
    // source's, and every node in the loop must report at least it.
    for label in ["m", "r", "app"] {
        let frames = &solution.facts[node(&graph, label)];
        assert!(
            frames.contains("wgs84"),
            "{label} lost the source frame: {frames:?}"
        );
    }
}

#[test]
fn taint_domain_converges_on_cycles_and_keeps_the_origin() {
    // raw.string is identifiable; the relay re-provides it, so the taint
    // must survive arbitrarily many loop iterations and reach the sink.
    let graph = cyclic_graph(TransferSpec::default(), TransferSpec::default());
    let solution = solve(&graph, &taint::TaintDomain);
    assert!(solution.converged, "finite lattice must reach its fixpoint");
    let sink = &solution.facts[node(&graph, "app")];
    assert!(
        sink.iter()
            .any(|(kind, origin)| kind == "raw.string" && origin == "src"),
        "sink must observe the identifiable source through the cycle: {sink:?}"
    );
}

#[test]
fn accuracy_domain_widens_shrinking_intervals_to_a_sound_bound() {
    // The relay halves the interval on every loop iteration, so without
    // widening the chain (1, 15), (0.5, 7.5), ... would descend forever.
    let halver = TransferSpec {
        accuracy_scale: Some(0.5),
        ..TransferSpec::default()
    };
    let graph = cyclic_graph(TransferSpec::default().with_accuracy_m(2.0, 30.0), halver);
    let solution = solve(&graph, &accuracy::AccuracyDomain);
    assert!(solution.converged, "widening must force the fixpoint");
    let (best, worst) = solution.facts[node(&graph, "r")].expect("accuracy inferred in the loop");
    // Sound over-approximation: one concrete pass through the loop can
    // already deliver 2 * 0.5 = 1 m best and 15 m worst, and further
    // passes only stretch the range — the widened interval must cover
    // every iterate.
    assert!(best <= 1.0, "best bound {best} excludes a concrete run");
    assert!(worst >= 15.0, "worst bound {worst} excludes a concrete run");
    assert!(
        best == 0.0 && worst.is_infinite(),
        "descending chains widen to the full interval, got ({best}, {worst})"
    );
}

#[test]
fn rate_domain_widens_summing_loops_to_a_sound_bound() {
    // The merge sums its inflows, one of which is the loop itself: the
    // guaranteed rate grows without bound until widening caps the chain.
    let graph = cyclic_graph(
        TransferSpec::default().with_emit_rate_hz(1.0),
        TransferSpec::default(),
    );
    let solution = solve(&graph, &rate::RateDomain);
    assert!(solution.converged, "widening must force the fixpoint");
    let (lo, hi) = solution.facts[node(&graph, "app")].expect("rate inferred through the loop");
    // Sound: the widened interval must contain every concrete rate the
    // feedback loop can exhibit (any value >= the source's 1 Hz).
    assert!(lo <= 1.0, "guaranteed bound {lo} excludes the source rate");
    assert!(hi.is_infinite(), "a summing loop has no finite upper rate");
}
