//! A constant-velocity Kalman filter — the classical smoothing baseline
//! the particle filter is compared against in the Fig. 6 experiment.

use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, InputSpec, MethodSpec};
use perpos_core::prelude::*;
use perpos_geo::{LocalFrame, Point2};

/// State: `[x, y, vx, vy]`; covariance is a full 4x4 matrix.
#[derive(Debug, Clone)]
struct KState {
    x: [f64; 4],
    p: [[f64; 4]; 4],
}

/// A constant-velocity Kalman filter Processing Component: WGS-84
/// positions in, smoothed WGS-84 positions out.
///
/// Process noise is parameterized by an acceleration deviation;
/// measurement noise follows each measurement's accuracy estimate.
/// Reflective methods: `setProcessNoise(sigma_a: float)`,
/// `getProcessNoise() -> float`.
pub struct KalmanFilter {
    name: String,
    frame: LocalFrame,
    state: Option<KState>,
    last_update: Option<SimTime>,
    sigma_a: f64,
    updates: u64,
}

impl KalmanFilter {
    /// Creates a filter with 0.6 m/s² process noise.
    pub fn new(name: impl Into<String>, frame: LocalFrame) -> Self {
        KalmanFilter {
            name: name.into(),
            frame,
            state: None,
            last_update: None,
            sigma_a: 0.6,
            updates: 0,
        }
    }

    /// Number of measurement updates processed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn predict(state: &mut KState, dt: f64, sigma_a: f64) {
        // x' = F x with F = [[1,0,dt,0],[0,1,0,dt],[0,0,1,0],[0,0,0,1]].
        state.x[0] += state.x[2] * dt;
        state.x[1] += state.x[3] * dt;
        // P' = F P F^T + Q (discrete white-noise acceleration model).
        let f = [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let mut fp = [[0.0; 4]; 4];
        for (i, fp_row) in fp.iter_mut().enumerate() {
            for (j, cell) in fp_row.iter_mut().enumerate() {
                for (k, fk) in f[i].iter().enumerate() {
                    *cell += fk * state.p[k][j];
                }
            }
        }
        let mut fpf = [[0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                for (k, fk) in f[j].iter().enumerate() {
                    fpf[i][j] += fp[i][k] * fk;
                }
            }
        }
        let q = sigma_a * sigma_a;
        let dt2 = dt * dt;
        let dt3 = dt2 * dt / 2.0;
        let dt4 = dt2 * dt2 / 4.0;
        let qm = [
            [dt4 * q, 0.0, dt3 * q, 0.0],
            [0.0, dt4 * q, 0.0, dt3 * q],
            [dt3 * q, 0.0, dt2 * q, 0.0],
            [0.0, dt3 * q, 0.0, dt2 * q],
        ];
        for i in 0..4 {
            for j in 0..4 {
                state.p[i][j] = fpf[i][j] + qm[i][j];
            }
        }
    }

    fn update(state: &mut KState, z: Point2, r: f64) {
        // H = [[1,0,0,0],[0,1,0,0]]; S = H P H^T + R (2x2); K = P H^T S^-1.
        let s00 = state.p[0][0] + r;
        let s01 = state.p[0][1];
        let s10 = state.p[1][0];
        let s11 = state.p[1][1] + r;
        let det = s00 * s11 - s01 * s10;
        if det.abs() < 1e-12 {
            return;
        }
        let (i00, i01, i10, i11) = (s11 / det, -s01 / det, -s10 / det, s00 / det);
        let mut k = [[0.0; 2]; 4];
        for (krow, prow) in k.iter_mut().zip(&state.p) {
            let (ph0, ph1) = (prow[0], prow[1]);
            krow[0] = ph0 * i00 + ph1 * i10;
            krow[1] = ph0 * i01 + ph1 * i11;
        }
        let y0 = z.x - state.x[0];
        let y1 = z.y - state.x[1];
        for (xi, krow) in state.x.iter_mut().zip(&k) {
            *xi += krow[0] * y0 + krow[1] * y1;
        }
        // P = (I - K H) P.
        let mut new_p = [[0.0; 4]; 4];
        for (i, np_row) in new_p.iter_mut().enumerate() {
            for (j, cell) in np_row.iter_mut().enumerate() {
                let kh = k[i][0] * state.p[0][j] + k[i][1] * state.p[1][j];
                *cell = state.p[i][j] - kh;
            }
        }
        state.p = new_p;
    }
}

impl std::fmt::Debug for KalmanFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KalmanFilter")
            .field("name", &self.name)
            .finish()
    }
}

impl Component for KalmanFilter {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            self.name.clone(),
            InputSpec::new("in", vec![kinds::POSITION_WGS84]),
            vec![kinds::POSITION_WGS84],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let position = item.position()?;
        let z = self.frame.to_local(position.coord());
        let r = position.accuracy_m().unwrap_or(10.0).powi(2);

        match &mut self.state {
            None => {
                self.state = Some(KState {
                    x: [z.x, z.y, 0.0, 0.0],
                    p: [
                        [r, 0.0, 0.0, 0.0],
                        [0.0, r, 0.0, 0.0],
                        [0.0, 0.0, 4.0, 0.0],
                        [0.0, 0.0, 0.0, 4.0],
                    ],
                });
            }
            Some(state) => {
                let dt = ctx
                    .now()
                    .since(self.last_update.unwrap_or(ctx.now()))
                    .as_secs_f64()
                    .clamp(0.0, 30.0);
                Self::predict(state, dt, self.sigma_a);
                Self::update(state, z, r);
            }
        }
        self.last_update = Some(ctx.now());
        self.updates += 1;

        let state = self.state.as_ref().expect("set above");
        let est = Point2::new(state.x[0], state.x[1]);
        let sigma = ((state.p[0][0] + state.p[1][1]) / 2.0).max(0.0).sqrt();
        let coord = self.frame.from_local(&est);
        let out = DataItem::new(
            kinds::POSITION_WGS84,
            ctx.now(),
            Value::from(Position::new(coord, Some(sigma.max(0.5)))),
        )
        .with_attr("source", Value::from("kalman"));
        ctx.emit(out);
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setProcessNoise" => {
                let s = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float".into(),
                    }
                })?;
                if !(s.is_finite() && s > 0.0) {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("sigma must be positive, got {s}"),
                    });
                }
                self.sigma_a = s;
                Ok(Value::Null)
            }
            "getProcessNoise" => Ok(Value::Float(self.sigma_a)),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setProcessNoise", "(sigma_a: float) -> null"),
            MethodSpec::new("getProcessNoise", "() -> float"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_geo::Wgs84;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    fn measurement(f: &LocalFrame, p: Point2, acc: f64, t: f64) -> DataItem {
        DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::from_secs_f64(t),
            Value::from(Position::new(f.from_local(&p), Some(acc))),
        )
    }

    #[test]
    fn smooths_noisy_stationary_target() {
        let f = frame();
        let mut kf = KalmanFilter::new("kf", f);
        let mut rng = StdRng::seed_from_u64(17);
        let truth = Point2::new(5.0, 5.0);
        let mut raw = 0.0;
        let mut filtered = 0.0;
        let mut n = 0.0;
        for t in 0..60 {
            let noisy = Point2::new(
                truth.x + rng.gen_range(-8.0..8.0),
                truth.y + rng.gen_range(-8.0..8.0),
            );
            let out = ComponentCtxProbe::run_input(&mut kf, measurement(&f, noisy, 5.0, t as f64))
                .unwrap();
            let est = f.to_local(out[0].position().unwrap().coord());
            if t >= 10 {
                raw += noisy.distance(&truth);
                filtered += est.distance(&truth);
                n += 1.0;
            }
        }
        assert!(
            filtered / n < raw / n * 0.6,
            "kalman {:.2} m vs raw {:.2} m",
            filtered / n,
            raw / n
        );
        assert_eq!(kf.updates(), 60);
    }

    #[test]
    fn tracks_moving_target() {
        let f = frame();
        let mut kf = KalmanFilter::new("kf", f);
        let mut rng = StdRng::seed_from_u64(23);
        let mut errs = Vec::new();
        for t in 0..40 {
            let truth = Point2::new(t as f64 * 1.4, 0.0); // walking east
            let noisy = Point2::new(
                truth.x + rng.gen_range(-4.0..4.0),
                truth.y + rng.gen_range(-4.0..4.0),
            );
            let out = ComponentCtxProbe::run_input(&mut kf, measurement(&f, noisy, 4.0, t as f64))
                .unwrap();
            let est = f.to_local(out[0].position().unwrap().coord());
            if t > 10 {
                errs.push(est.distance(&truth));
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 3.0, "tracking error {mean}");
    }

    #[test]
    fn accuracy_shrinks_with_updates() {
        let f = frame();
        let mut kf = KalmanFilter::new("kf", f);
        let p = Point2::new(0.0, 0.0);
        let first = ComponentCtxProbe::run_input(&mut kf, measurement(&f, p, 10.0, 0.0)).unwrap();
        let a1 = first[0].position().unwrap().accuracy_m().unwrap();
        for t in 1..10 {
            ComponentCtxProbe::run_input(&mut kf, measurement(&f, p, 10.0, t as f64)).unwrap();
        }
        let last = ComponentCtxProbe::run_input(&mut kf, measurement(&f, p, 10.0, 10.0)).unwrap();
        let a2 = last[0].position().unwrap().accuracy_m().unwrap();
        assert!(a2 < a1, "covariance should contract: {a1} -> {a2}");
    }

    #[test]
    fn invoke_surface() {
        let mut kf = KalmanFilter::new("kf", frame());
        kf.invoke("setProcessNoise", &[Value::Float(1.5)]).unwrap();
        assert_eq!(
            kf.invoke("getProcessNoise", &[]).unwrap(),
            Value::Float(1.5)
        );
        assert!(kf.invoke("setProcessNoise", &[Value::Float(-1.0)]).is_err());
        assert!(kf.invoke("warp", &[]).is_err());
    }
}
