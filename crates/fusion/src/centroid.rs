//! Accuracy-weighted centroid fusion — the simplest multi-sensor merge,
//! used as a baseline against the particle filter.

use std::collections::VecDeque;

use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, InputSpec, MethodSpec};
use perpos_core::prelude::*;
use perpos_geo::{LocalFrame, Point2};

/// A merge Processing Component computing the inverse-variance weighted
/// centroid of the most recent position from each input within a sliding
/// time window.
///
/// Reflective methods: `setWindow(seconds: float)`, `getWindow() -> float`.
pub struct CentroidFusion {
    name: String,
    frame: LocalFrame,
    inputs: usize,
    window: SimDuration,
    recent: VecDeque<(SimTime, Point2, f64)>,
}

impl CentroidFusion {
    /// Creates a fusion component over `inputs` position ports with a
    /// 5-second window.
    pub fn new(name: impl Into<String>, frame: LocalFrame, inputs: usize) -> Self {
        assert!(inputs >= 1, "fusion needs at least one input");
        CentroidFusion {
            name: name.into(),
            frame,
            inputs,
            window: SimDuration::from_secs(5),
            recent: VecDeque::new(),
        }
    }
}

impl std::fmt::Debug for CentroidFusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentroidFusion")
            .field("name", &self.name)
            .finish()
    }
}

impl Component for CentroidFusion {
    fn descriptor(&self) -> ComponentDescriptor {
        let inputs = (0..self.inputs)
            .map(|i| InputSpec::new(format!("in{i}"), vec![kinds::POSITION_WGS84]))
            .collect();
        ComponentDescriptor::merge(self.name.clone(), inputs, vec![kinds::POSITION_WGS84])
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let position = item.position()?;
        let p = self.frame.to_local(position.coord());
        let acc = position.accuracy_m().unwrap_or(20.0).max(0.5);
        self.recent.push_back((item.timestamp, p, acc));
        // Evict samples older than the window.
        while let Some((t, _, _)) = self.recent.front() {
            if ctx.now().since(*t) > self.window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for (_, p, acc) in &self.recent {
            let w = 1.0 / (acc * acc);
            wx += p.x * w;
            wy += p.y * w;
            wsum += w;
        }
        if wsum <= 0.0 {
            return Ok(());
        }
        let est = Point2::new(wx / wsum, wy / wsum);
        let acc_est = (1.0 / wsum).sqrt().max(0.5);
        let coord = self.frame.from_local(&est);
        ctx.emit(
            DataItem::new(
                kinds::POSITION_WGS84,
                ctx.now(),
                Value::from(Position::new(coord, Some(acc_est))),
            )
            .with_attr("source", Value::from("centroid")),
        );
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setWindow" => {
                let secs = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float".into(),
                    }
                })?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("window must be positive, got {secs}"),
                    });
                }
                self.window = SimDuration::from_secs_f64(secs);
                Ok(Value::Null)
            }
            "getWindow" => Ok(Value::Float(self.window.as_secs_f64())),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setWindow", "(seconds: float) -> null"),
            MethodSpec::new("getWindow", "() -> float"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_geo::Wgs84;

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    fn measurement(f: &LocalFrame, p: Point2, acc: f64, t: f64) -> DataItem {
        DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::from_secs_f64(t),
            Value::from(Position::new(f.from_local(&p), Some(acc))),
        )
    }

    #[test]
    fn weights_by_accuracy() {
        let f = frame();
        let mut c = CentroidFusion::new("c", f, 2);
        // A very accurate sample at x = 0 and a poor one at x = 10.
        ComponentCtxProbe::run_input(&mut c, measurement(&f, Point2::new(0.0, 0.0), 1.0, 0.0))
            .unwrap();
        let out = ComponentCtxProbe::run_input(
            &mut c,
            measurement(&f, Point2::new(10.0, 0.0), 10.0, 0.5),
        )
        .unwrap();
        let est = f.to_local(out[0].position().unwrap().coord());
        assert!(est.x < 1.0, "accurate sample dominates, got x = {}", est.x);
    }

    #[test]
    fn window_evicts_old_samples() {
        let f = frame();
        let mut c = CentroidFusion::new("c", f, 1);
        ComponentCtxProbe::run_input(&mut c, measurement(&f, Point2::new(0.0, 0.0), 2.0, 0.0))
            .unwrap();
        // 100 s later the old sample is outside the window.
        let out = ComponentCtxProbe::run_input(
            &mut c,
            measurement(&f, Point2::new(20.0, 0.0), 2.0, 100.0),
        )
        .unwrap();
        let est = f.to_local(out[0].position().unwrap().coord());
        assert!((est.x - 20.0).abs() < 0.5);
    }

    #[test]
    fn invoke_surface() {
        let mut c = CentroidFusion::new("c", frame(), 1);
        c.invoke("setWindow", &[Value::Float(2.0)]).unwrap();
        assert_eq!(c.invoke("getWindow", &[]).unwrap(), Value::Float(2.0));
        assert!(c.invoke("setWindow", &[Value::Float(0.0)]).is_err());
    }
}
