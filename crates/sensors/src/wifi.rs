//! WiFi signal-strength positioning: a log-distance path-loss radio
//! model, an offline fingerprint radio map and online k-NN positioning.
//!
//! Substitutes the paper's "server containing an indoor WiFi positioning
//! system" (§1): the same interface — scans in, positions out — with
//! realistic metre-scale indoor error.

use std::collections::BTreeMap;
use std::sync::Arc;

use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, InputSpec, MethodSpec};
use perpos_core::prelude::*;
use perpos_geo::{Point2, Segment2};
use perpos_model::Building;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trajectory::Trajectory;

/// A WiFi access point: an id, a floor-plan position and a transmit
/// power.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPoint {
    /// Identifier (e.g. a BSSID-like string).
    pub id: String,
    /// Position in building-local coordinates.
    pub position: Point2,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
}

impl AccessPoint {
    /// Creates an access point with a typical 20 dBm transmit power.
    pub fn new(id: impl Into<String>, position: Point2) -> Self {
        AccessPoint {
            id: id.into(),
            position,
            tx_power_dbm: 20.0,
        }
    }
}

/// The indoor radio environment: access points in a building, with a
/// log-distance path-loss model, per-wall attenuation and log-normal
/// shadowing.
pub struct WifiEnvironment {
    aps: Vec<AccessPoint>,
    building: Arc<Building>,
    floor: i32,
    /// Path-loss exponent; ~2 in free space, 2.5–4 indoors.
    pub path_loss_exponent: f64,
    /// Attenuation per crossed wall in dB.
    pub wall_attenuation_db: f64,
    /// Standard deviation of shadowing noise in dB.
    pub shadowing_sigma_db: f64,
    /// Receiver sensitivity: weaker APs are absent from scans.
    pub detection_threshold_dbm: f64,
}

impl std::fmt::Debug for WifiEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WifiEnvironment")
            .field("aps", &self.aps.len())
            .field("building", &self.building.name())
            .finish()
    }
}

impl WifiEnvironment {
    /// Creates an environment with typical indoor parameters.
    pub fn new(building: Arc<Building>, floor: i32, aps: Vec<AccessPoint>) -> Self {
        WifiEnvironment {
            aps,
            building,
            floor,
            path_loss_exponent: 2.8,
            wall_attenuation_db: 3.5,
            shadowing_sigma_db: 3.0,
            detection_threshold_dbm: -95.0,
        }
    }

    /// Places one access point in the centre of every room of the floor —
    /// a simple realistic deployment for experiments.
    pub fn with_ap_per_room(building: Arc<Building>, floor: i32) -> Self {
        let aps = building
            .floor(floor)
            .map(|f| {
                f.rooms()
                    .iter()
                    .enumerate()
                    .map(|(i, room)| {
                        AccessPoint::new(format!("AP{i:02}"), room.outline().centroid())
                    })
                    .collect()
            })
            .unwrap_or_default();
        WifiEnvironment::new(building, floor, aps)
    }

    /// The deployed access points.
    pub fn access_points(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// The building the environment is embedded in.
    pub fn building(&self) -> &Arc<Building> {
        &self.building
    }

    /// Deterministic mean RSSI of `ap` at `p` (no shadowing), in dBm.
    pub fn mean_rssi_dbm(&self, ap: &AccessPoint, p: Point2) -> f64 {
        let d = ap.position.distance(&p).max(0.5);
        let walls = self.walls_crossed(ap.position, p);
        // Reference loss of 40 dB at 1 m (2.4 GHz-ish).
        ap.tx_power_dbm
            - 40.0
            - 10.0 * self.path_loss_exponent * d.log10()
            - self.wall_attenuation_db * walls as f64
    }

    fn walls_crossed(&self, a: Point2, b: Point2) -> usize {
        let Some(floor) = self.building.floor(self.floor) else {
            return 0;
        };
        let path = Segment2::new(a, b);
        floor.walls().iter().filter(|w| w.intersects(&path)).count()
    }

    /// A noisy scan at `p`: AP id to RSSI, shadowed and thresholded.
    pub fn scan(&self, p: Point2, rng: &mut StdRng) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for ap in &self.aps {
            let noise = {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            let rssi = self.mean_rssi_dbm(ap, p) + noise * self.shadowing_sigma_db;
            if rssi >= self.detection_threshold_dbm {
                out.insert(ap.id.clone(), rssi);
            }
        }
        out
    }
}

/// An offline fingerprint database: mean signal vectors on a grid over
/// the building floor.
///
/// ```
/// use std::sync::Arc;
/// use perpos_geo::Point2;
/// use perpos_model::demo_building;
/// use perpos_sensors::{RadioMap, WifiEnvironment};
///
/// let env = WifiEnvironment::with_ap_per_room(Arc::new(demo_building()), 0);
/// let map = RadioMap::build(&env, 1.0);
/// // Estimate a position from the noiseless fingerprint at a known spot.
/// let mut rng = rand::SeedableRng::seed_from_u64(7);
/// let scan = env.scan(Point2::new(7.5, 2.0), &mut rng);
/// let (estimate, _confidence) = map.estimate(&scan, 3).expect("coverage");
/// assert!(estimate.distance(&Point2::new(7.5, 2.0)) < 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct RadioMap {
    fingerprints: Vec<(Point2, BTreeMap<String, f64>)>,
    missing_penalty_dbm: f64,
}

impl RadioMap {
    /// Surveys the floor on a `grid_step`-metre grid (only points inside
    /// a room are kept).
    pub fn build(env: &WifiEnvironment, grid_step: f64) -> Self {
        assert!(grid_step > 0.1, "grid step too fine: {grid_step}");
        let mut fingerprints = Vec::new();
        let Some(floor) = env.building.floor(env.floor) else {
            return RadioMap {
                fingerprints,
                missing_penalty_dbm: env.detection_threshold_dbm,
            };
        };
        // Bounding box over all rooms.
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for room in floor.rooms() {
            let (lo, hi) = room.outline().bounding_box();
            min_x = min_x.min(lo.x);
            min_y = min_y.min(lo.y);
            max_x = max_x.max(hi.x);
            max_y = max_y.max(hi.y);
        }
        let mut y = min_y + grid_step / 2.0;
        while y < max_y {
            let mut x = min_x + grid_step / 2.0;
            while x < max_x {
                let p = Point2::new(x, y);
                if floor.room_at(p).is_some() {
                    let mut fp = BTreeMap::new();
                    for ap in &env.aps {
                        let rssi = env.mean_rssi_dbm(ap, p);
                        if rssi >= env.detection_threshold_dbm {
                            fp.insert(ap.id.clone(), rssi);
                        }
                    }
                    fingerprints.push((p, fp));
                }
                x += grid_step;
            }
            y += grid_step;
        }
        RadioMap {
            fingerprints,
            missing_penalty_dbm: env.detection_threshold_dbm,
        }
    }

    /// Number of surveyed grid points.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    fn signal_distance(&self, a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (id, va) in a {
            let vb = b.get(id).copied().unwrap_or(self.missing_penalty_dbm);
            sum += (va - vb).powi(2);
            n += 1;
        }
        for (id, vb) in b {
            if !a.contains_key(id) {
                sum += (vb - self.missing_penalty_dbm).powi(2);
                n += 1;
            }
        }
        if n == 0 {
            f64::INFINITY
        } else {
            (sum / n as f64).sqrt()
        }
    }

    /// k-NN position estimate for a scan: the weighted centroid of the
    /// `k` closest fingerprints in signal space, plus a rough accuracy
    /// estimate (spread of the neighbours).
    pub fn estimate(&self, scan: &BTreeMap<String, f64>, k: usize) -> Option<(Point2, f64)> {
        if self.fingerprints.is_empty() || scan.is_empty() || k == 0 {
            return None;
        }
        let mut scored: Vec<(f64, Point2)> = self
            .fingerprints
            .iter()
            .map(|(p, fp)| (self.signal_distance(scan, fp), *p))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let neighbours = &scored[..k.min(scored.len())];
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for (d, p) in neighbours {
            let w = 1.0 / (d + 0.1);
            wx += p.x * w;
            wy += p.y * w;
            wsum += w;
        }
        let est = Point2::new(wx / wsum, wy / wsum);
        let spread = neighbours
            .iter()
            .map(|(_, p)| p.distance(&est))
            .fold(0.0, f64::max)
            .max(1.0);
        Some((est, spread))
    }
}

/// A WiFi scanning Source component: emits `wifi.scan` items for a target
/// on a [`Trajectory`].
///
/// Reflective methods: `setEnabled(bool)`, `isEnabled() -> bool`.
pub struct WifiScanner {
    name: String,
    env: Arc<WifiEnvironment>,
    trajectory: Trajectory,
    interval: SimDuration,
    next_at: SimTime,
    rng: StdRng,
    enabled: bool,
}

impl WifiScanner {
    /// Creates a scanner sampling once per second.
    pub fn new(name: impl Into<String>, env: Arc<WifiEnvironment>, trajectory: Trajectory) -> Self {
        WifiScanner {
            name: name.into(),
            env,
            trajectory,
            interval: SimDuration::from_secs(1),
            next_at: SimTime::ZERO,
            rng: StdRng::seed_from_u64(0x71f1),
            enabled: true,
        }
    }

    /// Sets the scan interval (builder style).
    pub fn with_interval(mut self, d: SimDuration) -> Self {
        self.interval = d;
        self
    }

    /// Seeds the shadowing noise (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }
}

impl std::fmt::Debug for WifiScanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WifiScanner")
            .field("name", &self.name)
            .finish()
    }
}

impl Component for WifiScanner {
    fn descriptor(&self) -> ComponentDescriptor {
        let secs = self.interval.as_secs_f64();
        let mut transfer = TransferSpec::new();
        if secs > 0.0 {
            transfer = transfer.with_emit_rate_hz(1.0 / secs);
        }
        ComponentDescriptor::source(self.name.clone(), vec![kinds::WIFI_SCAN])
            .with_transfer(transfer)
    }

    fn on_input(
        &mut self,
        port: usize,
        _item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Err(CoreError::ComponentFailure {
            component: self.name.clone(),
            reason: format!("WiFi source has no input port {port}"),
        })
    }

    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        if !self.enabled || ctx.now() < self.next_at {
            return Ok(());
        }
        self.next_at = ctx.now() + self.interval;
        let p = self.trajectory.position_at(ctx.now());
        let scan = self.env.scan(p, &mut self.rng);
        if scan.is_empty() {
            return Ok(());
        }
        let map: BTreeMap<String, Value> = scan
            .into_iter()
            .map(|(id, rssi)| (id, Value::Float(rssi)))
            .collect();
        let item = DataItem::new(kinds::WIFI_SCAN, ctx.now(), Value::Map(map))
            .with_attr("source", Value::from("wifi"));
        ctx.emit(item);
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setEnabled" => {
                let on = args.first().and_then(Value::as_bool).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one bool".into(),
                    }
                })?;
                self.enabled = on;
                Ok(Value::Null)
            }
            "isEnabled" => Ok(Value::Bool(self.enabled)),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setEnabled", "(on: bool) -> null"),
            MethodSpec::new("isEnabled", "() -> bool"),
        ]
    }
}

/// The indoor positioning Processor: `wifi.scan` items in, WGS-84
/// positions (k-NN over a [`RadioMap`]) out.
///
/// Reflective methods: `setK(k: int)`, `getK() -> int`.
pub struct WifiPositioning {
    map: Arc<RadioMap>,
    building: Arc<Building>,
    k: usize,
}

impl WifiPositioning {
    /// Creates the positioning component with `k = 3`.
    pub fn new(map: Arc<RadioMap>, building: Arc<Building>) -> Self {
        WifiPositioning {
            map,
            building,
            k: 3,
        }
    }
}

impl std::fmt::Debug for WifiPositioning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WifiPositioning")
            .field("k", &self.k)
            .finish()
    }
}

impl Component for WifiPositioning {
    fn descriptor(&self) -> ComponentDescriptor {
        // Fingerprinting resolution is bounded by the radio-map grid; the
        // k-NN estimate cannot beat roughly a metre and degrades to room
        // scale under sparse scans.
        ComponentDescriptor::processor(
            "WifiPositioning",
            InputSpec::new("scan", vec![kinds::WIFI_SCAN]),
            vec![kinds::POSITION_WGS84],
        )
        .with_transfer(
            TransferSpec::new()
                .with_frame("wgs84")
                .with_accuracy_m(1.0, 8.0),
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let Some(map) = item.payload.as_map() else {
            return Ok(());
        };
        let scan: BTreeMap<String, f64> = map
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
            .collect();
        if let Some((p, acc)) = self.map.estimate(&scan, self.k) {
            let coord = self.building.frame().from_local(&p);
            let out = DataItem::new(
                kinds::POSITION_WGS84,
                ctx.now(),
                Value::from(Position::new(coord, Some(acc))),
            )
            .with_attr("source", Value::from("wifi"));
            ctx.emit(out);
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setK" => {
                let k = args.first().and_then(Value::as_i64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one int".into(),
                    }
                })?;
                if k < 1 {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("k must be >= 1, got {k}"),
                    });
                }
                self.k = k as usize;
                Ok(Value::Null)
            }
            "getK" => Ok(Value::Int(self.k as i64)),
            other => Err(CoreError::NoSuchMethod {
                target: "WifiPositioning".into(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setK", "(k: int) -> null"),
            MethodSpec::new("getK", "() -> int"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_model::demo_building;

    fn env() -> Arc<WifiEnvironment> {
        Arc::new(WifiEnvironment::with_ap_per_room(
            Arc::new(demo_building()),
            0,
        ))
    }

    #[test]
    fn rssi_decays_with_distance_and_walls() {
        let e = env();
        let ap = &e.access_points()[1]; // a room AP
        let near = e.mean_rssi_dbm(ap, ap.position + perpos_geo::Vec2::new(1.0, 0.0));
        let far = e.mean_rssi_dbm(ap, ap.position + perpos_geo::Vec2::new(3.0, 0.0));
        assert!(near > far);
        // A point in another room is attenuated by walls beyond distance.
        // (ap.position is R0's centre (2.5, 2.0); the path to (0.5, 7.0)
        // misses the door gap and crosses two walls.)
        let other_room = Point2::new(ap.position.x - 2.0, ap.position.y + 5.0);
        let d = ap.position.distance(&other_room);
        let through_walls = e.mean_rssi_dbm(ap, other_room);
        let open = ap.tx_power_dbm - 40.0 - 10.0 * e.path_loss_exponent * d.log10();
        assert!(
            through_walls <= open - 2.0 * e.wall_attenuation_db + 1e-9,
            "through {through_walls} vs open {open}"
        );
    }

    #[test]
    fn radio_map_covers_floor() {
        let e = env();
        let map = RadioMap::build(&e, 1.0);
        assert!(!map.is_empty());
        // Floor is 20 x 10.5 m; at 1 m grid expect on the order of 200 pts.
        assert!(map.len() > 150, "{}", map.len());
    }

    #[test]
    fn knn_estimates_are_metre_scale() {
        let e = env();
        let map = RadioMap::build(&e, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut errors = Vec::new();
        for (x, y) in [(2.5, 2.0), (7.5, 8.5), (12.0, 5.0), (17.0, 2.0)] {
            let truth = Point2::new(x, y);
            for _ in 0..5 {
                let scan = e.scan(truth, &mut rng);
                let (est, _acc) = map.estimate(&scan, 3).expect("estimate");
                errors.push(est.distance(&truth));
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 4.0, "mean WiFi error {mean} m too large");
    }

    #[test]
    fn estimate_edge_cases() {
        let e = env();
        let map = RadioMap::build(&e, 1.0);
        assert!(map.estimate(&BTreeMap::new(), 3).is_none());
        let mut rng = StdRng::seed_from_u64(1);
        let scan = e.scan(Point2::new(2.0, 2.0), &mut rng);
        assert!(map.estimate(&scan, 0).is_none());
        // k larger than the map still works.
        assert!(map.estimate(&scan, 10_000).is_some());
    }

    #[test]
    fn scanner_emits_scans() {
        let e = env();
        let traj = Trajectory::stationary(Point2::new(2.5, 2.0));
        let mut scanner = WifiScanner::new("wifi", e, traj).with_seed(9);
        let out = ComponentCtxProbe::run_tick(&mut scanner).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, kinds::WIFI_SCAN);
        assert!(out[0].payload.as_map().unwrap().len() >= 2);
        scanner.invoke("setEnabled", &[Value::Bool(false)]).unwrap();
        // Disabled: silent even when the interval elapses.
        let mut ctx = perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(10.0));
        scanner.on_tick(&mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
    }

    #[test]
    fn positioning_component_end_to_end() {
        let building = Arc::new(demo_building());
        let e = Arc::new(WifiEnvironment::with_ap_per_room(building.clone(), 0));
        let map = Arc::new(RadioMap::build(&e, 1.0));
        let truth = Point2::new(7.5, 2.0); // inside R1
        let mut rng = StdRng::seed_from_u64(5);
        let scan = e.scan(truth, &mut rng);
        let payload: BTreeMap<String, Value> = scan
            .into_iter()
            .map(|(k, v)| (k, Value::Float(v)))
            .collect();
        let item = DataItem::new(kinds::WIFI_SCAN, SimTime::ZERO, Value::Map(payload));
        let mut pos = WifiPositioning::new(map, building.clone());
        let out = ComponentCtxProbe::run_input(&mut pos, item).unwrap();
        assert_eq!(out.len(), 1);
        let est = out[0].position().unwrap();
        let local = building.frame().to_local(est.coord());
        assert!(
            local.distance(&truth) < 5.0,
            "error {}",
            local.distance(&truth)
        );
        assert_eq!(out[0].attr("source").and_then(Value::as_text), Some("wifi"));
    }

    #[test]
    fn scans_are_deterministic_per_seed() {
        let e = env();
        let traj = Trajectory::stationary(Point2::new(2.5, 2.0));
        let run = |seed| {
            let mut s = WifiScanner::new("wifi", e.clone(), traj.clone()).with_seed(seed);
            ComponentCtxProbe::run_tick(&mut s).unwrap()
        };
        assert_eq!(run(1), run(1), "same seed, same scan");
        assert_ne!(run(1), run(2), "different seed, different shadowing");
    }

    proptest::proptest! {
        /// k-NN estimates stay inside (or within slack of) the floor.
        #[test]
        fn estimates_stay_on_the_floor(x in 0.5f64..19.5, y in 0.5f64..10.0, seed in 0u64..50) {
            let e = env();
            let map = RadioMap::build(&e, 1.5);
            let mut rng = StdRng::seed_from_u64(seed);
            let scan = e.scan(Point2::new(x, y), &mut rng);
            if let Some((est, acc)) = map.estimate(&scan, 3) {
                proptest::prop_assert!((-1.0..21.0).contains(&est.x), "x {}", est.x);
                proptest::prop_assert!((-1.0..11.5).contains(&est.y), "y {}", est.y);
                proptest::prop_assert!(acc >= 1.0);
            }
        }
    }

    #[test]
    fn positioning_invoke() {
        let building = Arc::new(demo_building());
        let e = Arc::new(WifiEnvironment::with_ap_per_room(building.clone(), 0));
        let map = Arc::new(RadioMap::build(&e, 2.0));
        let mut pos = WifiPositioning::new(map, building);
        pos.invoke("setK", &[Value::Int(5)]).unwrap();
        assert_eq!(pos.invoke("getK", &[]).unwrap(), Value::Int(5));
        assert!(pos.invoke("setK", &[Value::Int(0)]).is_err());
    }
}
