//! One shard of the fleet: a slice of middleware instances stepped
//! together, with checkpoint-based instance restart and a watchdog
//! escalating clustered failures to shard quarantine.

use std::collections::BTreeMap;

use crate::data::Value;
use crate::fleet::snapshot::Snapshot;
use crate::fleet::watchdog::Watchdog;
use crate::{Middleware, SimDuration};

/// Builds the middleware instance with the given fleet-wide index.
/// Called once per instance at fleet construction and again on every
/// restart; it must rebuild the same structure each time (the restart
/// path restores the instance's checkpoint into the rebuilt graph).
///
/// The factory is the *only* thing shards share, and parallel
/// schedulers call it from several worker threads at once — hence
/// `Send + Sync`. For the fleet's byte-equality contract
/// (`Serial` ≡ `WorkStealing` ≡ `Permuted`, see
/// [`FleetScheduler`](crate::fleet::FleetScheduler)) the factory must
/// also be *order-free*: what it builds may depend on the instance
/// index and on how often that index was rebuilt, but not on how many
/// times *other* indices were built in between. A shared global
/// counter consulted on every call breaks the contract; a per-index
/// incarnation counter keeps it.
pub type InstanceFactory = Box<dyn Fn(usize) -> Middleware + Send + Sync>;

/// Whether a shard is currently stepping or riding out a quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The shard steps its instances normally.
    Running,
    /// The watchdog tripped; the shard skips rounds until its backoff
    /// elapses.
    Quarantined,
}

/// Counters for one shard's supervision activity.
///
/// These counters are *runtime* state of the shard, not instance state:
/// they are never captured by a [`Snapshot`](crate::fleet::Snapshot),
/// so an instance restarted from its checkpoint keeps its channel and
/// component counters while the supervision history stays with the
/// shard, and a rebuilt shard starts from the build-time baseline
/// (`instances` owned, one construction checkpoint each, everything
/// else zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Instances owned by the shard.
    pub instances: u64,
    /// Shard step rounds attempted (including quarantined ones).
    pub steps: u64,
    /// Instance-steps that completed successfully.
    pub live_steps: u64,
    /// Instance-steps lost to faults or shard quarantine.
    pub missed_steps: u64,
    /// Instance step failures that escaped in-instance containment.
    pub instance_faults: u64,
    /// Restarts that recovered from a checkpoint.
    pub restarts: u64,
    /// Restarts that had to start cold (checkpoint rejected).
    pub cold_restarts: u64,
    /// Checkpoints captured.
    pub checkpoints: u64,
    /// Times the watchdog quarantined the whole shard.
    pub quarantines: u64,
    /// Total steps-to-healthy summed over recoveries (mean recovery
    /// latency is `recovery_steps / (restarts + cold_restarts)`).
    pub recovery_steps: u64,
}

impl ShardStats {
    /// Fraction of attempted instance-steps that completed (`1.0` for
    /// an idle shard).
    pub fn availability(&self) -> f64 {
        let attempted = self.live_steps + self.missed_steps;
        if attempted == 0 {
            1.0
        } else {
            self.live_steps as f64 / attempted as f64
        }
    }

    /// Renders the counters as a reflective [`Value`] map.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("instances".into(), Value::Int(self.instances as i64));
        map.insert("steps".into(), Value::Int(self.steps as i64));
        map.insert("live_steps".into(), Value::Int(self.live_steps as i64));
        map.insert("missed_steps".into(), Value::Int(self.missed_steps as i64));
        map.insert(
            "instance_faults".into(),
            Value::Int(self.instance_faults as i64),
        );
        map.insert("restarts".into(), Value::Int(self.restarts as i64));
        map.insert(
            "cold_restarts".into(),
            Value::Int(self.cold_restarts as i64),
        );
        map.insert("checkpoints".into(), Value::Int(self.checkpoints as i64));
        map.insert("quarantines".into(), Value::Int(self.quarantines as i64));
        map.insert(
            "recovery_steps".into(),
            Value::Int(self.recovery_steps as i64),
        );
        map.insert("availability".into(), Value::Float(self.availability()));
        Value::Map(map)
    }
}

struct Instance {
    /// Fleet-wide index, passed back to the factory on restart.
    index: usize,
    mw: Middleware,
    checkpoint: Snapshot,
    /// Shard step at which the instance last faulted, until its next
    /// clean batch marks it healthy again.
    down_since: Option<u64>,
}

/// A slice of the fleet: owns its instances, checkpoints them on a
/// fixed cadence, restarts faulted instances from their checkpoints and
/// escalates clustered failures to a shard-wide quarantine through its
/// [`Watchdog`]. See the [module docs](crate::fleet) for the ladder.
pub struct Shard {
    id: usize,
    instances: Vec<Instance>,
    watchdog: Watchdog,
    stats: ShardStats,
    checkpoint_every: u64,
    steps_run: u64,
    /// Wall-clock nanoseconds spent inside [`Shard::run`], accumulated
    /// across calls. Deliberately *not* part of [`ShardStats`]: stats
    /// are scheduler-invariant by contract, wall time is not.
    wall_ns: u64,
}

impl Shard {
    /// Creates a shard owning the instances with fleet-wide indices
    /// `indices`, built through `factory`, checkpointing every
    /// `checkpoint_every` rounds.
    pub fn new(
        id: usize,
        indices: impl IntoIterator<Item = usize>,
        factory: &InstanceFactory,
        checkpoint_every: u64,
        watchdog: Watchdog,
    ) -> Self {
        let instances: Vec<Instance> = indices
            .into_iter()
            .map(|index| {
                let mw = factory(index);
                let checkpoint = mw.snapshot();
                Instance {
                    index,
                    mw,
                    checkpoint,
                    down_since: None,
                }
            })
            .collect();
        let stats = ShardStats {
            instances: instances.len() as u64,
            checkpoints: instances.len() as u64,
            ..ShardStats::default()
        };
        Shard {
            id,
            instances,
            watchdog,
            stats,
            checkpoint_every: checkpoint_every.max(1),
            steps_run: 0,
            wall_ns: 0,
        }
    }

    /// The shard's id within the pool.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Shard step rounds executed (or skipped while quarantined).
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Running or quarantined, as of the current shard step.
    pub fn state(&self) -> ShardState {
        if self.watchdog.quarantined_until(self.steps_run).is_some() {
            ShardState::Quarantined
        } else {
            ShardState::Running
        }
    }

    /// The shard's supervision counters.
    pub fn stats(&self) -> ShardStats {
        let mut s = self.stats;
        s.steps = self.steps_run;
        s.quarantines = self.watchdog.quarantines();
        s
    }

    /// Wall-clock nanoseconds spent stepping this shard so far,
    /// accumulated across [`Shard::run`] calls. Divide by
    /// [`Shard::steps_run`] for the per-round cost. Kept outside
    /// [`ShardStats`] on purpose: the stats are byte-equal across
    /// schedulers, the wall clock is machine- and schedule-dependent.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Read access to an owned instance by shard-local position.
    pub fn instance(&self, i: usize) -> Option<&Middleware> {
        self.instances.get(i).map(|inst| &inst.mw)
    }

    /// The last checkpoint captured for the instance at shard-local
    /// position `i` — what a restart would restore. Exposed read-only
    /// so equivalence suites can compare checkpoint contents across
    /// schedulers.
    pub fn checkpoint(&self, i: usize) -> Option<&crate::fleet::Snapshot> {
        self.instances.get(i).map(|inst| &inst.checkpoint)
    }

    /// Mutable access to an owned instance by shard-local position —
    /// the fleet's door to per-instance reflection (`invoke`, feature
    /// attachment, policy changes).
    pub fn instance_mut(&mut self, i: usize) -> Option<&mut Middleware> {
        self.instances.get_mut(i).map(|inst| &mut inst.mw)
    }

    /// Number of instances owned.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the shard owns no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Steps every instance `rounds` times, advancing each instance's
    /// clock by `tick` per step, applying the full escalation ladder:
    /// instance faults restart from checkpoints, clustered faults
    /// quarantine the shard for a seeded backoff.
    pub fn run(&mut self, factory: &InstanceFactory, rounds: u64, tick: SimDuration) {
        let started = std::time::Instant::now();
        let mut done = 0u64;
        while done < rounds {
            if let Some(until) = self.watchdog.quarantined_until(self.steps_run) {
                let skip = (until - self.steps_run).min(rounds - done);
                self.stats.missed_steps += skip * self.instances.len() as u64;
                self.steps_run += skip;
                done += skip;
                continue;
            }
            let to_boundary = self.checkpoint_every - (self.steps_run % self.checkpoint_every);
            let chunk = to_boundary.min(rounds - done);
            let mut round_faults = 0u64;
            for i in 0..self.instances.len() {
                round_faults += self.step_instance(factory, i, chunk, tick);
            }
            self.steps_run += chunk;
            done += chunk;
            if round_faults == 0 {
                self.watchdog.record_clean_round();
            }
            if self.steps_run.is_multiple_of(self.checkpoint_every) {
                for inst in &mut self.instances {
                    inst.checkpoint = inst.mw.snapshot();
                }
                self.stats.checkpoints += self.instances.len() as u64;
            }
        }
        self.wall_ns += started.elapsed().as_nanos() as u64;
    }

    /// Steps one instance for `chunk` rounds; returns the number of
    /// faults charged to the watchdog (0 or 1).
    fn step_instance(
        &mut self,
        factory: &InstanceFactory,
        i: usize,
        chunk: u64,
        tick: SimDuration,
    ) -> u64 {
        let shard_step = self.steps_run;
        let inst = &mut self.instances[i];
        let before = inst.mw.steps_run();
        match inst.mw.step_batch(chunk, tick) {
            Ok(()) => {
                self.stats.live_steps += chunk;
                if let Some(since) = inst.down_since.take() {
                    self.stats.recovery_steps += (shard_step + chunk).saturating_sub(since);
                }
                0
            }
            Err(_) => {
                // steps_run includes the failing step; everything before
                // it completed.
                let attempted = inst.mw.steps_run().saturating_sub(before);
                let succeeded = attempted.saturating_sub(1);
                self.stats.live_steps += succeeded;
                self.stats.missed_steps += chunk - succeeded;
                self.stats.instance_faults += 1;
                let fault_step = shard_step + succeeded;
                if inst.down_since.is_none() {
                    inst.down_since = Some(fault_step);
                }
                let mut fresh = factory(inst.index);
                match fresh.restore(&inst.checkpoint) {
                    Ok(()) => {
                        inst.mw = fresh;
                        self.stats.restarts += 1;
                    }
                    Err(_) => {
                        // The checkpoint no longer matches what the
                        // factory builds (e.g. it predates a mid-run
                        // structural change applied outside the factory):
                        // restart cold from a fresh instance.
                        inst.mw = factory(inst.index);
                        inst.checkpoint = inst.mw.snapshot();
                        self.stats.cold_restarts += 1;
                    }
                }
                self.watchdog.record_fault(fault_step);
                1
            }
        }
    }
}
