//! Experiment F4 — reproduces the paper's Fig. 4: the logical-time data
//! tree of the GPS channel, including the case where an invalid NMEA
//! sentence makes one WGS-84 output consume several sentences.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_fig4_datatree`

#![allow(clippy::unwrap_used)]
use std::any::Any;

use perpos_bench::frame;
use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::*;
use perpos_sensors::{GpsEnvironment, GpsSimulator, Interpreter, Parser, Trajectory};

/// Captures rendered data trees as they are produced.
struct TreeCapture {
    rendered: Vec<String>,
    shapes: Vec<(usize, usize)>, // (elements, depth)
}

impl ChannelFeature for TreeCapture {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("TreeCapture")
    }
    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.rendered.push(tree.render());
        self.shapes.push((tree.len(), tree.depth()));
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() -> Result<(), CoreError> {
    let walk = Trajectory::stationary(perpos_geo::Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    // Low satellite counts make some sentences invalid, so trees vary in
    // width exactly as in Fig. 4.
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk)
            .with_seed(4)
            .with_environment(GpsEnvironment {
                mean_visible_sats: 3.5,
                sat_stddev: 2.0,
                base_noise_m: 8.0,
                dropout_prob: 0.0,
            }),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect(interpreter, app, 0)?;

    let channel = mw.channel_into(app, 0).expect("gps channel");
    mw.attach_channel_feature(
        channel,
        TreeCapture {
            rendered: Vec::new(),
            shapes: Vec::new(),
        },
    )?;

    mw.run_for(SimDuration::from_secs(90), SimDuration::from_secs(1))?;

    let (rendered, shapes) =
        mw.with_channel_feature_mut::<TreeCapture, _>(channel, "TreeCapture", |f| {
            (f.rendered.clone(), f.shapes.clone())
        })?;

    println!("=== Fig. 4: GPS channel data trees (logical time) ===\n");
    println!("channel outputs observed : {}", rendered.len());
    // Fig. 4's distinguishing shape: an output that consumed MORE than the
    // usual GGA+RMC pair — extra (invalid) sentences folded into its tree.
    let multi = shapes.iter().filter(|(n, _)| *n > 5).count();
    println!("outputs that folded in extra (invalid) sentences: {multi}");
    let avg: f64 = shapes.iter().map(|(n, _)| *n as f64).sum::<f64>() / shapes.len().max(1) as f64;
    println!("average tree size        : {avg:.2} elements, depth 3\n");

    // Show a tree with the Fig. 4 shape (a WGS84 consuming extra sentences).
    if let Some(i) = shapes.iter().position(|(n, _)| *n > 5) {
        println!("a Fig. 4-shaped tree (one output, extra invalid sentences folded in):\n");
        println!("{}", rendered[i]);
    }
    println!(
        "first tree produced:\n\n{}",
        rendered.first().map(String::as_str).unwrap_or("")
    );
    Ok(())
}
