//! Criterion bench: service-registry resolution cost as the number of
//! registered services grows (the OSGi-substrate hot path).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpos_registry::{Capability, Registry, Requirement, ServiceDescriptor};

fn chain_descriptor(i: usize) -> ServiceDescriptor {
    // Service i provides cap[i] and requires cap[i-1].
    let mut d =
        ServiceDescriptor::new(format!("svc{i}")).provides(Capability::new(format!("cap{i}")));
    if i > 0 {
        d = d.requires(Requirement::new(format!("cap{}", i - 1)));
    }
    d
}

fn bench_chain_registration(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_chain_register");
    for n in [10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let r: Registry<usize> = Registry::new();
                // Register in reverse so everything resolves at the end
                // (worst case for the fixed-point pass).
                for i in (0..n).rev() {
                    r.register(chain_descriptor(i), i);
                }
                r
            });
        });
    }
    group.finish();
}

fn bench_unregister_churn(c: &mut Criterion) {
    c.bench_function("registry_unregister_rewire", |b| {
        b.iter_with_setup(
            || {
                let r: Registry<usize> = Registry::new();
                let consumer = r.register(
                    ServiceDescriptor::new("consumer").requires(Requirement::new("cap")),
                    0,
                );
                let p1 = r.register(
                    ServiceDescriptor::new("p1").provides(Capability::new("cap")),
                    1,
                );
                let _p2 = r.register(
                    ServiceDescriptor::new("p2").provides(Capability::new("cap")),
                    2,
                );
                (r, consumer, p1)
            },
            |(r, _consumer, p1)| {
                r.unregister(p1).unwrap();
                r
            },
        );
    });
}

criterion_group!(benches, bench_chain_registration, bench_unregister_churn);
criterion_main!(benches);
