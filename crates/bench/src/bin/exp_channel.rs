//! Experiment "channel" — lazy vs eager data-tree materialization.
//!
//! The channel layer's Fig. 4 machinery historically built a [`DataTree`]
//! for every channel output whether or not anything observed it. Under
//! [`TreePolicy::Lazy`] (the default) a channel only materializes trees
//! while a Channel Feature is attached or a history subscription is
//! active; the logical-time bookkeeping always runs, so demand can flip
//! mid-run without perturbing later trees. This sweep measures what the
//! lazy path saves: items per second through one pipeline of depth D with
//! F attached features under both policies, driven through the batched
//! stepping entry (`Middleware::step_batch`).
//!
//! Run with: `cargo run -p perpos-bench --bin exp_channel --release`
//! (pass `--smoke` for the reduced CI sweep, which fails if the
//! featureless lazy path costs more than 0.8x eager at depth >= 16, or if
//! the eager path regressed more than 20 % against the committed
//! `BENCH_channel.json` baseline — both compared as calibrated cost, i.e.
//! step time divided by the time of a fixed integer kernel measured in
//! the same process, so the guard tolerates machine-speed drift).
//!
//! The full sweep (re)writes `BENCH_channel.json`; the smoke sweep only
//! reads it.

#![allow(clippy::unwrap_used)]
use std::any::Any;
use std::time::Instant;

use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree, TreePolicy};
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::*;
use perpos_sensors::codec::scan_block;

/// How items enter the pipeline: `item` ticks the source once per step
/// (`Middleware::step_batch`); `block` lexes pre-captured NMEA blocks
/// through `scan_block` and injects every line in one
/// `Middleware::ingest_batch` call, one logical step per line.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Ingest {
    Item,
    Block,
}

impl Ingest {
    fn as_str(self) -> &'static str {
        match self {
            Ingest::Item => "item",
            Ingest::Block => "block",
        }
    }
}

/// Lines per ingest block: sized like a sentence-burst read from a
/// serial GPS, and dividing both sweep step counts evenly.
const BLOCK_LINES: usize = 250;

/// Calibrated step cost (us_per_step / calib_us) of the seed data
/// plane at depth 4, features 0, lazy, item ingest — the committed
/// `BENCH_channel.json` before the arena/block-ingest refactor
/// (0.8041 µs at calib 2061.142 µs, i.e. 1.24 M items/s). The smoke
/// guard pins block ingest at >= 2x this throughput forever, in
/// calibrated units so the check survives machine-speed drift.
const SEED_DEPTH4_COST: f64 = 0.8041 / 2061.142;

/// A minimal observing feature: creates demand and touches every tree.
struct Consume(&'static str);

impl ChannelFeature for Consume {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(self.0)
    }
    fn apply(&mut self, tree: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        std::hint::black_box(tree.len());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const FEATURE_NAMES: [&str; 4] = ["Consume0", "Consume1", "Consume2", "Consume3"];

/// One pipeline of `depth` pass-through processors delivering to the
/// application sink, with `features` observing Channel Features attached
/// to the delivering channel. Processors are trivial on purpose: the
/// experiment times the channel layer, not component work.
fn build(depth: usize, features: usize) -> (Middleware, NodeId) {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        // A realistic raw payload: channel members hand sentence-sized
        // strings down the pipeline, as a GPS source would.
        Some(Value::Text(format!(
            "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,{i:04}"
        )))
    }));
    let mut prev = src;
    for d in 0..depth {
        // A relay moves the payload handle through without cloning it:
        // the hop cost measured here is the channel layer's, not an
        // artificial per-stage refcount round-trip.
        let node = mw.add_component(FnRelay::new(
            format!("stage{d}"),
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
        ));
        mw.connect(prev, node, 0).unwrap();
        prev = node;
    }
    let app = mw.application_sink();
    mw.connect(prev, app, 0).unwrap();
    let channel = mw.channel_into(app, 0).unwrap();
    for name in FEATURE_NAMES.iter().take(features) {
        mw.attach_channel_feature(channel, Consume(name)).unwrap();
    }
    (mw, src)
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Sample {
    depth: u64,
    features: u64,
    policy: String,
    ingest: String,
    us_per_step: f64,
    items_per_sec: f64,
    materialized: u64,
    skipped: u64,
    dropped: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Doc {
    experiment: String,
    cores: u64,
    steps: u64,
    /// Microseconds of the fixed calibration kernel on this machine;
    /// guard comparisons divide step times by this to cancel CPU drift.
    calib_us: f64,
    results: Vec<Sample>,
}

/// Fixed deterministic integer kernel used to normalize step times
/// across machines of different speed.
fn calibrate_once() -> f64 {
    let start = Instant::now();
    let mut v = 0x9e3779b97f4a7c15u64;
    for _ in 0..2_000_000 {
        v = std::hint::black_box(v.wrapping_mul(6_364_136_223_846_793_005).rotate_left(17));
    }
    std::hint::black_box(v);
    start.elapsed().as_nanos() as f64 / 1e3
}

fn calibrate() -> f64 {
    (0..3).fold(f64::INFINITY, |best, _| best.min(calibrate_once()))
}

/// Calibrated cost (step µs over kernel µs) of the depth-4 featureless
/// lazy block-ingest guard cell, measured against *bracketing* kernel
/// passes: each ingest pass is framed by calibration kernels, its ratio
/// uses the faster of the two frames, and the smallest ratio across
/// passes wins. The faster frame keeps a transiently slowed kernel from
/// overstating the speedup (the frames vote, the quiet one decides);
/// the min across passes discards passes where the transient hit the
/// ingest half instead. Only a load spike spanning both frames but
/// sparing the pass between them — nothing a real regression produces —
/// can still flatter the estimate.
fn guard_block_cost() -> f64 {
    let steps = 100_000;
    let (mut mw, src) = build(4, 0);
    mw.set_tree_policy(TreePolicy::Lazy);
    let tick = SimDuration::from_micros(1);
    let warmup = render_blocks(steps / 10);
    let blocks = render_blocks(steps);
    ingest_blocks(&mut mw, src, &warmup, tick);
    let mut best = f64::INFINITY;
    let mut frame = calibrate_once();
    for _ in 0..5 {
        let us = ingest_blocks(&mut mw, src, &blocks, tick);
        let next = calibrate_once();
        best = best.min(us / frame.min(next));
        frame = next;
    }
    best
}

/// Pre-renders `steps` NMEA sentences chunked into newline-joined
/// blocks of [`BLOCK_LINES`], modeling sentence bursts arriving from a
/// capture file or serial reader. Generation happens outside the timed
/// region; the timed region is lex + ingest only.
fn render_blocks(steps: u64) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut block = String::new();
    for i in 0..steps {
        block.push_str("$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,");
        block.push_str(&format!("{:04}\n", i + 1));
        if (i + 1) % BLOCK_LINES as u64 == 0 {
            blocks.push(std::mem::take(&mut block));
        }
    }
    if !block.is_empty() {
        blocks.push(block);
    }
    blocks
}

/// Runs `steps` items through the pipeline via block ingest and
/// returns the elapsed microseconds per item.
fn ingest_blocks(mw: &mut Middleware, src: NodeId, blocks: &[String], tick: SimDuration) -> f64 {
    let mut buf: Vec<&str> = Vec::with_capacity(BLOCK_LINES);
    let mut total = 0u64;
    let start = Instant::now();
    for block in blocks {
        let report = scan_block(block, &mut buf);
        assert_eq!(report.skipped, 0, "bench blocks are clean by construction");
        total += mw
            .ingest_batch(src, kinds::RAW_STRING, &buf, tick)
            .unwrap();
    }
    start.elapsed().as_micros() as f64 / total as f64
}

fn measure(depth: usize, features: usize, policy: TreePolicy, steps: u64, ingest: Ingest) -> Sample {
    let (mut mw, src) = build(depth, features);
    mw.set_tree_policy(policy);
    let tick = SimDuration::from_micros(1);
    // Best-of-3: interference from other processes only ever adds time,
    // so the minimum is the faithful estimate on a noisy machine.
    let mut best = f64::INFINITY;
    match ingest {
        Ingest::Item => {
            mw.step_batch(steps / 10, tick).unwrap();
            for _ in 0..3 {
                let start = Instant::now();
                mw.step_batch(steps, tick).unwrap();
                let us = start.elapsed().as_micros() as f64 / steps as f64;
                best = best.min(us);
            }
        }
        Ingest::Block => {
            let warmup = render_blocks(steps / 10);
            let blocks = render_blocks(steps);
            ingest_blocks(&mut mw, src, &warmup, tick);
            for _ in 0..3 {
                best = best.min(ingest_blocks(&mut mw, src, &blocks, tick));
            }
        }
    }
    let us = best;
    if std::env::var_os("EXP_CHANNEL_QUICK").is_some() {
        eprintln!("    arena: {:?}", mw.arena_stats());
    }
    let app = mw.application_sink();
    let channel = mw.channel_into(app, 0).unwrap();
    let stats = mw.channel_stats(channel).unwrap();
    Sample {
        depth: depth as u64,
        features: features as u64,
        policy: policy.as_str().to_string(),
        ingest: ingest.as_str().to_string(),
        us_per_step: us,
        // One item enters the pipeline per step.
        items_per_sec: 1e6 / us,
        materialized: stats.materialized,
        skipped: stats.skipped,
        dropped: stats.dropped,
    }
}

fn find<'a>(
    samples: &'a [Sample],
    depth: u64,
    features: u64,
    policy: &str,
    ingest: &str,
) -> Option<&'a Sample> {
    samples.iter().find(|s| {
        s.depth == depth && s.features == features && s.policy == policy && s.ingest == ingest
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Dev aid: EXP_CHANNEL_QUICK=1 measures only the depth-4
    // featureless row pair, skipping guards and the baseline write.
    let quick = std::env::var_os("EXP_CHANNEL_QUICK").is_some();
    let steps: u64 = if smoke { 20_000 } else { 100_000 };
    let depths: &[usize] = if quick {
        &[4]
    } else if smoke {
        &[4, 16]
    } else {
        &[4, 16, 32]
    };
    let feature_counts: &[usize] = if smoke || quick { &[0] } else { &[0, 1, 4] };
    let calib_us = calibrate();

    println!("=== channel: lazy vs eager tree materialization ({cores} core(s)) ===\n");
    println!(
        "{:>6} {:>9} {:>7} {:>7} {:>12} {:>14} {:>13} {:>9}",
        "depth", "features", "policy", "ingest", "step µs", "items/s", "materialized", "skipped"
    );
    println!("{}", "-".repeat(84));

    let mut samples = Vec::new();
    for &depth in depths {
        for &features in feature_counts {
            for policy in [TreePolicy::Lazy, TreePolicy::Eager] {
                for ingest in [Ingest::Item, Ingest::Block] {
                    let s = measure(depth, features, policy, steps, ingest);
                    println!(
                        "{:>6} {:>9} {:>7} {:>7} {:>12.2} {:>14.0} {:>13} {:>9}",
                        s.depth,
                        s.features,
                        s.policy,
                        s.ingest,
                        s.us_per_step,
                        s.items_per_sec,
                        s.materialized,
                        s.skipped
                    );
                    samples.push(s);
                }
            }
        }
    }

    if quick {
        return;
    }

    // Guard 1: at depth >= 16 with no features the lazy path must be
    // clearly cheaper than eager — at most 0.8x the step cost.
    let guard_depth = *depths.iter().max().unwrap() as u64;
    let lazy = find(&samples, guard_depth, 0, "lazy", "item").unwrap();
    let eager = find(&samples, guard_depth, 0, "eager", "item").unwrap();
    let ratio = lazy.us_per_step / eager.us_per_step;
    println!(
        "\nfeatureless depth-{guard_depth}: lazy/eager step cost = {ratio:.3} (limit 0.80), \
         lazy speed-up = {:.2}x items/s",
        eager.us_per_step / lazy.us_per_step
    );

    // Guard 3 input: block ingest at depth 4 against the pinned seed
    // baseline (pre-arena data plane), in calibrated units. The sweep's
    // samples share one up-front calibration, which is too noisy to
    // gate on — the guard cell is re-measured with paired calibration.
    let block_speedup = SEED_DEPTH4_COST / guard_block_cost();
    println!(
        "depth-4 featureless lazy block ingest = {block_speedup:.2}x the seed item baseline \
         (target >= 2.00x)"
    );

    if smoke {
        if ratio > 0.80 {
            eprintln!("FAIL: lazy materialization no longer pays for itself");
            std::process::exit(1);
        }
        // Guard 2: eager must not regress more than 20 % against the
        // committed baseline, comparing calibrated cost so the check
        // survives slower or faster CI machines.
        match std::fs::read_to_string("BENCH_channel.json") {
            Ok(text) => {
                let baseline: Doc = serde_json::from_str(&text).unwrap();
                let base = find(&baseline.results, guard_depth, 0, "eager", "item")
                    .expect("baseline misses the guard configuration");
                let base_cost = base.us_per_step / baseline.calib_us;
                let now_cost = eager.us_per_step / calib_us;
                let drift = now_cost / base_cost;
                println!("eager calibrated cost vs baseline = {drift:.3} (limit 1.20)");
                if drift > 1.20 {
                    eprintln!("FAIL: eager tree assembly regressed against BENCH_channel.json");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("FAIL: no committed BENCH_channel.json baseline to compare ({e})");
                std::process::exit(1);
            }
        }
        // Guard 3: block ingest must hold >= 2x the seed data plane's
        // depth-4 throughput (the refactor's acceptance bar), pinned
        // against SEED_DEPTH4_COST rather than the rolling baseline so
        // later baseline refreshes cannot relax it.
        if block_speedup < 2.0 {
            eprintln!("FAIL: block ingest below 2x the seed depth-4 baseline");
            std::process::exit(1);
        }
        return;
    }

    let doc = Doc {
        experiment: "channel".to_string(),
        cores: cores as u64,
        steps,
        calib_us,
        results: samples,
    };
    std::fs::write(
        "BENCH_channel.json",
        serde_json::to_string_pretty(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("wrote BENCH_channel.json");
}
