//! `perpos-lint` — lint a PerPos graph configuration from the command
//! line.
//!
//! ```text
//! perpos-lint <config.json> [--catalog <catalog.json>] [--format human|json]
//! perpos-lint <config.json> [--catalog <catalog.json>] --facts json
//! perpos-lint --explain PNNN
//! ```
//!
//! Exit status: `0` when no error-severity findings were reported
//! (warnings allowed), `1` when the configuration has errors, `2` on
//! usage or I/O problems.

use std::process::ExitCode;

use perpos_analysis::dataflow::FlowGraph;
use perpos_analysis::{analyze_config, facts_json, infer_facts, Code, TypeCatalog};
use perpos_core::assembly::GraphConfig;

enum Format {
    Human,
    Json,
}

struct Args {
    config_path: String,
    catalog_path: Option<String>,
    format: Format,
    facts: bool,
}

const USAGE: &str =
    "usage: perpos-lint <config.json> [--catalog <catalog.json>] [--format human|json]
       perpos-lint <config.json> [--catalog <catalog.json>] --facts json
       perpos-lint --explain <PNNN|all>

Lints a PerPos GraphConfig JSON file with the perpos-analysis passes
(P001-P014). Without --catalog only the built-in \"application\" type is
known; pass a catalog (see perpos_analysis::TypeCatalog) describing the
component types the configuration references.

--facts json  print the inferred dataflow facts (coordinate frames,
              accuracy and rate intervals, privacy taint) per node and
              per edge instead of the diagnostic report; the exit status
              still reflects the analysis
--explain     print the long-form description, an example trigger and
              the suggested fix for a diagnostic code (or all of them)

exit status: 0 = no errors, 1 = errors found, 2 = usage or I/O error";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config_path = None;
    let mut catalog_path = None;
    let mut format = Format::Human;
    let mut facts = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--catalog" => {
                catalog_path = Some(it.next().ok_or("--catalog needs a file argument")?.clone());
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some(other) => return Err(format!("unknown format {other:?}")),
                    None => return Err("--format needs human|json".to_string()),
                };
            }
            "--facts" => match it.next().map(String::as_str) {
                Some("json") => facts = true,
                Some(other) => return Err(format!("unknown facts format {other:?}")),
                None => return Err("--facts needs json".to_string()),
            },
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            other => {
                if config_path.replace(other.to_string()).is_some() {
                    return Err("more than one config file given".to_string());
                }
            }
        }
    }
    Ok(Args {
        config_path: config_path.ok_or("missing config file argument")?,
        catalog_path,
        format,
        facts,
    })
}

fn explain_one(code: Code) -> String {
    let e = code.explain();
    format!(
        "{code}: {}\n\n  {}\n\n  example: {}\n  fix:     {}\n",
        code.summary(),
        e.detail,
        e.example,
        e.fix
    )
}

fn run_explain(argument: Option<&String>) -> Result<(), String> {
    let argument = argument.ok_or("--explain needs a code (PNNN) or \"all\"")?;
    if argument == "all" {
        let rendered: Vec<String> = Code::ALL.iter().map(|c| explain_one(*c)).collect();
        print!("{}", rendered.join("\n"));
        return Ok(());
    }
    let code = Code::parse(argument).ok_or_else(|| {
        format!(
            "unknown diagnostic code {argument:?}; known codes: {}",
            Code::ALL.map(|c| c.as_str()).join(", ")
        )
    })?;
    print!("{}", explain_one(code));
    Ok(())
}

fn run(args: &Args) -> Result<bool, String> {
    let config_text = std::fs::read_to_string(&args.config_path)
        .map_err(|e| format!("cannot read {:?}: {e}", args.config_path))?;
    let config: GraphConfig = serde_json::from_str(&config_text)
        .map_err(|e| format!("{:?} is not a GraphConfig: {e}", args.config_path))?;

    let catalog = match &args.catalog_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            serde_json::from_str::<TypeCatalog>(&text)
                .map_err(|e| format!("{path:?} is not a TypeCatalog: {e}"))?
        }
        None => TypeCatalog::new(),
    };

    let report = analyze_config(&config, &catalog);
    if args.facts {
        let flow = FlowGraph::from_config(&config, &catalog);
        let facts = infer_facts(&flow);
        println!("{}", facts_json(&flow, &facts));
    } else {
        match args.format {
            Format::Human => print!("{}", report.render_human()),
            Format::Json => println!("{}", report.render_json()),
        }
    }
    Ok(report.has_errors())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // --explain is a standalone subcommand: no config file involved.
    if argv.first().map(String::as_str) == Some("--explain") {
        return match run_explain(argv.get(1)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::from(1),
        Ok(false) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
