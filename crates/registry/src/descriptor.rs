use std::collections::BTreeMap;
use std::fmt;

/// A capability a service offers: a namespace name plus free-form
/// properties, e.g. `data.position {format: "wgs84", source: "gps"}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capability {
    name: String,
    properties: BTreeMap<String, String>,
}

impl Capability {
    /// Creates a capability in the given namespace.
    pub fn new(name: impl Into<String>) -> Self {
        Capability {
            name: name.into(),
            properties: BTreeMap::new(),
        }
    }

    /// Adds a property (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.insert(key.into(), value.into());
        self
    }

    /// The capability namespace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up a property value.
    pub fn property(&self, key: &str) -> Option<&str> {
        self.properties.get(key).map(String::as_str)
    }

    /// All properties.
    pub fn properties(&self) -> &BTreeMap<String, String> {
        &self.properties
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.properties.is_empty() {
            write!(f, "{:?}", self.properties)?;
        }
        Ok(())
    }
}

/// A requirement a service must have satisfied before it can resolve.
///
/// A requirement matches a [`Capability`] when the namespaces are equal and
/// every constraint property equals the capability's value for that key.
/// Optional requirements never block resolution but are wired when
/// satisfiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requirement {
    name: String,
    constraints: BTreeMap<String, String>,
    optional: bool,
}

impl Requirement {
    /// Creates a mandatory requirement on a capability namespace.
    pub fn new(name: impl Into<String>) -> Self {
        Requirement {
            name: name.into(),
            constraints: BTreeMap::new(),
            optional: false,
        }
    }

    /// Adds an equality constraint on a capability property.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.constraints.insert(key.into(), value.into());
        self
    }

    /// Marks the requirement optional: it will be wired when possible but
    /// does not block resolution.
    pub fn optional(mut self) -> Self {
        self.optional = true;
        self
    }

    /// The required capability namespace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this requirement is optional.
    pub fn is_optional(&self) -> bool {
        self.optional
    }

    /// Whether `cap` satisfies this requirement.
    pub fn matches(&self, cap: &Capability) -> bool {
        cap.name() == self.name
            && self
                .constraints
                .iter()
                .all(|(k, v)| cap.property(k) == Some(v.as_str()))
    }
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.optional {
            write!(f, "?")?;
        }
        if !self.constraints.is_empty() {
            write!(f, "{:?}", self.constraints)?;
        }
        Ok(())
    }
}

/// Declarative description of a service: its name, what it provides and
/// what it requires. The registry uses it for dependency resolution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceDescriptor {
    name: String,
    provides: Vec<Capability>,
    requires: Vec<Requirement>,
}

impl ServiceDescriptor {
    /// Creates a descriptor for a named service.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceDescriptor {
            name: name.into(),
            provides: Vec::new(),
            requires: Vec::new(),
        }
    }

    /// Adds a provided capability (builder style).
    pub fn provides(mut self, cap: Capability) -> Self {
        self.provides.push(cap);
        self
    }

    /// Adds a requirement (builder style).
    pub fn requires(mut self, req: Requirement) -> Self {
        self.requires.push(req);
        self
    }

    /// The service name (not necessarily unique).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Provided capabilities.
    pub fn capabilities(&self) -> &[Capability] {
        &self.provides
    }

    /// Declared requirements.
    pub fn requirements(&self) -> &[Requirement] {
        &self.requires
    }
}

impl fmt::Display for ServiceDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (provides {}, requires {})",
            self.name,
            self.provides.len(),
            self.requires.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirement_matches_namespace_and_properties() {
        let cap = Capability::new("data.position")
            .with("format", "wgs84")
            .with("source", "gps");
        assert!(Requirement::new("data.position").matches(&cap));
        assert!(Requirement::new("data.position")
            .with("format", "wgs84")
            .matches(&cap));
        assert!(!Requirement::new("data.position")
            .with("format", "roomid")
            .matches(&cap));
        assert!(!Requirement::new("data.nmea").matches(&cap));
        assert!(!Requirement::new("data.position")
            .with("accuracy", "high")
            .matches(&cap));
    }

    #[test]
    fn optional_flag() {
        let r = Requirement::new("x").optional();
        assert!(r.is_optional());
        assert!(!Requirement::new("x").is_optional());
    }

    #[test]
    fn descriptor_builder_accumulates() {
        let d = ServiceDescriptor::new("svc")
            .provides(Capability::new("a"))
            .provides(Capability::new("b"))
            .requires(Requirement::new("c"));
        assert_eq!(d.capabilities().len(), 2);
        assert_eq!(d.requirements().len(), 1);
        assert_eq!(d.name(), "svc");
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert!(!format!("{}", Capability::new("a").with("k", "v")).is_empty());
        assert!(!format!("{}", Requirement::new("a").optional()).is_empty());
        assert!(!format!("{}", ServiceDescriptor::new("s")).is_empty());
    }
}
