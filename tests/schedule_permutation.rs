//! Schedule-permutation sanitizer suite: validates the P017
//! wave-interference lint against real execution.
//!
//! [`PermutedParallel`] forms exactly the waves [`LevelParallel`] would,
//! but runs each wave's units in a seeded pseudo-random order. Two
//! directions, both tied to the static analysis:
//!
//! * A **P017-clean** graph (no shared state between same-wave
//!   components) is byte-identical to the sequential reference across
//!   ≥ 8 permutation seeds — the independence assumption the
//!   level-parallel determinism contract rests on really holds.
//! * An **interfering** graph — two same-wave sources bumping one shared
//!   atomic counter, the live twin of the committed
//!   `p017_wave_interference.json` lint fixture — both trips P017 under
//!   the level-parallel context *and* observably diverges across seeds.
//!
//! Together they show the lint neither under- nor over-approximates on
//! these graphs: clean means schedule-invariant, flagged means a real
//! schedule dependence exists.

#![allow(clippy::unwrap_used)]
use std::any::Any;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use perpos::analysis::{analyze_structure_in, Code, StructureContext};
use perpos::core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos::core::component::EffectSpec;
use perpos::core::executor::{ExecMode, PermutedParallel};
use perpos::prelude::*;

/// Seeds driving the permuted schedules. Distinct seeds explore
/// distinct per-wave unit orders.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xdead_beef, u64::MAX];

/// Records the exact rendered form of every data tree — the byte-level
/// observable the parity claims are stated over.
#[derive(Default)]
struct TreeLog {
    rendered: Vec<String>,
}

impl TreeLog {
    const NAME: &'static str = "TreeLog";
}

impl ChannelFeature for TreeLog {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
    }
    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.rendered.push(tree.render());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A source whose ticks bump a counter *shared with its same-wave twin*
/// and emit the observed value — the canonical P017 violation. The
/// descriptor declares the interference (`writes: ["shared-counter"]`),
/// so the static analysis sees exactly what the runtime does.
struct SharedCounterSource {
    name: &'static str,
    counter: Arc<AtomicI64>,
}

impl Component for SharedCounterSource {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source(self.name, vec![kinds::RAW_STRING])
            .with_effects(EffectSpec::new().writing("shared-counter"))
    }
    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        let v = self.counter.fetch_add(1, Ordering::SeqCst);
        ctx.emit_value(kinds::RAW_STRING, Value::Int(v));
        Ok(())
    }
    fn on_input(
        &mut self,
        _port: usize,
        _item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }
}

fn source(name: &str, stride: i64) -> impl Component {
    let mut i = 0i64;
    FnSource::new(name.to_string(), kinds::RAW_STRING, move |_| {
        i += stride;
        Some(Value::Int(i))
    })
}

fn stage(name: &str, mut f: impl FnMut(i64) -> i64 + Send + 'static) -> impl Component {
    FnProcessor::new(
        name.to_string(),
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        move |item| item.payload.as_i64().map(|v| Value::Int(f(v)).into()),
    )
}

/// Everything the parity claims quantify over, rendered to strings so
/// comparison is byte-exact.
#[derive(Debug, PartialEq)]
struct Observed {
    trees: Vec<Vec<String>>,
    history: String,
    steps: u64,
}

/// Runs `build`'s graph for 100 steps under the given executor (None =
/// the sequential reference) and collects every observable.
fn run(
    executor: Option<PermutedParallel>,
    build: impl FnOnce(&mut Middleware),
) -> (Observed, Vec<perpos::core::graph::NodeInfo>) {
    let mut mw = Middleware::new();
    if let Some(exec) = executor {
        mw.install_executor(Box::new(exec));
    }
    build(&mut mw);
    let channels: Vec<_> = mw.channels().iter().map(|c| c.id).collect();
    for &ch in &channels {
        mw.attach_channel_feature(ch, TreeLog::default()).unwrap();
    }
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_millis(100))
        .unwrap();
    let trees = channels
        .iter()
        .map(|&ch| {
            mw.with_channel_feature_mut(ch, TreeLog::NAME, |log: &mut TreeLog| log.rendered.clone())
                .unwrap()
        })
        .collect();
    let structure = mw.structure();
    (
        Observed {
            trees,
            history: format!("{:?}", provider.history()),
            steps: mw.steps_run(),
        },
        structure,
    )
}

/// The P017-clean scenario: three independent sources (so source waves
/// hold three units and queue waves hold parallel branch stages — there
/// is real schedule freedom to permute), two branches merging, no
/// shared state anywhere.
fn build_clean(mw: &mut Middleware) {
    let src_a = mw.add_component(source("src-a", 1));
    let src_b = mw.add_component(source("src-b", 10));
    let src_c = mw.add_component(source("src-c", 100));
    let pa1 = mw.add_component(stage("pa1", |v| v * 2));
    let pb1 = mw.add_component(stage("pb1", |v| v - 1));
    let pc1 = mw.add_component(stage("pc1", |v| v * 7));
    let app = mw.application_sink();
    mw.connect(src_a, pa1, 0).unwrap();
    mw.connect(src_b, pb1, 0).unwrap();
    mw.connect(src_c, pc1, 0).unwrap();
    mw.connect_to_sink(pa1, app).unwrap();
    mw.connect_to_sink(pb1, app).unwrap();
    mw.connect_to_sink(pc1, app).unwrap();
}

/// The interfering scenario: two same-wave sources sharing one atomic
/// counter (declared in their effect metadata), each feeding its own
/// stage into the sink.
fn build_interfering(mw: &mut Middleware) {
    let counter = Arc::new(AtomicI64::new(0));
    let cal_a = mw.add_component(SharedCounterSource {
        name: "cal-a",
        counter: Arc::clone(&counter),
    });
    let cal_b = mw.add_component(SharedCounterSource {
        name: "cal-b",
        counter,
    });
    let pa = mw.add_component(stage("pa", |v| v * 2));
    let pb = mw.add_component(stage("pb", |v| v * 3));
    let app = mw.application_sink();
    mw.connect(cal_a, pa, 0).unwrap();
    mw.connect(cal_b, pb, 0).unwrap();
    mw.connect_to_sink(pa, app).unwrap();
    mw.connect_to_sink(pb, app).unwrap();
}

#[test]
fn clean_graph_is_byte_identical_across_permutations() {
    let (reference, structure) = run(None, build_clean);
    assert!(
        reference.trees.iter().any(|t| !t.is_empty()),
        "scenario must actually derive trees: {reference:?}"
    );

    // The analysis agrees there is nothing to fear: no P017 under the
    // level-parallel deployment context.
    let report = analyze_structure_in(
        &structure,
        &StructureContext::for_executor(ExecMode::LevelParallel),
    );
    assert!(
        report.with_code(Code::P017).is_empty(),
        "clean graph must not trip P017: {}",
        report.render_human()
    );

    // And execution agrees with the analysis: every permuted schedule
    // reproduces the sequential reference byte for byte.
    for seed in SEEDS {
        let (permuted, _) = run(Some(PermutedParallel::with_seed(seed)), build_clean);
        assert_eq!(
            reference, permuted,
            "P017-clean graph diverged under permutation seed {seed}"
        );
    }
}

#[test]
fn interfering_fixture_trips_p017_and_diverges() {
    let (reference, structure) = run(None, build_interfering);

    // The static analysis flags the interference, naming the wave and
    // the shared resource.
    let report = analyze_structure_in(
        &structure,
        &StructureContext::for_executor(ExecMode::LevelParallel),
    );
    let p017 = report.with_code(Code::P017);
    assert_eq!(
        p017.len(),
        1,
        "interfering graph must trip P017 exactly once: {}",
        report.render_human()
    );
    assert!(
        p017[0].message.contains("shared-counter"),
        "P017 names the conflicting resource: {}",
        p017[0].message
    );

    // ...and without the level-parallel context the same structure is
    // P017-silent: sequential execution cannot observe the schedule.
    let sequential = analyze_structure_in(&structure, &StructureContext::default());
    assert!(sequential.with_code(Code::P017).is_empty());

    // Execution backs the finding: at least one permuted schedule
    // observably diverges from the sequential reference.
    let mut diverged = 0usize;
    for seed in SEEDS {
        let (permuted, _) = run(Some(PermutedParallel::with_seed(seed)), build_interfering);
        assert_eq!(permuted.steps, reference.steps);
        if permuted != reference {
            diverged += 1;
        }
    }
    assert!(
        diverged > 0,
        "interfering graph must diverge under at least one of {} permutation seeds",
        SEEDS.len()
    );
}
