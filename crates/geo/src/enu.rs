use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Ecef, Point2, Wgs84};

/// A local east-north-up offset from a [`LocalFrame`] origin, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Enu {
    /// East component in metres.
    pub east: f64,
    /// North component in metres.
    pub north: f64,
    /// Up component in metres.
    pub up: f64,
}

impl Enu {
    /// Creates an ENU offset from components in metres.
    pub fn new(east: f64, north: f64, up: f64) -> Self {
        Enu { east, north, up }
    }

    /// Euclidean norm in metres.
    pub fn norm(&self) -> f64 {
        (self.east * self.east + self.north * self.north + self.up * self.up).sqrt()
    }

    /// Horizontal (east/north) part as a planar point.
    pub fn to_point2(&self) -> Point2 {
        Point2::new(self.east, self.north)
    }
}

impl fmt::Display for Enu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ENU({:.2} E, {:.2} N, {:.2} U)",
            self.east, self.north, self.up
        )
    }
}

/// A local tangent-plane frame anchored at a WGS-84 origin.
///
/// The frame maps global positions to metric east/north/up offsets. PerPos
/// uses one frame per building to express indoor positions, walls and rooms
/// in metres (paper Fig. 6 floor plan).
///
/// ```
/// use perpos_geo::{LocalFrame, Wgs84};
/// let origin = Wgs84::new(56.17, 10.19, 0.0)?;
/// let frame = LocalFrame::new(origin);
/// let p = frame.to_local(&origin.destination(90.0, 10.0));
/// assert!((p.x - 10.0).abs() < 0.1 && p.y.abs() < 0.1);
/// # Ok::<(), perpos_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalFrame {
    origin: Wgs84,
    origin_ecef: Ecef,
}

impl LocalFrame {
    /// Creates a frame anchored at `origin`.
    pub fn new(origin: Wgs84) -> Self {
        LocalFrame {
            origin,
            origin_ecef: Ecef::from_wgs84(&origin),
        }
    }

    /// The frame origin.
    pub fn origin(&self) -> Wgs84 {
        self.origin
    }

    /// Converts a global position to an ENU offset from the origin.
    pub fn to_enu(&self, p: &Wgs84) -> Enu {
        let e = Ecef::from_wgs84(p);
        let dx = e.x - self.origin_ecef.x;
        let dy = e.y - self.origin_ecef.y;
        let dz = e.z - self.origin_ecef.z;
        let (sin_lat, cos_lat) = self.origin.lat_rad().sin_cos();
        let (sin_lon, cos_lon) = self.origin.lon_rad().sin_cos();
        Enu {
            east: -sin_lon * dx + cos_lon * dy,
            north: -sin_lat * cos_lon * dx - sin_lat * sin_lon * dy + cos_lat * dz,
            up: cos_lat * cos_lon * dx + cos_lat * sin_lon * dy + sin_lat * dz,
        }
    }

    /// Converts an ENU offset back to a global position.
    pub fn from_enu(&self, enu: &Enu) -> Wgs84 {
        let (sin_lat, cos_lat) = self.origin.lat_rad().sin_cos();
        let (sin_lon, cos_lon) = self.origin.lon_rad().sin_cos();
        let dx = -sin_lon * enu.east - sin_lat * cos_lon * enu.north + cos_lat * cos_lon * enu.up;
        let dy = cos_lon * enu.east - sin_lat * sin_lon * enu.north + cos_lat * sin_lon * enu.up;
        let dz = cos_lat * enu.north + sin_lat * enu.up;
        Ecef::new(
            self.origin_ecef.x + dx,
            self.origin_ecef.y + dy,
            self.origin_ecef.z + dz,
        )
        .to_wgs84()
    }

    /// Projects a global position to planar metric coordinates (east = x,
    /// north = y), discarding the vertical component.
    pub fn to_local(&self, p: &Wgs84) -> Point2 {
        self.to_enu(p).to_point2()
    }

    /// Lifts planar metric coordinates back to a global position at the
    /// frame origin's altitude plane.
    pub fn from_local(&self, p: &Point2) -> Wgs84 {
        self.from_enu(&Enu::new(p.x, p.y, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 20.0).unwrap())
    }

    #[test]
    fn origin_maps_to_zero() {
        let f = frame();
        let enu = f.to_enu(&f.origin());
        assert!(enu.norm() < 1e-9);
    }

    #[test]
    fn east_displacement() {
        let f = frame();
        let east_point = f.origin().destination(90.0, 100.0);
        let enu = f.to_enu(&east_point);
        // destination() is spherical while ENU is ellipsoidal: allow ~0.5% skew.
        assert!((enu.east - 100.0).abs() < 0.5, "east {}", enu.east);
        assert!(enu.north.abs() < 0.5);
    }

    #[test]
    fn north_displacement() {
        let f = frame();
        let north_point = f.origin().destination(0.0, 250.0);
        let enu = f.to_enu(&north_point);
        assert!((enu.north - 250.0).abs() < 1.5, "north {}", enu.north);
        assert!(enu.east.abs() < 1.5);
    }

    proptest! {
        #[test]
        fn enu_round_trip(e in -2000.0f64..2000.0, n in -2000.0f64..2000.0, u in -50.0f64..50.0) {
            let f = frame();
            let p = f.from_enu(&Enu::new(e, n, u));
            let back = f.to_enu(&p);
            prop_assert!((back.east - e).abs() < 1e-3);
            prop_assert!((back.north - n).abs() < 1e-3);
            prop_assert!((back.up - u).abs() < 1e-3);
        }

        #[test]
        fn local_distance_matches_geodesic(e in -500.0f64..500.0, n in -500.0f64..500.0) {
            let f = frame();
            let p = f.from_local(&Point2::new(e, n));
            let planar = (e * e + n * n).sqrt();
            let geo = f.origin().distance_m(&p);
            // haversine is spherical, the frame ellipsoidal: allow 0.5% relative error.
            prop_assert!((planar - geo).abs() < planar * 5e-3 + 0.01, "planar {planar} vs geo {geo}");
        }
    }
}
