use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Wgs84, WGS84_A, WGS84_F};

/// An earth-centred, earth-fixed Cartesian coordinate in metres.
///
/// Used as the exact intermediate representation when converting between
/// [`Wgs84`] and local tangent-plane frames.
///
/// ```
/// use perpos_geo::{Ecef, Wgs84};
/// let p = Wgs84::new(56.0, 10.0, 50.0)?;
/// let e = Ecef::from_wgs84(&p);
/// let back = e.to_wgs84();
/// assert!((back.lat_deg() - 56.0).abs() < 1e-9);
/// # Ok::<(), perpos_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ecef {
    /// X axis: through the equator at the prime meridian, metres.
    pub x: f64,
    /// Y axis: through the equator at 90°E, metres.
    pub y: f64,
    /// Z axis: through the north pole, metres.
    pub z: f64,
}

impl Ecef {
    /// Creates an ECEF coordinate from raw metres.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Ecef { x, y, z }
    }

    /// Converts a geodetic WGS-84 position to ECEF.
    pub fn from_wgs84(p: &Wgs84) -> Self {
        let e2 = WGS84_F * (2.0 - WGS84_F); // first eccentricity squared
        let (sin_lat, cos_lat) = p.lat_rad().sin_cos();
        let (sin_lon, cos_lon) = p.lon_rad().sin_cos();
        // Prime vertical radius of curvature.
        let n = WGS84_A / (1.0 - e2 * sin_lat * sin_lat).sqrt();
        let h = p.alt_m();
        Ecef {
            x: (n + h) * cos_lat * cos_lon,
            y: (n + h) * cos_lat * sin_lon,
            z: (n * (1.0 - e2) + h) * sin_lat,
        }
    }

    /// Converts back to geodetic coordinates using Bowring's iteration.
    ///
    /// Accurate to well below a millimetre for terrestrial altitudes.
    pub fn to_wgs84(&self) -> Wgs84 {
        let e2 = WGS84_F * (2.0 - WGS84_F);
        let b = WGS84_A * (1.0 - WGS84_F);
        let ep2 = (WGS84_A * WGS84_A - b * b) / (b * b);
        let p = (self.x * self.x + self.y * self.y).sqrt();
        let lon = self.y.atan2(self.x);

        if p < 1e-9 {
            // On the polar axis: latitude is ±90 and longitude is arbitrary.
            let lat = if self.z >= 0.0 { 90.0 } else { -90.0 };
            let alt = self.z.abs() - b;
            return Wgs84::new(lat, 0.0, alt).expect("polar coordinates are valid");
        }

        // Bowring's initial parametric latitude guess, then one refinement.
        let theta = (self.z * WGS84_A).atan2(p * b);
        let (sin_t, cos_t) = theta.sin_cos();
        let lat = (self.z + ep2 * b * sin_t.powi(3)).atan2(p - e2 * WGS84_A * cos_t.powi(3));
        let sin_lat = lat.sin();
        let n = WGS84_A / (1.0 - e2 * sin_lat * sin_lat).sqrt();
        let alt = p / lat.cos() - n;

        Wgs84::new(
            lat.to_degrees().clamp(-90.0, 90.0),
            lon.to_degrees().clamp(-180.0, 180.0),
            alt,
        )
        .expect("clamped coordinates are valid")
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_m(&self, other: &Ecef) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

impl fmt::Display for Ecef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ECEF({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equator_prime_meridian() {
        let p = Wgs84::new(0.0, 0.0, 0.0).unwrap();
        let e = Ecef::from_wgs84(&p);
        assert!((e.x - WGS84_A).abs() < 1e-6);
        assert!(e.y.abs() < 1e-6);
        assert!(e.z.abs() < 1e-6);
    }

    #[test]
    fn north_pole() {
        let p = Wgs84::new(90.0, 0.0, 0.0).unwrap();
        let e = Ecef::from_wgs84(&p);
        let b = WGS84_A * (1.0 - WGS84_F);
        assert!(e.x.abs() < 1e-6);
        assert!((e.z - b).abs() < 1e-6);
        let back = e.to_wgs84();
        assert!((back.lat_deg() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn altitude_increases_radius() {
        let low = Ecef::from_wgs84(&Wgs84::new(45.0, 45.0, 0.0).unwrap());
        let high = Ecef::from_wgs84(&Wgs84::new(45.0, 45.0, 1000.0).unwrap());
        assert!((low.distance_m(&high) - 1000.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn round_trip(
            lat in -89.9f64..89.9,
            lon in -180.0f64..180.0,
            alt in -100.0f64..10_000.0,
        ) {
            let p = Wgs84::new(lat, lon, alt).unwrap();
            let back = Ecef::from_wgs84(&p).to_wgs84();
            prop_assert!((back.lat_deg() - lat).abs() < 1e-7, "lat {} -> {}", lat, back.lat_deg());
            prop_assert!((back.lon_deg() - lon).abs() < 1e-7 || (back.lon_deg() - lon).abs() > 359.9);
            prop_assert!((back.alt_m() - alt).abs() < 1e-3);
        }
    }
}
