//! Pre-instantiation analysis of declarative [`GraphConfig`]s.
//!
//! Runs the whole-graph lint passes a configuration can be checked
//! against *before* any component is built: reference validity (P007),
//! cycles (P005), type flow (P001), dangling inputs (P002), feature
//! requirements (P003), dead components (P004), missing source fault
//! policies (P009) and under-provisioned fleet containment (P016). All
//! passes run even
//! when earlier ones report errors, so one lint invocation surfaces
//! everything at once; connections with broken references are simply
//! skipped by the downstream passes.

use std::collections::{BTreeMap, BTreeSet};

use perpos_core::assembly::{ConnectionConfig, GraphConfig};

use crate::catalog::{ComponentTypeSpec, TypeCatalog};
use crate::diagnostic::{Code, Diagnostic, Report, Severity};

/// Analyzes a configuration against a catalog of component types,
/// producing every applicable P001–P005/P007/P009/P016 finding.
pub fn analyze_config(config: &GraphConfig, catalog: &TypeCatalog) -> Report {
    let mut report = Report::new();

    // Instance name -> resolved type (None when the kind is unknown).
    let mut instances: BTreeMap<&str, Option<ComponentTypeSpec>> = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for c in &config.components {
        if !seen.insert(c.name.as_str()) {
            report.push(
                Diagnostic::new(
                    Code::P007,
                    Severity::Error,
                    format!("duplicate instance name {:?}", c.name),
                    vec![c.name.clone()],
                )
                .with_hint("rename one of the instances; names must be unique"),
            );
            continue;
        }
        let spec = catalog.get(&c.kind);
        if spec.is_none() {
            report.push(
                Diagnostic::new(
                    Code::P007,
                    Severity::Error,
                    format!("unknown component type {:?}", c.kind),
                    vec![c.name.clone()],
                )
                .with_hint(format!(
                    "register a factory for {:?} or fix the kind; known types: {}",
                    c.kind,
                    known_kinds(catalog)
                )),
            );
        }
        instances.insert(c.name.as_str(), spec);
    }

    // P009: source components left on the default Propagate policy —
    // the engine aborts the whole run on their first fault.
    for c in &config.components {
        let is_source = instances
            .get(c.name.as_str())
            .and_then(|s| s.as_ref())
            .map(|s| s.role == "source")
            .unwrap_or(false);
        if is_source && c.fault_policy.is_none() {
            report.push(
                Diagnostic::new(
                    Code::P009,
                    Severity::Warning,
                    format!("source {:?} has no explicit fault policy", c.name),
                    vec![c.name.clone()],
                )
                .with_hint(
                    "sensors fail in the field; set fault_policy to \"drop_item\", \
                     \"restart\" or \"quarantine\" (the default \"propagate\" aborts \
                     the run on the first fault)",
                ),
            );
        }
    }

    // P016: a fleet deployment with components still on the default
    // Propagate policy — every routine fault skips in-instance
    // containment and is paid for as a fleet checkpoint restart.
    if let Some(spec) = &config.fleet {
        for c in &config.components {
            let is_app = instances
                .get(c.name.as_str())
                .and_then(|s| s.as_ref())
                .map(|s| s.role == "sink")
                .unwrap_or(c.kind == "application");
            if is_app || c.fault_policy.is_some() {
                continue;
            }
            report.push(
                Diagnostic::new(
                    Code::P016,
                    Severity::Warning,
                    format!(
                        "fleet of {} instances restarts from checkpoints on every \
                         fault of {:?} (no containment policy)",
                        spec.instances, c.name
                    ),
                    vec![c.name.clone()],
                )
                .with_hint(
                    "under a fleet block, give each component an explicit \
                     fault_policy (\"drop_item\", \"restart\" or \"quarantine\") so \
                     routine faults are absorbed inside the instance instead of \
                     costing a checkpoint restore",
                ),
            );
        }
    }

    // Validate each connection's references; collect the sound ones.
    let mut edges: Vec<&ConnectionConfig> = Vec::new();
    let mut driven: BTreeMap<(&str, usize), usize> = BTreeMap::new();
    for conn in &config.connections {
        let path = || {
            vec![
                conn.from.clone(),
                format!("{}(port {})", conn.to, conn.port),
            ]
        };
        let mut sound = true;
        for end in [&conn.from, &conn.to] {
            if !instances.contains_key(end.as_str()) {
                report.push(
                    Diagnostic::new(
                        Code::P007,
                        Severity::Error,
                        format!("connection references unknown instance {end:?}"),
                        path(),
                    )
                    .with_hint("declare the instance in `components` or fix the name"),
                );
                sound = false;
            }
        }
        if let Some(Some(from_spec)) = instances.get(conn.from.as_str()) {
            if !from_spec.has_output() {
                report.push(
                    Diagnostic::new(
                        Code::P007,
                        Severity::Error,
                        format!("producer {:?} is a sink and has no output port", conn.from),
                        path(),
                    )
                    .with_hint("sinks only consume; reverse the connection or pick a producer"),
                );
                sound = false;
            }
        }
        if let Some(Some(to_spec)) = instances.get(conn.to.as_str()) {
            if conn.port >= to_spec.inputs.len() {
                report.push(
                    Diagnostic::new(
                        Code::P007,
                        Severity::Error,
                        format!(
                            "port {} is out of range; {:?} declares {} input port(s)",
                            conn.port,
                            conn.to,
                            to_spec.inputs.len()
                        ),
                        path(),
                    )
                    .with_hint(format!("use a port index below {}", to_spec.inputs.len())),
                );
                sound = false;
            }
        }
        if sound {
            *driven.entry((conn.to.as_str(), conn.port)).or_insert(0) += 1;
            edges.push(conn);
        }
    }
    for ((to, port), count) in &driven {
        if *count > 1 {
            report.push(
                Diagnostic::new(
                    Code::P007,
                    Severity::Error,
                    format!("input port {port} of {to:?} is driven by {count} connections"),
                    vec![format!("{to}(port {port})")],
                )
                .with_hint("each input port takes exactly one producer; drop the extras"),
            );
        }
    }

    check_cycles(&instances, &edges, &mut report);
    check_type_flow(&instances, &edges, &mut report);
    check_dangling_inputs(config, &instances, &edges, &mut report);
    check_feature_requirements(&instances, &edges, &mut report);
    check_dead_components(config, &instances, &edges, &mut report);

    // Semantic dataflow analyses (P010-P014) over the well-referenced
    // part of the configuration.
    let flow = crate::dataflow::FlowGraph::from_config(config, catalog);
    let (_, dataflow_report) = crate::domains::analyze_dataflow(&flow);
    report.merge(dataflow_report);

    // Effect & determinism checks (P017-P019) against the executor and
    // fleet deployment the configuration declares.
    crate::effects::effect_diagnostics(&flow, &mut report);

    report
}

fn known_kinds(catalog: &TypeCatalog) -> String {
    let mut kinds: Vec<&str> = catalog.types.iter().map(|t| t.kind.as_str()).collect();
    kinds.push(crate::catalog::APPLICATION_KIND);
    kinds.sort_unstable();
    kinds.join(", ")
}

/// P005: strongly connected components of the instance graph; every SCC
/// with more than one member — or a self-loop — is one cycle finding.
fn check_cycles(
    instances: &BTreeMap<&str, Option<ComponentTypeSpec>>,
    edges: &[&ConnectionConfig],
    report: &mut Report,
) {
    let names: Vec<&str> = instances.keys().copied().collect();
    let index: BTreeMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for e in edges {
        if let (Some(&f), Some(&t)) = (index.get(e.from.as_str()), index.get(e.to.as_str())) {
            succ[f].push(t);
        }
    }
    for scc in strongly_connected(&succ) {
        let cyclic = scc.len() > 1 || succ[scc[0]].contains(&scc[0]);
        if cyclic {
            let mut members: Vec<String> = scc.iter().map(|&i| names[i].to_string()).collect();
            members.sort_unstable();
            report.push(
                Diagnostic::new(
                    Code::P005,
                    Severity::Error,
                    format!("connections form a cycle through {}", members.join(" -> ")),
                    members.clone(),
                )
                .with_hint("positioning processes are DAGs; remove one edge of the cycle"),
            );
        }
    }
}

/// Iterative Tarjan SCC over an adjacency list.
fn strongly_connected(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    let mut next = 0usize;

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Explicit DFS frame: (node, next child position).
        let mut frames = vec![(start, 0usize)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*child) {
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
                frames.pop();
                if let Some(&mut (u, _)) = frames.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    sccs
}

/// P001: the producer's provided kinds must intersect the consuming
/// port's accepted kinds (empty accepts = any).
fn check_type_flow(
    instances: &BTreeMap<&str, Option<ComponentTypeSpec>>,
    edges: &[&ConnectionConfig],
    report: &mut Report,
) {
    for e in edges {
        let (Some(Some(from)), Some(Some(to))) =
            (instances.get(e.from.as_str()), instances.get(e.to.as_str()))
        else {
            continue;
        };
        let Some(port) = to.inputs.get(e.port) else {
            continue;
        };
        if port.accepts.is_empty() {
            continue;
        }
        if !from.provides.iter().any(|k| port.accepts.contains(k)) {
            report.push(
                Diagnostic::new(
                    Code::P001,
                    Severity::Error,
                    format!(
                        "{:?} provides [{}] but port {:?} of {:?} accepts [{}]",
                        e.from,
                        from.provides.join(", "),
                        port.name,
                        e.to,
                        port.accepts.join(", ")
                    ),
                    vec![e.from.clone(), format!("{}(port {})", e.to, e.port)],
                )
                .with_hint(
                    "insert a converting component between the two, or connect a \
                     producer of a compatible kind",
                ),
            );
        }
    }
}

/// P002: declared input ports that no connection drives. Every port of a
/// processor or merge is required (error); the application sink's 16
/// any-kind ports are optional, but a sink with *no* input at all is
/// suspicious (warning).
fn check_dangling_inputs(
    config: &GraphConfig,
    instances: &BTreeMap<&str, Option<ComponentTypeSpec>>,
    edges: &[&ConnectionConfig],
    report: &mut Report,
) {
    let driven: BTreeSet<(&str, usize)> = edges.iter().map(|e| (e.to.as_str(), e.port)).collect();
    for c in &config.components {
        let Some(Some(spec)) = instances.get(c.name.as_str()) else {
            continue;
        };
        if spec.is_sink() {
            let any = (0..spec.inputs.len()).any(|p| driven.contains(&(c.name.as_str(), p)));
            if !any {
                report.push(
                    Diagnostic::new(
                        Code::P002,
                        Severity::Warning,
                        format!("sink {:?} has no connected input", c.name),
                        vec![c.name.clone()],
                    )
                    .with_hint("connect the end of the positioning process to this sink"),
                );
            }
            continue;
        }
        for (i, port) in spec.inputs.iter().enumerate() {
            if !driven.contains(&(c.name.as_str(), i)) {
                report.push(
                    Diagnostic::new(
                        Code::P002,
                        Severity::Error,
                        format!(
                            "input port {:?} (index {i}) of {:?} is never connected",
                            port.name, c.name
                        ),
                        vec![format!("{}(port {i})", c.name)],
                    )
                    .with_hint(if port.accepts.is_empty() {
                        "connect any producer to this port".to_string()
                    } else {
                        format!("connect a producer of [{}]", port.accepts.join(", "))
                    }),
                );
            }
        }
    }
}

/// P003: a port with `required_features` can never be satisfied by plain
/// configuration instantiation — factories build bare components, and
/// `connect` validates feature requirements at wiring time, before any
/// feature could be attached.
fn check_feature_requirements(
    instances: &BTreeMap<&str, Option<ComponentTypeSpec>>,
    edges: &[&ConnectionConfig],
    report: &mut Report,
) {
    for e in edges {
        let Some(Some(to)) = instances.get(e.to.as_str()) else {
            continue;
        };
        let Some(port) = to.inputs.get(e.port) else {
            continue;
        };
        for feature in &port.required_features {
            report.push(
                Diagnostic::new(
                    Code::P003,
                    Severity::Error,
                    format!(
                        "port {:?} of {:?} requires feature {:?} on the producer, but \
                         configurations instantiate bare components",
                        port.name, e.to, feature
                    ),
                    vec![e.from.clone(), format!("{}(port {})", e.to, e.port)],
                )
                .with_hint(format!(
                    "build this edge through the graph API after attaching {feature:?} \
                     to {:?}, or drop the requirement",
                    e.from
                )),
            );
        }
    }
}

/// P004: instances with no directed path to any sink produce data nobody
/// consumes (orphan sources, dead subgraphs).
fn check_dead_components(
    config: &GraphConfig,
    instances: &BTreeMap<&str, Option<ComponentTypeSpec>>,
    edges: &[&ConnectionConfig],
    report: &mut Report,
) {
    // Walk backwards from every sink over reversed edges.
    let mut alive: BTreeSet<&str> = instances
        .iter()
        .filter(|(_, s)| s.as_ref().is_some_and(|s| s.is_sink()))
        .map(|(n, _)| *n)
        .collect();
    let mut frontier: Vec<&str> = alive.iter().copied().collect();
    while let Some(n) = frontier.pop() {
        for e in edges {
            if e.to == n && alive.insert(e.from.as_str()) {
                frontier.push(e.from.as_str());
            }
        }
    }
    for c in &config.components {
        let Some(Some(_)) = instances.get(c.name.as_str()) else {
            continue;
        };
        if !alive.contains(c.name.as_str()) {
            report.push(
                Diagnostic::new(
                    Code::P004,
                    Severity::Warning,
                    format!(
                        "{:?} has no path to any sink; its output is never consumed",
                        c.name
                    ),
                    vec![c.name.clone()],
                )
                .with_hint("connect it (transitively) to a sink, or remove it"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ComponentTypeSpec, PortSpec};
    use perpos_core::assembly::{ComponentConfig, ConnectionConfig};

    fn catalog() -> TypeCatalog {
        let mut c = TypeCatalog::new();
        c.insert(ComponentTypeSpec {
            kind: "gps".into(),
            role: "source".into(),
            inputs: vec![],
            provides: vec!["raw.string".into()],
            transfer: None,
            effects: None,
        });
        c.insert(ComponentTypeSpec {
            kind: "parser".into(),
            role: "processor".into(),
            inputs: vec![PortSpec {
                name: "in".into(),
                accepts: vec!["raw.string".into()],
                required_features: vec![],
            }],
            provides: vec!["nmea.sentence".into()],
            transfer: None,
            effects: None,
        });
        c
    }

    fn comp(name: &str, kind: &str) -> ComponentConfig {
        ComponentConfig {
            name: name.into(),
            kind: kind.into(),
            fault_policy: None,
            transfer: None,
            effects: None,
        }
    }

    fn supervised_comp(name: &str, kind: &str) -> ComponentConfig {
        ComponentConfig {
            name: name.into(),
            kind: kind.into(),
            fault_policy: Some("drop_item".into()),
            transfer: None,
            effects: None,
        }
    }

    fn edge(from: &str, to: &str, port: usize) -> ConnectionConfig {
        ConnectionConfig {
            from: from.into(),
            to: to.into(),
            port,
        }
    }

    #[test]
    fn clean_pipeline_lints_clean() {
        let config = GraphConfig {
            components: vec![
                supervised_comp("gps0", "gps"),
                comp("p0", "parser"),
                comp("app", "application"),
            ],
            connections: vec![edge("gps0", "p0", 0), edge("p0", "app", 0)],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let report = analyze_config(&config, &catalog());
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let config = GraphConfig {
            components: vec![comp("p0", "parser")],
            connections: vec![edge("p0", "p0", 0)],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let report = analyze_config(&config, &catalog());
        assert_eq!(
            report.with_code(Code::P005).len(),
            1,
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn every_pass_still_runs_with_broken_references() {
        // An unknown kind must not suppress the dangling-input finding on
        // the healthy parser instance.
        let config = GraphConfig {
            components: vec![
                comp("x", "nope"),
                comp("p0", "parser"),
                comp("app", "application"),
            ],
            connections: vec![edge("p0", "app", 0)],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let report = analyze_config(&config, &catalog());
        assert_eq!(report.with_code(Code::P007).len(), 1);
        assert_eq!(report.with_code(Code::P002).len(), 1);
    }
}
