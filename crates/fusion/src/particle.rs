//! The SIR particle filter of the paper's §3.2 / Fig. 6, implemented as a
//! merge Processing Component.

use std::sync::Arc;

use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, InputSpec, MethodSpec};
use perpos_core::prelude::*;
use perpos_geo::{LocalFrame, Point2, Vec2};
use perpos_model::Building;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::likelihood::LikelihoodHandle;

#[derive(Debug, Clone, Copy)]
struct Particle {
    pos: Point2,
    heading_deg: f64,
    weight: f64,
}

/// An SIR (sample–importance–resample) particle filter merging position
/// estimates from several sensors into a refined track.
///
/// Mirrors the paper's integration (Fig. 5):
///
/// * measurement weights come from the Likelihood Channel Feature via a
///   [`LikelihoodHandle`] (`consume` artifact 1: "the Channel Feature
///   called Likelihood is retrieved from the current input port and
///   applied to each particle"), falling back to the measurement's own
///   accuracy estimate when no handle is set;
/// * an optional [`Building`] model constrains particle motion — moves
///   through walls are heavily penalized (§1: "location models to impose
///   restrictions on possible movements in the environment").
///
/// Reflective methods: `particleCount() -> int`,
/// `setParticleCount(n: int)`, `effectiveSampleSize() -> float`,
/// `getParticles() -> list[[x, y, weight]]`.
pub struct ParticleFilter {
    name: String,
    frame: LocalFrame,
    building: Option<Arc<Building>>,
    floor: i32,
    likelihood: Option<LikelihoodHandle>,
    particles: Vec<Particle>,
    n_particles: usize,
    motion_speed_mps: f64,
    heading_jitter_deg: f64,
    rng: StdRng,
    last_update: Option<SimTime>,
    initialized: bool,
    inputs: usize,
    updates: u64,
}

impl ParticleFilter {
    /// Creates a filter with `inputs` position input ports and 500
    /// particles, working in `frame`.
    pub fn new(name: impl Into<String>, frame: LocalFrame, inputs: usize) -> Self {
        assert!(inputs >= 1, "a filter needs at least one input");
        ParticleFilter {
            name: name.into(),
            frame,
            building: None,
            floor: 0,
            likelihood: None,
            particles: Vec::new(),
            n_particles: 500,
            motion_speed_mps: 1.5,
            heading_jitter_deg: 25.0,
            rng: StdRng::seed_from_u64(0x9f17),
            last_update: None,
            initialized: false,
            inputs,
            updates: 0,
        }
    }

    /// Constrains motion with a building model (builder style).
    pub fn with_building(mut self, building: Arc<Building>, floor: i32) -> Self {
        self.building = Some(building);
        self.floor = floor;
        self
    }

    /// Uses a Likelihood Channel Feature handle for weighting (builder
    /// style).
    pub fn with_likelihood(mut self, handle: LikelihoodHandle) -> Self {
        self.likelihood = Some(handle);
        self
    }

    /// Sets the particle count (builder style).
    pub fn with_particles(mut self, n: usize) -> Self {
        assert!(n >= 10, "too few particles: {n}");
        self.n_particles = n;
        self
    }

    /// Sets the assumed maximum target speed (builder style).
    pub fn with_motion_speed(mut self, mps: f64) -> Self {
        self.motion_speed_mps = mps;
        self
    }

    /// Seeds the random generator (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn initialize(&mut self, around: Point2, sigma: f64) {
        self.particles = (0..self.n_particles)
            .map(|_| {
                let dx = self.normal() * sigma;
                let dy = self.normal() * sigma;
                let heading = self.rng.gen_range(0.0..360.0);
                Particle {
                    pos: Point2::new(around.x + dx, around.y + dy),
                    heading_deg: heading,
                    weight: 1.0 / self.n_particles as f64,
                }
            })
            .collect();
        self.initialized = true;
    }

    fn predict(&mut self, dt_s: f64) {
        let dt = dt_s.clamp(0.0, 10.0);
        if dt == 0.0 {
            return;
        }
        for i in 0..self.particles.len() {
            let jitter = self.heading_jitter_deg;
            let (heading, step) = {
                let p = &self.particles[i];
                let heading = p.heading_deg + self.normal_static() * jitter;
                let speed = self.rng.gen_range(0.0..self.motion_speed_mps);
                (heading, speed * dt)
            };
            let dir = Vec2::from_heading_deg(heading);
            let p = self.particles[i];
            let proposed = p.pos + dir * step;
            let blocked = self
                .building
                .as_ref()
                .is_some_and(|b| b.path_blocked(p.pos, proposed, self.floor));
            if blocked {
                // Reject the move: the particle bounces off the wall and
                // picks a new heading. No weight penalty — the particle
                // did not actually cross; impossible hypotheses die out
                // because they cannot follow the target through doors.
                let bounce = self.rng.gen_range(0.0..360.0);
                self.particles[i].heading_deg = bounce;
            } else {
                let particle = &mut self.particles[i];
                particle.heading_deg = heading;
                particle.pos = proposed;
            }
        }
    }

    fn normal_static(&mut self) -> f64 {
        self.normal()
    }

    fn weight_against(&mut self, measurement: Point2, fallback_sigma: f64) {
        let handle = self.likelihood.clone();
        for p in &mut self.particles {
            let d = p.pos.distance(&measurement);
            let l = match &handle {
                Some(h) => h.likelihood(d),
                None => {
                    let sigma = fallback_sigma.max(2.0);
                    (-0.5 * (d / sigma).powi(2)).exp().max(1e-12)
                }
            };
            p.weight *= l;
        }
        self.normalize();
    }

    fn normalize(&mut self) {
        let sum: f64 = self.particles.iter().map(|p| p.weight).sum();
        if sum <= 0.0 || !sum.is_finite() {
            let w = 1.0 / self.particles.len() as f64;
            for p in &mut self.particles {
                p.weight = w;
            }
        } else {
            for p in &mut self.particles {
                p.weight /= sum;
            }
        }
    }

    /// Effective sample size (1 / sum of squared weights).
    pub fn effective_sample_size(&self) -> f64 {
        let sq: f64 = self.particles.iter().map(|p| p.weight * p.weight).sum();
        if sq <= 0.0 {
            0.0
        } else {
            1.0 / sq
        }
    }

    fn maybe_resample(&mut self) {
        if self.particles.is_empty() {
            return;
        }
        if self.effective_sample_size() > self.particles.len() as f64 / 2.0 {
            return;
        }
        // Systematic resampling.
        let n = self.particles.len();
        let step = 1.0 / n as f64;
        let mut u: f64 = self.rng.gen_range(0.0..step);
        let mut cumulative = self.particles[0].weight;
        let mut i = 0usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            while u > cumulative && i + 1 < n {
                i += 1;
                cumulative += self.particles[i].weight;
            }
            let mut p = self.particles[i];
            p.weight = step;
            out.push(p);
            u += step;
        }
        self.particles = out;
    }

    /// Weighted-mean estimate and weighted standard deviation, in local
    /// coordinates.
    fn estimate(&self) -> (Point2, f64) {
        let mut x = 0.0;
        let mut y = 0.0;
        for p in &self.particles {
            x += p.pos.x * p.weight;
            y += p.pos.y * p.weight;
        }
        let mean = Point2::new(x, y);
        let var: f64 = self
            .particles
            .iter()
            .map(|p| p.weight * mean.distance(&p.pos).powi(2))
            .sum();
        (mean, var.sqrt().max(0.5))
    }

    /// Current particle positions and weights (for visualization — the
    /// red dots of Fig. 6).
    pub fn particles(&self) -> Vec<(Point2, f64)> {
        self.particles.iter().map(|p| (p.pos, p.weight)).collect()
    }
}

impl std::fmt::Debug for ParticleFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParticleFilter")
            .field("name", &self.name)
            .field("particles", &self.particles.len())
            .finish()
    }
}

impl Component for ParticleFilter {
    fn descriptor(&self) -> ComponentDescriptor {
        let inputs = (0..self.inputs)
            .map(|i| InputSpec::new(format!("in{i}"), vec![kinds::POSITION_WGS84]))
            .collect();
        // The particle population is state with no snapshot hooks yet:
        // a checkpoint restart silently re-initializes the filter, which
        // P018 surfaces for fleet deployments.
        ComponentDescriptor::merge(self.name.clone(), inputs, vec![kinds::POSITION_WGS84])
            .with_effects(EffectSpec::new().stateful(false))
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let position = item.position()?;
        let measurement = self.frame.to_local(position.coord());
        let accuracy = position.accuracy_m().unwrap_or(15.0);

        if !self.initialized {
            self.initialize(measurement, accuracy.max(5.0));
            self.last_update = Some(ctx.now());
        } else {
            let dt = ctx
                .now()
                .since(self.last_update.unwrap_or(ctx.now()))
                .as_secs_f64();
            self.last_update = Some(ctx.now());
            self.predict(dt);
            self.weight_against(measurement, accuracy);
            self.maybe_resample();
        }
        self.updates += 1;

        let (est, sigma) = self.estimate();
        let coord = self.frame.from_local(&est);
        let out = DataItem::new(
            kinds::POSITION_WGS84,
            ctx.now(),
            Value::from(Position::new(coord, Some(sigma))),
        )
        .with_attr("source", Value::from("fusion"));
        ctx.emit(out);
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "particleCount" => Ok(Value::Int(self.n_particles as i64)),
            "setParticleCount" => {
                let n = args.first().and_then(Value::as_i64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one int".into(),
                    }
                })?;
                if n < 10 {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("need at least 10 particles, got {n}"),
                    });
                }
                self.n_particles = n as usize;
                self.initialized = false; // reinitialize on next update
                Ok(Value::Null)
            }
            "effectiveSampleSize" => Ok(Value::Float(self.effective_sample_size())),
            "updateCount" => Ok(Value::Int(self.updates as i64)),
            "getParticles" => Ok(Value::List(
                self.particles
                    .iter()
                    .map(|p| {
                        Value::List(vec![
                            Value::Float(p.pos.x),
                            Value::Float(p.pos.y),
                            Value::Float(p.weight),
                        ])
                    })
                    .collect(),
            )),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("particleCount", "() -> int"),
            MethodSpec::new("setParticleCount", "(n: int) -> null"),
            MethodSpec::new("effectiveSampleSize", "() -> float"),
            MethodSpec::new("updateCount", "() -> int"),
            MethodSpec::new("getParticles", "() -> list[[x, y, weight]]"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_geo::Wgs84;
    use perpos_model::demo_building;

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    fn measurement(frame: &LocalFrame, p: Point2, acc: f64, t: f64) -> DataItem {
        DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::from_secs_f64(t),
            Value::from(Position::new(frame.from_local(&p), Some(acc))),
        )
    }

    #[test]
    fn converges_to_stationary_target() {
        let f = frame();
        let mut pf = ParticleFilter::new("pf", f, 1)
            .with_seed(42)
            .with_particles(300);
        let truth = Point2::new(10.0, 5.0);
        let mut last_est = None;
        for t in 0..20 {
            let item = measurement(&f, truth, 8.0, t as f64);
            let out = ComponentCtxProbe::run_input(&mut pf, item).unwrap();
            assert_eq!(out.len(), 1);
            last_est = Some(f.to_local(out[0].position().unwrap().coord()));
        }
        let err = last_est.unwrap().distance(&truth);
        assert!(err < 3.0, "converged estimate {err} m off");
    }

    #[test]
    fn estimate_beats_raw_noise_on_average() {
        let f = frame();
        let mut pf = ParticleFilter::new("pf", f, 1)
            .with_seed(7)
            .with_particles(400);
        let mut rng = StdRng::seed_from_u64(99);
        let truth = Point2::new(0.0, 0.0);
        let mut raw_err = 0.0;
        let mut pf_err = 0.0;
        let mut n = 0.0;
        for t in 0..40 {
            let noisy = Point2::new(
                truth.x + rng.gen_range(-10.0..10.0),
                truth.y + rng.gen_range(-10.0..10.0),
            );
            let item = measurement(&f, noisy, 6.0, t as f64);
            let out = ComponentCtxProbe::run_input(&mut pf, item).unwrap();
            let est = f.to_local(out[0].position().unwrap().coord());
            if t >= 5 {
                raw_err += noisy.distance(&truth);
                pf_err += est.distance(&truth);
                n += 1.0;
            }
        }
        assert!(
            pf_err / n < raw_err / n,
            "filter ({:.2} m) should beat raw ({:.2} m)",
            pf_err / n,
            raw_err / n
        );
    }

    #[test]
    fn building_constraint_resists_wall_jumps() {
        let f = frame();
        let building = Arc::new(demo_building());
        let mut pf = ParticleFilter::new("pf", f, 1)
            .with_seed(3)
            .with_particles(400)
            .with_building(building, 0);
        // Settle in room R0 (centre 2.5, 2.0).
        for t in 0..10 {
            let item = measurement(&f, Point2::new(2.5, 2.0), 3.0, t as f64);
            ComponentCtxProbe::run_input(&mut pf, item).unwrap();
        }
        // One wild outlier claims we teleported into R3 (17.5, 2.0).
        let item = measurement(&f, Point2::new(17.5, 2.0), 3.0, 10.0);
        let out = ComponentCtxProbe::run_input(&mut pf, item).unwrap();
        let est = f.to_local(out[0].position().unwrap().coord());
        // The constrained filter cannot have moved its mass through four
        // walls in one second.
        assert!(
            est.distance(&Point2::new(2.5, 2.0)) < 8.0,
            "estimate jumped to {est}"
        );
    }

    #[test]
    fn ess_drops_then_resamples() {
        let f = frame();
        let mut pf = ParticleFilter::new("pf", f, 1)
            .with_seed(5)
            .with_particles(200);
        let item = measurement(&f, Point2::new(0.0, 0.0), 10.0, 0.0);
        ComponentCtxProbe::run_input(&mut pf, item).unwrap();
        let full = pf.effective_sample_size();
        assert!((full - 200.0).abs() < 1.0, "uniform init: ESS = N");
        // A tight measurement far away skews weights, triggering
        // resampling which restores ESS.
        let item = measurement(&f, Point2::new(30.0, 0.0), 2.0, 1.0);
        ComponentCtxProbe::run_input(&mut pf, item).unwrap();
        assert!(pf.effective_sample_size() > 50.0, "resampled");
    }

    #[test]
    fn reflective_methods() {
        let f = frame();
        let mut pf = ParticleFilter::new("pf", f, 2);
        assert_eq!(pf.descriptor().inputs.len(), 2);
        assert_eq!(pf.invoke("particleCount", &[]).unwrap(), Value::Int(500));
        pf.invoke("setParticleCount", &[Value::Int(100)]).unwrap();
        assert_eq!(pf.invoke("particleCount", &[]).unwrap(), Value::Int(100));
        assert!(pf.invoke("setParticleCount", &[Value::Int(1)]).is_err());
        let item = measurement(&f, Point2::new(0.0, 0.0), 5.0, 0.0);
        ComponentCtxProbe::run_input(&mut pf, item).unwrap();
        let particles = pf.invoke("getParticles", &[]).unwrap();
        assert_eq!(particles.as_list().unwrap().len(), 100);
        assert_eq!(pf.invoke("updateCount", &[]).unwrap(), Value::Int(1));
        assert_eq!(pf.methods().len(), 5);
    }

    #[test]
    fn non_position_payload_errors() {
        let f = frame();
        let mut pf = ParticleFilter::new("pf", f, 1);
        let item = DataItem::new(kinds::POSITION_WGS84, SimTime::ZERO, Value::Int(1));
        assert!(matches!(
            ComponentCtxProbe::run_input(&mut pf, item),
            Err(CoreError::PayloadMismatch { .. })
        ));
    }
}
