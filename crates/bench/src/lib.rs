//! Shared harness code for the PerPos experiment binaries and criterion
//! benches. See `EXPERIMENTS.md` at the repository root for the map from
//! paper figures to binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use perpos_core::prelude::*;
use perpos_geo::{LocalFrame, Point2, Wgs84};
use perpos_sensors::{GpsEnvironment, GpsSimulator, Interpreter, Parser, Trajectory};

/// Summary statistics over a sample of errors (metres).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Root mean square.
    pub rmse: f64,
    /// Maximum.
    pub max: f64,
}

impl ErrorStats {
    /// Computes statistics from raw errors. Returns zeros for an empty
    /// sample.
    pub fn from(mut errors: Vec<f64>) -> Self {
        if errors.is_empty() {
            return ErrorStats {
                n: 0,
                mean: 0.0,
                median: 0.0,
                p95: 0.0,
                rmse: 0.0,
                max: 0.0,
            };
        }
        errors.sort_by(f64::total_cmp);
        let n = errors.len();
        let mean = errors.iter().sum::<f64>() / n as f64;
        let median = errors[n / 2];
        let p95 = errors[((n as f64 * 0.95) as usize).min(n - 1)];
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        let max = errors[n - 1];
        ErrorStats {
            n,
            mean,
            median,
            p95,
            rmse,
            max,
        }
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={:<4} mean={:>6.2} median={:>6.2} p95={:>6.2} rmse={:>6.2} max={:>6.2}",
            self.n, self.mean, self.median, self.p95, self.rmse, self.max
        )
    }
}

/// The shared anchor frame for experiments.
pub fn frame() -> LocalFrame {
    LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).expect("valid anchor"))
}

/// Builds the standard Fig. 1 GPS pipeline into `mw`:
/// GPS -> Parser -> Interpreter -> application sink.
/// Returns `(gps, parser, interpreter)`.
pub fn gps_pipeline(
    mw: &mut Middleware,
    trajectory: Trajectory,
    env: GpsEnvironment,
    seed: u64,
) -> (
    perpos_core::graph::NodeId,
    perpos_core::graph::NodeId,
    perpos_core::graph::NodeId,
) {
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), trajectory)
            .with_seed(seed)
            .with_environment(env),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).expect("gps -> parser");
    mw.connect(parser, interpreter, 0)
        .expect("parser -> interp");
    mw.connect_to_sink(interpreter, app).expect("interp -> app");
    (gps, parser, interpreter)
}

/// Position errors of `items` against the trajectory ground truth, in the
/// experiment frame.
pub fn position_errors(items: &[DataItem], trajectory: &Trajectory) -> Vec<f64> {
    let f = frame();
    items
        .iter()
        .filter_map(|i| {
            let p = i.payload.as_position()?;
            let truth = trajectory.position_at(i.timestamp);
            Some(f.to_local(p.coord()).distance(&truth))
        })
        .collect()
}

/// A straight 200 m walk at pedestrian speed.
pub fn straight_walk() -> Trajectory {
    Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(200.0, 0.0)], 1.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = ErrorStats::from(vec![1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 22.0).abs() < 1e-9);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 100.0);
        assert!(s.rmse > s.mean);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn stats_empty() {
        let s = ErrorStats::from(vec![]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn pipeline_builder_works() {
        let mut mw = Middleware::new();
        let (_gps, _parser, _interp) =
            gps_pipeline(&mut mw, straight_walk(), GpsEnvironment::open_sky(), 1);
        mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
            .unwrap();
        let p = mw
            .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
            .unwrap();
        assert!(p.last_position().is_some());
    }
}
