//! Criterion bench: NMEA parsing/encoding throughput and the stream
//! splitter.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use perpos_nmea::{parse_sentence, Sentence, SentenceSplitter};

const GGA: &str = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";
const RMC: &str = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";
const GSV: &str = "$GPGSV,2,1,08,01,40,083,46,02,17,308,41,12,07,344,39,14,22,228,45*75";

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_gga", |b| b.iter(|| parse_sentence(GGA).unwrap()));
    c.bench_function("parse_rmc", |b| b.iter(|| parse_sentence(RMC).unwrap()));
    c.bench_function("parse_gsv", |b| b.iter(|| parse_sentence(GSV).unwrap()));
}

fn bench_encode(c: &mut Criterion) {
    let sentence = parse_sentence(GGA).unwrap();
    c.bench_function("encode_gga", |b| b.iter(|| sentence.to_nmea_string()));
    let Sentence::Gga(_) = &sentence else {
        panic!()
    };
}

fn bench_splitter(c: &mut Criterion) {
    let stream: Vec<u8> = format!("{GGA}\r\n{RMC}\r\n{GSV}\r\n").into_bytes();
    c.bench_function("splitter_3_sentences", |b| {
        b.iter(|| {
            let mut s = SentenceSplitter::new();
            s.push(&stream);
            s.drain()
        })
    });
}

criterion_group!(benches, bench_parse, bench_encode, bench_splitter);
criterion_main!(benches);
