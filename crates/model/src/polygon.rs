use perpos_geo::{Point2, Segment2};
use serde::{Deserialize, Serialize};

/// A simple planar polygon given as a ring of vertices (not repeated at the
/// end). Vertices may wind in either direction.
///
/// Rooms in the building model are polygons; point containment implements
/// the location model's "which room is this position in" query.
///
/// ```
/// use perpos_geo::Point2;
/// use perpos_model::Polygon;
///
/// let square = Polygon::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(4.0, 0.0),
///     Point2::new(4.0, 4.0),
///     Point2::new(0.0, 4.0),
/// ]);
/// assert!(square.contains(&Point2::new(2.0, 2.0)));
/// assert!(!square.contains(&Point2::new(5.0, 2.0)));
/// assert!((square.area() - 16.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point2>,
}

impl Polygon {
    /// Creates a polygon from its vertex ring.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are given; a polygon with fewer
    /// vertices has no interior.
    pub fn new(vertices: Vec<Point2>) -> Self {
        assert!(
            vertices.len() >= 3,
            "a polygon needs at least 3 vertices, got {}",
            vertices.len()
        );
        Polygon { vertices }
    }

    /// Convenience constructor for an axis-aligned rectangle.
    pub fn rectangle(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Polygon::new(vec![
            Point2::new(min_x, min_y),
            Point2::new(max_x, min_y),
            Point2::new(max_x, max_y),
            Point2::new(min_x, max_y),
        ])
    }

    /// The vertex ring.
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Iterates over the polygon's edges as segments.
    pub fn edges(&self) -> impl Iterator<Item = Segment2> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment2::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            sum += a.x * b.y - b.x * a.y;
        }
        sum / 2.0
    }

    /// Absolute enclosed area in square metres.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Area centroid of the polygon.
    pub fn centroid(&self) -> Point2 {
        let a = self.signed_area();
        if a.abs() < 1e-12 {
            // Degenerate: fall back to the vertex average.
            let n = self.vertices.len() as f64;
            let (sx, sy) = self
                .vertices
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Point2::new(sx / n, sy / n);
        }
        let n = self.vertices.len();
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point2::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    pub fn bounding_box(&self) -> (Point2, Point2) {
        let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.vertices {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }

    /// Whether the point is inside the polygon (even-odd ray casting).
    ///
    /// Points exactly on an edge may report either side; room polygons in
    /// the building model share edges, and the resolver picks the first
    /// containing room deterministically.
    pub fn contains(&self, p: &Point2) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Shortest distance from `p` to the polygon boundary.
    pub fn distance_to_boundary(&self, p: &Point2) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square() -> Polygon {
        Polygon::rectangle(0.0, 0.0, 4.0, 4.0)
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn rejects_degenerate() {
        let _ = Polygon::new(vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]);
    }

    #[test]
    fn area_and_centroid_of_square() {
        let s = square();
        assert!((s.area() - 16.0).abs() < 1e-12);
        let c = s.centroid();
        assert!((c.x - 2.0).abs() < 1e-12 && (c.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn winding_direction_does_not_change_area() {
        let ccw = square();
        let mut verts = ccw.vertices().to_vec();
        verts.reverse();
        let cw = Polygon::new(verts);
        assert!((ccw.area() - cw.area()).abs() < 1e-12);
        assert!(ccw.signed_area() > 0.0);
        assert!(cw.signed_area() < 0.0);
    }

    #[test]
    fn contains_interior_not_exterior() {
        let s = square();
        assert!(s.contains(&Point2::new(0.1, 0.1)));
        assert!(s.contains(&Point2::new(3.9, 3.9)));
        assert!(!s.contains(&Point2::new(-0.1, 2.0)));
        assert!(!s.contains(&Point2::new(2.0, 4.1)));
    }

    #[test]
    fn l_shaped_polygon_containment() {
        let l = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 2.0),
            Point2::new(2.0, 2.0),
            Point2::new(2.0, 4.0),
            Point2::new(0.0, 4.0),
        ]);
        assert!(l.contains(&Point2::new(1.0, 3.0)));
        assert!(l.contains(&Point2::new(3.0, 1.0)));
        assert!(!l.contains(&Point2::new(3.0, 3.0))); // the notch
    }

    #[test]
    fn bounding_box_encloses_vertices() {
        let l = Polygon::new(vec![
            Point2::new(-1.0, 2.0),
            Point2::new(5.0, -3.0),
            Point2::new(2.0, 7.0),
        ]);
        let (min, max) = l.bounding_box();
        assert_eq!((min.x, min.y), (-1.0, -3.0));
        assert_eq!((max.x, max.y), (5.0, 7.0));
    }

    #[test]
    fn edge_count_matches_vertices() {
        assert_eq!(square().edges().count(), 4);
    }

    #[test]
    fn distance_to_boundary() {
        let s = square();
        assert!((s.distance_to_boundary(&Point2::new(2.0, 2.0)) - 2.0).abs() < 1e-12);
        assert!((s.distance_to_boundary(&Point2::new(6.0, 2.0)) - 2.0).abs() < 1e-12);
    }

    proptest! {
        /// Containment is invariant under rotation of the vertex ring.
        #[test]
        fn containment_invariant_under_ring_rotation(
            px in -1.0f64..5.0, py in -1.0f64..5.0, rot in 0usize..4
        ) {
            let s = square();
            let mut verts = s.vertices().to_vec();
            verts.rotate_left(rot);
            let rotated = Polygon::new(verts);
            let p = Point2::new(px, py);
            // Skip points that sit exactly on the boundary.
            if s.distance_to_boundary(&p) > 1e-9 {
                prop_assert_eq!(s.contains(&p), rotated.contains(&p));
            }
        }

        /// The centroid of a convex polygon lies inside it.
        #[test]
        fn centroid_of_rect_inside(
            w in 0.5f64..50.0, h in 0.5f64..50.0, ox in -10.0f64..10.0, oy in -10.0f64..10.0
        ) {
            let r = Polygon::rectangle(ox, oy, ox + w, oy + h);
            prop_assert!(r.contains(&r.centroid()));
        }
    }
}
