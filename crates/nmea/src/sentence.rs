use serde::{Deserialize, Serialize};
use std::fmt;

/// A UTC time-of-day as carried in NMEA sentences (`hhmmss.sss`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NmeaTime {
    /// Hours `0..24`.
    pub hour: u8,
    /// Minutes `0..60`.
    pub minute: u8,
    /// Seconds `0..60`.
    pub second: u8,
    /// Milliseconds `0..1000`.
    pub millis: u16,
}

impl NmeaTime {
    /// Creates a time of day; values are taken as-is (the parser validates).
    pub fn new(hour: u8, minute: u8, second: u8, millis: u16) -> Self {
        NmeaTime {
            hour,
            minute,
            second,
            millis,
        }
    }

    /// Seconds since midnight, fractional.
    pub fn seconds_of_day(&self) -> f64 {
        f64::from(self.hour) * 3600.0
            + f64::from(self.minute) * 60.0
            + f64::from(self.second)
            + f64::from(self.millis) / 1000.0
    }

    /// Builds a time of day from fractional seconds since midnight.
    ///
    /// Values are wrapped into one day.
    pub fn from_seconds_of_day(secs: f64) -> Self {
        let s = secs.rem_euclid(86_400.0);
        let hour = (s / 3600.0) as u8;
        let minute = ((s % 3600.0) / 60.0) as u8;
        let second = (s % 60.0) as u8;
        let millis = ((s - s.floor()) * 1000.0).round() as u16;
        NmeaTime {
            hour,
            minute,
            second,
            millis: millis.min(999),
        }
    }
}

impl fmt::Display for NmeaTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}:{:02}:{:02}.{:03}",
            self.hour, self.minute, self.second, self.millis
        )
    }
}

/// GPS fix quality as reported in GGA field 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FixQuality {
    /// No fix available.
    #[default]
    Invalid,
    /// Standard GPS fix.
    Gps,
    /// Differential GPS fix.
    Dgps,
    /// Other / proprietary fix kinds (PPS, RTK, estimated, …).
    Other(u8),
}

impl FixQuality {
    /// The numeric NMEA encoding of this quality.
    pub fn as_u8(&self) -> u8 {
        match self {
            FixQuality::Invalid => 0,
            FixQuality::Gps => 1,
            FixQuality::Dgps => 2,
            FixQuality::Other(v) => *v,
        }
    }

    /// Decodes the numeric NMEA value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => FixQuality::Invalid,
            1 => FixQuality::Gps,
            2 => FixQuality::Dgps,
            other => FixQuality::Other(other),
        }
    }

    /// Whether the receiver claims any kind of position fix.
    pub fn has_fix(&self) -> bool {
        !matches!(self, FixQuality::Invalid)
    }
}

/// `GGA` — global positioning system fix data.
///
/// This is the sentence the PerPos Interpreter consumes for positions and
/// the one whose HDOP / satellite-count fields the paper's Component
/// Features expose (§3.1, Fig. 5).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Gga {
    /// UTC time of the fix.
    pub time: NmeaTime,
    /// Latitude in decimal degrees, positive north; `None` when no fix.
    pub lat_deg: Option<f64>,
    /// Longitude in decimal degrees, positive east; `None` when no fix.
    pub lon_deg: Option<f64>,
    /// Fix quality indicator.
    pub quality: FixQuality,
    /// Number of satellites used in the fix.
    pub num_satellites: u8,
    /// Horizontal dilution of precision.
    pub hdop: f64,
    /// Antenna altitude above mean sea level in metres.
    pub altitude_m: f64,
    /// Geoidal separation in metres.
    pub geoid_separation_m: f64,
}

/// `RMC` — recommended minimum navigation information.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Rmc {
    /// UTC time of the fix.
    pub time: NmeaTime,
    /// Whether the receiver considers the data valid (`A`) or void (`V`).
    pub valid: bool,
    /// Latitude in decimal degrees, positive north; `None` when void.
    pub lat_deg: Option<f64>,
    /// Longitude in decimal degrees, positive east; `None` when void.
    pub lon_deg: Option<f64>,
    /// Speed over ground in knots.
    pub speed_knots: f64,
    /// Course over ground in degrees true.
    pub course_deg: f64,
    /// Date as `ddmmyy`.
    pub date: String,
}

impl Rmc {
    /// Speed over ground in metres per second.
    pub fn speed_mps(&self) -> f64 {
        self.speed_knots * 0.514_444
    }
}

/// Fix type reported in GSA field 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GsaFixType {
    /// No fix.
    #[default]
    NoFix,
    /// 2-D fix.
    Fix2d,
    /// 3-D fix.
    Fix3d,
}

/// `GSA` — DOP and active satellites.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Gsa {
    /// `true` when satellite selection is automatic.
    pub auto_selection: bool,
    /// Fix type.
    pub fix_type: GsaFixType,
    /// PRNs of satellites used in the fix (up to 12).
    pub prns: Vec<u8>,
    /// Position dilution of precision.
    pub pdop: f64,
    /// Horizontal dilution of precision.
    pub hdop: f64,
    /// Vertical dilution of precision.
    pub vdop: f64,
}

/// Per-satellite data inside a GSV sentence.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SatelliteInfo {
    /// Satellite PRN number.
    pub prn: u8,
    /// Elevation in degrees, `0..=90`.
    pub elevation_deg: u8,
    /// Azimuth in degrees, `0..360`.
    pub azimuth_deg: u16,
    /// Signal-to-noise ratio in dB; `None` when not tracked.
    pub snr_db: Option<u8>,
}

/// `GSV` — satellites in view.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Gsv {
    /// Total number of GSV messages in this cycle.
    pub total_messages: u8,
    /// Index of this message, 1-based.
    pub message_number: u8,
    /// Total satellites in view.
    pub satellites_in_view: u8,
    /// Up to four satellite records.
    pub satellites: Vec<SatelliteInfo>,
}

/// `VTG` — track made good and ground speed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vtg {
    /// Course over ground, degrees true.
    pub course_true_deg: f64,
    /// Speed over ground in knots.
    pub speed_knots: f64,
    /// Speed over ground in km/h.
    pub speed_kmh: f64,
}

/// A parsed NMEA-0183 sentence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sentence {
    /// GGA fix data.
    Gga(Gga),
    /// RMC recommended minimum data.
    Rmc(Rmc),
    /// GSA DOP and active satellites.
    Gsa(Gsa),
    /// GSV satellites in view.
    Gsv(Gsv),
    /// VTG course and speed.
    Vtg(Vtg),
    /// A syntactically valid sentence of a type this crate does not model.
    Unknown {
        /// Five-character address field, e.g. `"GPZDA"`.
        talker_and_type: String,
        /// Raw data fields.
        fields: Vec<String>,
    },
}

impl Sentence {
    /// The three-letter sentence type, e.g. `"GGA"`.
    pub fn type_code(&self) -> &str {
        match self {
            Sentence::Gga(_) => "GGA",
            Sentence::Rmc(_) => "RMC",
            Sentence::Gsa(_) => "GSA",
            Sentence::Gsv(_) => "GSV",
            Sentence::Vtg(_) => "VTG",
            Sentence::Unknown {
                talker_and_type, ..
            } => {
                if talker_and_type.len() >= 5 {
                    &talker_and_type[2..5]
                } else {
                    talker_and_type
                }
            }
        }
    }

    /// Whether the sentence carries a usable position fix.
    pub fn has_fix(&self) -> bool {
        match self {
            Sentence::Gga(g) => g.quality.has_fix() && g.lat_deg.is_some(),
            Sentence::Rmc(r) => r.valid && r.lat_deg.is_some(),
            _ => false,
        }
    }
}

impl fmt::Display for Sentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_nmea_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_seconds_round_trip() {
        let t = NmeaTime::new(12, 35, 19, 250);
        let back = NmeaTime::from_seconds_of_day(t.seconds_of_day());
        assert_eq!(t, back);
    }

    #[test]
    fn time_wraps_past_midnight() {
        let t = NmeaTime::from_seconds_of_day(86_400.0 + 61.5);
        assert_eq!((t.hour, t.minute, t.second, t.millis), (0, 1, 1, 500));
    }

    #[test]
    fn fix_quality_round_trip() {
        for v in 0..10u8 {
            assert_eq!(FixQuality::from_u8(v).as_u8(), v);
        }
        assert!(!FixQuality::Invalid.has_fix());
        assert!(FixQuality::Gps.has_fix());
        assert!(FixQuality::Other(5).has_fix());
    }

    #[test]
    fn rmc_speed_conversion() {
        let rmc = Rmc {
            speed_knots: 10.0,
            ..Rmc::default()
        };
        assert!((rmc.speed_mps() - 5.14444).abs() < 1e-9);
    }

    #[test]
    fn sentence_type_codes() {
        assert_eq!(Sentence::Gga(Gga::default()).type_code(), "GGA");
        assert_eq!(
            Sentence::Unknown {
                talker_and_type: "GPZDA".into(),
                fields: vec![]
            }
            .type_code(),
            "ZDA"
        );
    }

    #[test]
    fn has_fix_requires_coordinates() {
        let mut gga = Gga {
            quality: FixQuality::Gps,
            ..Gga::default()
        };
        assert!(!Sentence::Gga(gga.clone()).has_fix());
        gga.lat_deg = Some(56.0);
        gga.lon_deg = Some(10.0);
        assert!(Sentence::Gga(gga).has_fix());
    }
}
