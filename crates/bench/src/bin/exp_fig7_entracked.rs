//! Experiment F7 — reproduces the paper's Fig. 7 evaluation target: the
//! EnTracked power-efficient tracking system rebuilt from PerPos graph
//! abstractions, compared to always-on and fixed-periodic strategies
//! across distance thresholds, over a mixed walk/pause scenario.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_fig7_entracked --release`

#![allow(clippy::unwrap_used)]
use perpos_bench::frame;
use perpos_core::distribution::{Deployment, LinkModel};
use perpos_core::prelude::*;
use perpos_energy::{EnTrackedFeature, EnergyMeter, PowerModel, PowerStrategyFeature};
use perpos_geo::Point2;
use perpos_sensors::{GpsSimulator, Interpreter, MotionSensor, Parser, Trajectory};

const SCENARIO_S: u64 = 900; // 15 minutes

#[derive(Clone, Copy, Debug)]
enum Strategy {
    AlwaysOn,
    Periodic { period_s: u64 },
    EnTracked { threshold_m: f64 },
}

/// Walk ~5 min, stand ~10 min (the walk ends at 420 m / 1.4 m/s = 300 s).
fn scenario() -> Trajectory {
    Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(420.0, 0.0)], 1.4)
}

struct Outcome {
    energy_j: f64,
    mean_power_w: f64,
    gps_on_s: f64,
    reports: usize,
    mean_stale_err_m: f64,
    max_stale_err_m: f64,
}

fn run(strategy: Strategy, seed: u64) -> Outcome {
    let walk = scenario();
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk.clone())
            .with_seed(seed)
            .with_acquisition_delay(SimDuration::from_secs(4)),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let motion = mw.add_component(MotionSensor::new("Motion", walk.clone()).with_seed(seed + 7));
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    let target = mw.add_target("device");
    mw.connect(motion, target.node(), 0).unwrap();

    if let Strategy::EnTracked { threshold_m } = strategy {
        mw.attach_feature(gps, PowerStrategyFeature::new()).unwrap();
        let channel = mw.channel_into(target.node(), 0).unwrap();
        mw.attach_channel_feature(
            channel,
            EnTrackedFeature::new(gps, interpreter, threshold_m),
        )
        .unwrap();
    }

    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    let mut meter = EnergyMeter::new(PowerModel::default());
    let mut reports: Vec<(SimTime, Point2)> = Vec::new();
    let mut seen = 0usize;
    let mut stale_errs = Vec::new();
    let f = frame();

    for s in 0..SCENARIO_S {
        // Fixed-periodic control runs outside the middleware (it needs no
        // adaptation support — that is the point of the comparison).
        if let Strategy::Periodic { period_s } = strategy {
            let phase = s % period_s;
            let want_on = phase < 8; // 8 s on-window per period
            let is_on = mw.invoke(gps, "isEnabled", &[]).unwrap() == Value::Bool(true);
            if want_on != is_on {
                mw.invoke(gps, "setEnabled", &[Value::Bool(want_on)])
                    .unwrap();
            }
        }
        mw.step().unwrap();
        let on = mw.invoke(gps, "isEnabled", &[]).unwrap() == Value::Bool(true);
        let acq = mw.invoke(gps, "isAcquiring", &[]).unwrap() == Value::Bool(true);
        meter.sample(on, acq, true, SimDuration::from_secs(1));
        let history = provider.history();
        for item in &history[seen..] {
            if let Some(p) = item.payload.as_position() {
                reports.push((item.timestamp, f.to_local(p.coord())));
            }
        }
        meter.add_transmissions((history.len() - seen) as u64);
        seen = history.len();

        // Staleness error: truth vs last reported position.
        let t = mw.now();
        let truth = walk.position_at(t);
        if let Some((_, p)) = reports.last() {
            stale_errs.push(p.distance(&truth));
        }
        mw.advance_clock(SimDuration::from_secs(1));
    }

    Outcome {
        energy_j: meter.total_j(),
        mean_power_w: meter.mean_power_w(),
        gps_on_s: meter.gps_on_s(),
        reports: reports.len(),
        mean_stale_err_m: stale_errs.iter().sum::<f64>() / stale_errs.len().max(1) as f64,
        max_stale_err_m: stale_errs.iter().cloned().fold(0.0, f64::max),
    }
}

fn main() {
    println!("=== Fig. 7: EnTracked power-aware tracking (15 min: walk 5, stand 10) ===\n");
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "strategy", "energy J", "power W", "gps-on s", "reports", "mean err m", "max err m"
    );
    println!("{}", "-".repeat(82));
    let strategies = [
        Strategy::AlwaysOn,
        Strategy::Periodic { period_s: 30 },
        Strategy::Periodic { period_s: 60 },
        Strategy::EnTracked { threshold_m: 25.0 },
        Strategy::EnTracked { threshold_m: 50.0 },
        Strategy::EnTracked { threshold_m: 100.0 },
        Strategy::EnTracked { threshold_m: 200.0 },
    ];
    for strategy in strategies {
        let o = run(strategy, 31);
        let label = match strategy {
            Strategy::AlwaysOn => "always-on".to_string(),
            Strategy::Periodic { period_s } => format!("periodic ({period_s}s)"),
            Strategy::EnTracked { threshold_m } => format!("entracked ({threshold_m:.0} m)"),
        };
        println!(
            "{:<22} {:>9.1} {:>8.3} {:>8.0} {:>8} {:>10.1} {:>9.1}",
            label,
            o.energy_j,
            o.mean_power_w,
            o.gps_on_s,
            o.reports,
            o.mean_stale_err_m,
            o.max_stale_err_m
        );
    }
    println!(
        "\n(expected shape — EnTracked MobiSys'09: duty-cycling against a motion model cuts\n energy by an order of magnitude at bounded error; fixed periodic saves energy but\n cannot exploit the stationary phase and pays error while moving; tighter EnTracked\n thresholds cost more energy and bound the error lower)"
    );

    distributed_variant();
}

/// The Fig. 7 deployment executed literally: GPS + wrapper on the mobile
/// device, Parser/Interpreter/application on a server, with the EnTracked
/// control loop crossing the (40 ms) link. Link statistics give the true
/// transmission count the device pays for.
fn distributed_variant() {
    let walk = scenario();
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk.clone())
            .with_seed(31)
            .with_acquisition_delay(SimDuration::from_secs(4)),
    );
    let wrapper = mw.add_component(perpos_sensors::SensorWrapper::new(
        "SensorWrapper",
        "mobile",
    ));
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let motion = mw.add_component(MotionSensor::new("Motion", walk).with_seed(38));
    let app = mw.application_sink();
    mw.connect(gps, wrapper, 0).unwrap();
    mw.connect(wrapper, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    let target = mw.add_target("device");
    mw.connect(motion, target.node(), 0).unwrap();
    mw.attach_feature(gps, PowerStrategyFeature::new()).unwrap();
    let channel = mw.channel_into(target.node(), 0).unwrap();
    mw.attach_channel_feature(channel, EnTrackedFeature::new(gps, interpreter, 50.0))
        .unwrap();
    mw.set_deployment(
        Deployment::new("server")
            .assign(gps, "mobile")
            .assign(wrapper, "mobile")
            .assign(motion, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(40),
                loss_prob: 0.01,
                max_retries: 0,
            })
            .with_seed(41),
    );
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    for _ in 0..SCENARIO_S {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_secs(1));
    }
    println!("\ndistributed Fig. 7 (GPS+wrapper on 'mobile', rest on 'server', 40 ms / 1% link):");
    println!(
        "  positions delivered to the server application: {}",
        provider.history().len()
    );
    for ((from, to), stats) in mw.deployment().unwrap().stats() {
        println!(
            "  link {from}->{to}: sent {} delivered {} lost {}",
            stats.sent, stats.delivered, stats.lost
        );
    }
    println!("  (each 'sent' is a device radio transmission the energy model charges for)");
}
