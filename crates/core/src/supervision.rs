//! Supervision: per-node fault policies, health tracking and a circuit
//! breaker — component failure as a managed, inspectable condition.
//!
//! The paper leaves "reliability, scalability and performance" as future
//! work (§6); this module supplies the reliability half in the PerPos
//! spirit — fault handling is *translucent*. Policies are set per node
//! through the same facade that manipulates the process structure, health
//! is readable through component reflection (`invoke("health", …)`), and
//! the Process Channel Layer aggregates member health per channel so
//! Channel Features and the Positioning Layer can reason over it (see
//! [`crate::channel::ChannelInfo::health`] and provider failover in
//! [`crate::positioning`]).
//!
//! The default policy is [`FaultPolicy::Propagate`], which preserves the
//! original engine contract: the first component error aborts the step.
//! Everything else is opt-in.

use std::collections::{BTreeMap, BTreeSet};

use crate::data::Value;
use crate::graph::NodeId;
use crate::{SimDuration, SimTime};

/// Cap on the exponential backoff doubling, so repeated probe failures
/// saturate instead of overflowing (2^20 ≈ 10⁶× the base backoff).
const MAX_BACKOFF_LEVEL: u32 = 20;

/// Upper bound, in seconds of simulated time, on a single quarantine
/// pause regardless of the backoff level. Without the cap the doubled
/// pause grows to ~10⁶× the base backoff, which in practice means a node
/// that failed a handful of probes is never looked at again; with it, a
/// long-quarantined node is guaranteed another probe within this bound.
pub const MAX_PROBE_PAUSE_SECS: u64 = 600;

/// What the engine does when a component (or one of its features) fails.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Abort the step and surface the error — the original engine
    /// behaviour, and the default.
    #[default]
    Propagate,
    /// Drop the offending work item (or tick output) and continue the
    /// step; the fault is counted and the node marked degraded.
    DropItem,
    /// Reset the component via [`crate::component::Component::on_reset`]
    /// and continue; the item that triggered the fault is lost.
    Restart,
    /// Circuit breaker: after `max_faults` faults within a sliding
    /// `window` of simulated time, the node is quarantined (skipped by
    /// the engine) for `backoff`, doubling on every failed probe; once
    /// the backoff elapses a single probe run is allowed, and a
    /// successful probe reinstates the node.
    Quarantine {
        /// Faults tolerated within `window` before the breaker opens.
        max_faults: u32,
        /// Sliding window over which faults are counted.
        window: SimDuration,
        /// Initial quarantine duration; doubles per failed probe.
        backoff: SimDuration,
    },
}

impl FaultPolicy {
    /// A quarantine policy with moderate defaults: 3 faults within 10 s
    /// opens the breaker for 5 s.
    pub fn quarantine_default() -> Self {
        FaultPolicy::Quarantine {
            max_faults: 3,
            window: SimDuration::from_secs(10),
            backoff: SimDuration::from_secs(5),
        }
    }

    /// Parses a policy from its configuration name (see
    /// [`crate::assembly::ComponentConfig::fault_policy`]). Returns
    /// `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "propagate" => Some(FaultPolicy::Propagate),
            "drop_item" => Some(FaultPolicy::DropItem),
            "restart" => Some(FaultPolicy::Restart),
            "quarantine" => Some(FaultPolicy::quarantine_default()),
            _ => None,
        }
    }
}

/// The health of one node, as tracked by the [`HealthRegistry`].
///
/// Ordered by badness (`Healthy < Degraded < Quarantined`) so the worst
/// member of a set is its `max()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthStatus {
    /// No recent faults.
    #[default]
    Healthy,
    /// Recent handled faults, or a quarantined node currently being
    /// probed (the breaker's half-open state).
    Degraded,
    /// The circuit breaker is open: the engine skips this node.
    Quarantined,
}

impl HealthStatus {
    /// The status name as exposed through reflection.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Quarantined => "quarantined",
        }
    }
}

/// Per-node health record: status, counters and the last error seen.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeHealth {
    /// Current status.
    pub status: HealthStatus,
    /// Total faults observed (including propagated ones).
    pub faults: u64,
    /// Times the component was reset via `on_reset`.
    pub restarts: u64,
    /// Times the breaker opened.
    pub quarantines: u64,
    /// Rendered form of the most recent error.
    pub last_error: Option<String>,
    /// When the current quarantine expires, if open.
    pub quarantined_until: Option<SimTime>,
}

impl NodeHealth {
    /// The record as a reflection value (`invoke("health", …)`): a map
    /// with `status`, `faults`, `restarts`, `quarantines` and
    /// `last_error` entries.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("status".to_string(), Value::from(self.status.as_str()));
        map.insert("faults".to_string(), Value::Int(self.faults as i64));
        map.insert("restarts".to_string(), Value::Int(self.restarts as i64));
        map.insert(
            "quarantines".to_string(),
            Value::Int(self.quarantines as i64),
        );
        map.insert(
            "last_error".to_string(),
            match &self.last_error {
                Some(e) => Value::from(e.as_str()),
                None => Value::Null,
            },
        );
        Value::Map(map)
    }
}

/// The action the engine must take for a handled fault, decided by
/// [`HealthRegistry::on_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Surface the error (abort the step).
    Propagate,
    /// Swallow the fault and continue.
    Drop,
    /// Reset the component, then continue.
    Restart,
    /// The breaker just opened: reset the component and skip it until
    /// the backoff elapses.
    Quarantine,
}

/// Tracks fault policies and health for every node of one middleware
/// instance, implementing the quarantine circuit breaker over simulated
/// time.
#[derive(Debug, Clone, Default)]
pub struct HealthRegistry {
    policies: BTreeMap<NodeId, FaultPolicy>,
    records: BTreeMap<NodeId, NodeHealth>,
    /// Sliding-window fault timestamps for quarantine-policy nodes.
    windows: BTreeMap<NodeId, Vec<SimTime>>,
    /// Exponential backoff level per node (doubles per failed probe).
    backoff_level: BTreeMap<NodeId, u32>,
    /// Nodes in the breaker's half-open state: one probe run allowed.
    probing: BTreeSet<NodeId>,
}

impl HealthRegistry {
    /// Sets the fault policy for `id`, resetting its breaker state.
    pub fn set_policy(&mut self, id: NodeId, policy: FaultPolicy) {
        self.windows.remove(&id);
        self.backoff_level.remove(&id);
        self.probing.remove(&id);
        if let Some(r) = self.records.get_mut(&id) {
            r.status = HealthStatus::Healthy;
            r.quarantined_until = None;
        }
        self.policies.insert(id, policy);
    }

    /// The policy for `id` (default [`FaultPolicy::Propagate`]).
    pub fn policy(&self, id: NodeId) -> FaultPolicy {
        self.policies.get(&id).cloned().unwrap_or_default()
    }

    /// The health record for `id` (default healthy).
    pub fn health(&self, id: NodeId) -> NodeHealth {
        self.records.get(&id).cloned().unwrap_or_default()
    }

    /// The current status of `id`.
    pub fn status(&self, id: NodeId) -> HealthStatus {
        self.records.get(&id).map(|r| r.status).unwrap_or_default()
    }

    /// Forgets everything about `id` (component removed).
    pub fn forget(&mut self, id: NodeId) {
        self.policies.remove(&id);
        self.records.remove(&id);
        self.windows.remove(&id);
        self.backoff_level.remove(&id);
        self.probing.remove(&id);
    }

    /// Whether the engine must skip `id` this step. Expired quarantines
    /// transition to the half-open (probing) state, which allows one run.
    pub(crate) fn is_quarantined(&mut self, id: NodeId, now: SimTime) -> bool {
        // Health records only exist for nodes that have faulted; a
        // healthy fleet answers every per-step probe from this one
        // branch instead of a tree lookup per node per step.
        if self.records.is_empty() {
            return false;
        }
        let Some(r) = self.records.get_mut(&id) else {
            return false;
        };
        if r.status != HealthStatus::Quarantined {
            return false;
        }
        match r.quarantined_until {
            Some(until) if now >= until => {
                // Half-open: let one probe run through.
                r.status = HealthStatus::Degraded;
                r.quarantined_until = None;
                self.probing.insert(id);
                false
            }
            _ => true,
        }
    }

    /// Records a successful run of `id`. A successful probe reinstates a
    /// quarantined node; otherwise a degraded node recovers once its
    /// fault window has drained.
    pub(crate) fn record_success(&mut self, id: NodeId, now: SimTime) {
        // Same healthy-fleet fast path as `is_quarantined`: with no
        // fault records and no half-open probes there is nothing to
        // reinstate or recover.
        if self.records.is_empty() && self.probing.is_empty() {
            return;
        }
        if self.probing.remove(&id) {
            self.backoff_level.remove(&id);
            self.windows.remove(&id);
            if let Some(r) = self.records.get_mut(&id) {
                r.status = HealthStatus::Healthy;
                r.quarantined_until = None;
            }
            return;
        }
        let Some(r) = self.records.get_mut(&id) else {
            return;
        };
        if r.status == HealthStatus::Degraded {
            let drained = match (self.policies.get(&id), self.windows.get_mut(&id)) {
                (Some(FaultPolicy::Quarantine { window, .. }), Some(faults)) => {
                    faults.retain(|t| now.since(*t) <= *window);
                    faults.is_empty()
                }
                _ => true,
            };
            if drained {
                r.status = HealthStatus::Healthy;
            }
        }
    }

    /// Records a fault of `id` at `now` and decides the engine's action
    /// per the node's policy.
    pub(crate) fn on_fault(&mut self, id: NodeId, now: SimTime, reason: &str) -> FaultAction {
        let policy = self.policy(id);
        let record = self.records.entry(id).or_default();
        record.faults += 1;
        record.last_error = Some(reason.to_string());
        match policy {
            FaultPolicy::Propagate => FaultAction::Propagate,
            FaultPolicy::DropItem => {
                record.status = record.status.max(HealthStatus::Degraded);
                FaultAction::Drop
            }
            FaultPolicy::Restart => {
                record.status = record.status.max(HealthStatus::Degraded);
                record.restarts += 1;
                FaultAction::Restart
            }
            FaultPolicy::Quarantine {
                max_faults,
                window,
                backoff,
            } => {
                if self.probing.remove(&id) {
                    // Failed probe: re-open the breaker, doubled backoff.
                    let level = self.backoff_level.entry(id).or_insert(0);
                    *level = (*level + 1).min(MAX_BACKOFF_LEVEL);
                    let pause = backoff_at(backoff, *level);
                    record.status = HealthStatus::Quarantined;
                    record.quarantines += 1;
                    record.quarantined_until = Some(now + pause);
                    return FaultAction::Quarantine;
                }
                let faults = self.windows.entry(id).or_default();
                faults.push(now);
                faults.retain(|t| now.since(*t) <= window);
                if faults.len() as u64 >= u64::from(max_faults.max(1)) {
                    faults.clear();
                    let level = *self.backoff_level.entry(id).or_insert(0);
                    record.status = HealthStatus::Quarantined;
                    record.quarantines += 1;
                    record.quarantined_until = Some(now + backoff_at(backoff, level));
                    FaultAction::Quarantine
                } else {
                    record.status = HealthStatus::Degraded;
                    FaultAction::Drop
                }
            }
        }
    }
}

/// `backoff * 2^level`, saturating, capped at
/// [`MAX_PROBE_PAUSE_SECS`] so every quarantined node is re-probed
/// within a bounded pause.
fn backoff_at(backoff: SimDuration, level: u32) -> SimDuration {
    let factor = 1u64 << level.min(MAX_BACKOFF_LEVEL);
    let pause = backoff.as_micros().saturating_mul(factor);
    SimDuration::from_micros(pause.min(MAX_PROBE_PAUSE_SECS * 1_000_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(reg: &mut HealthRegistry) -> NodeId {
        // NodeId is opaque; fabricate one through a real graph.
        let mut g = crate::graph::ProcessingGraph::new();
        let id = g.add(Box::new(crate::component::FnSource::new(
            "s",
            crate::data::kinds::RAW_STRING,
            |_| None,
        )));
        let _ = reg;
        id
    }

    #[test]
    fn default_policy_propagates() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        assert_eq!(reg.policy(id), FaultPolicy::Propagate);
        assert_eq!(
            reg.on_fault(id, SimTime::ZERO, "boom"),
            FaultAction::Propagate
        );
        let h = reg.health(id);
        assert_eq!(h.faults, 1);
        assert_eq!(h.last_error.as_deref(), Some("boom"));
        // Propagate leaves the status untouched.
        assert_eq!(h.status, HealthStatus::Healthy);
    }

    #[test]
    fn drop_and_restart_mark_degraded() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        reg.set_policy(id, FaultPolicy::DropItem);
        assert_eq!(reg.on_fault(id, SimTime::ZERO, "e1"), FaultAction::Drop);
        assert_eq!(reg.status(id), HealthStatus::Degraded);
        reg.set_policy(id, FaultPolicy::Restart);
        assert_eq!(reg.on_fault(id, SimTime::ZERO, "e2"), FaultAction::Restart);
        assert_eq!(reg.health(id).restarts, 1);
    }

    #[test]
    fn quarantine_opens_after_max_faults_in_window() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        reg.set_policy(
            id,
            FaultPolicy::Quarantine {
                max_faults: 3,
                window: SimDuration::from_secs(10),
                backoff: SimDuration::from_secs(5),
            },
        );
        let t = SimTime::from_secs_f64(1.0);
        assert_eq!(reg.on_fault(id, t, "e"), FaultAction::Drop);
        assert_eq!(reg.on_fault(id, t, "e"), FaultAction::Drop);
        assert_eq!(reg.on_fault(id, t, "e"), FaultAction::Quarantine);
        assert_eq!(reg.status(id), HealthStatus::Quarantined);
        assert!(reg.is_quarantined(id, t));
        // Not yet expired.
        assert!(reg.is_quarantined(id, t + SimDuration::from_secs(4)));
        // Expired: half-open, one probe allowed.
        let probe_t = t + SimDuration::from_secs(5);
        assert!(!reg.is_quarantined(id, probe_t));
        assert_eq!(reg.status(id), HealthStatus::Degraded);
        // Probe succeeds: reinstated.
        reg.record_success(id, probe_t);
        assert_eq!(reg.status(id), HealthStatus::Healthy);
        assert_eq!(reg.health(id).quarantines, 1);
    }

    #[test]
    fn failed_probe_doubles_backoff() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        reg.set_policy(
            id,
            FaultPolicy::Quarantine {
                max_faults: 1,
                window: SimDuration::from_secs(10),
                backoff: SimDuration::from_secs(2),
            },
        );
        let t0 = SimTime::ZERO;
        assert_eq!(reg.on_fault(id, t0, "e"), FaultAction::Quarantine);
        assert_eq!(
            reg.health(id).quarantined_until,
            Some(t0 + SimDuration::from_secs(2))
        );
        // Probe at expiry fails: backoff doubles to 4 s.
        let t1 = t0 + SimDuration::from_secs(2);
        assert!(!reg.is_quarantined(id, t1));
        assert_eq!(reg.on_fault(id, t1, "e"), FaultAction::Quarantine);
        assert_eq!(
            reg.health(id).quarantined_until,
            Some(t1 + SimDuration::from_secs(4))
        );
        // Next failed probe: 8 s.
        let t2 = t1 + SimDuration::from_secs(4);
        assert!(!reg.is_quarantined(id, t2));
        assert_eq!(reg.on_fault(id, t2, "e"), FaultAction::Quarantine);
        assert_eq!(
            reg.health(id).quarantined_until,
            Some(t2 + SimDuration::from_secs(8))
        );
        // Successful probe resets the level.
        let t3 = t2 + SimDuration::from_secs(8);
        assert!(!reg.is_quarantined(id, t3));
        reg.record_success(id, t3);
        assert_eq!(reg.status(id), HealthStatus::Healthy);
        assert_eq!(reg.on_fault(id, t3, "e"), FaultAction::Quarantine);
        assert_eq!(
            reg.health(id).quarantined_until,
            Some(t3 + SimDuration::from_secs(2))
        );
    }

    #[test]
    fn probe_pause_is_capped_for_long_quarantined_nodes() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        let backoff = SimDuration::from_secs(2);
        reg.set_policy(
            id,
            FaultPolicy::Quarantine {
                max_faults: 1,
                window: SimDuration::from_secs(10),
                backoff,
            },
        );
        let cap = SimDuration::from_secs(MAX_PROBE_PAUSE_SECS);
        let mut now = SimTime::ZERO;
        assert_eq!(reg.on_fault(id, now, "e"), FaultAction::Quarantine);
        let mut saturated = false;
        // Fail every probe for far more rounds than it takes the doubled
        // pause to pass the cap (2 s * 2^9 > 600 s).
        for _ in 0..40 {
            let until = reg.health(id).quarantined_until.expect("breaker open");
            let pause = until.since(now);
            assert!(
                pause <= cap,
                "pause {}s exceeds the {}s cap",
                pause.as_secs_f64(),
                cap.as_secs_f64()
            );
            saturated |= pause == cap;
            // The node is re-probed no later than one cap after the
            // quarantine opened: half-open by then, so not skipped.
            assert!(!reg.is_quarantined(id, now + cap));
            now += cap;
            assert_eq!(reg.on_fault(id, now, "e"), FaultAction::Quarantine);
        }
        assert!(saturated, "backoff never reached the cap");
        // A successful probe still resets the level to the base backoff.
        let until = reg.health(id).quarantined_until.expect("breaker open");
        now = until;
        assert!(!reg.is_quarantined(id, now));
        reg.record_success(id, now);
        assert_eq!(reg.on_fault(id, now, "e"), FaultAction::Quarantine);
        assert_eq!(reg.health(id).quarantined_until, Some(now + backoff));
    }

    #[test]
    fn registry_clones_preserve_breaker_state() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        reg.set_policy(
            id,
            FaultPolicy::Quarantine {
                max_faults: 1,
                window: SimDuration::from_secs(10),
                backoff: SimDuration::from_secs(2),
            },
        );
        reg.on_fault(id, SimTime::ZERO, "e");
        let mut a = reg.clone();
        let mut b = reg;
        // Clone and original evolve identically from the cloned state.
        let t = SimTime::from_secs_f64(2.0);
        assert_eq!(a.is_quarantined(id, t), b.is_quarantined(id, t));
        assert_eq!(a.on_fault(id, t, "e"), b.on_fault(id, t, "e"));
        assert_eq!(a.health(id), b.health(id));
    }

    #[test]
    fn window_expiry_forgets_old_faults() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        reg.set_policy(
            id,
            FaultPolicy::Quarantine {
                max_faults: 2,
                window: SimDuration::from_secs(1),
                backoff: SimDuration::from_secs(5),
            },
        );
        assert_eq!(reg.on_fault(id, SimTime::ZERO, "e"), FaultAction::Drop);
        // 2 s later the first fault has aged out: still only one in window.
        let later = SimTime::from_secs_f64(2.0);
        assert_eq!(reg.on_fault(id, later, "e"), FaultAction::Drop);
        assert_eq!(reg.status(id), HealthStatus::Degraded);
        // A quiet success with an empty window restores health.
        reg.record_success(id, SimTime::from_secs_f64(4.0));
        assert_eq!(reg.status(id), HealthStatus::Healthy);
    }

    #[test]
    fn policy_names_round_trip() {
        assert_eq!(
            FaultPolicy::from_name("propagate"),
            Some(FaultPolicy::Propagate)
        );
        assert_eq!(
            FaultPolicy::from_name("drop_item"),
            Some(FaultPolicy::DropItem)
        );
        assert_eq!(
            FaultPolicy::from_name("restart"),
            Some(FaultPolicy::Restart)
        );
        assert_eq!(
            FaultPolicy::from_name("quarantine"),
            Some(FaultPolicy::quarantine_default())
        );
        assert_eq!(FaultPolicy::from_name("nope"), None);
    }

    #[test]
    fn health_value_shape() {
        let h = NodeHealth {
            status: HealthStatus::Degraded,
            faults: 3,
            restarts: 1,
            quarantines: 0,
            last_error: Some("x".into()),
            quarantined_until: None,
        };
        let Value::Map(m) = h.to_value() else {
            panic!("expected map");
        };
        assert_eq!(m["status"], Value::from("degraded"));
        assert_eq!(m["faults"], Value::Int(3));
        assert_eq!(m["last_error"], Value::from("x"));
    }

    #[test]
    fn forget_clears_all_state() {
        let mut reg = HealthRegistry::default();
        let id = nid(&mut reg);
        reg.set_policy(id, FaultPolicy::quarantine_default());
        reg.on_fault(id, SimTime::ZERO, "e");
        reg.forget(id);
        assert_eq!(reg.policy(id), FaultPolicy::Propagate);
        assert_eq!(reg.health(id), NodeHealth::default());
    }
}
