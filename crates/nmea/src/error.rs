use std::error::Error;
use std::fmt;

/// Error produced while parsing NMEA-0183 data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NmeaError {
    /// The sentence does not start with `$`.
    MissingStartDelimiter,
    /// The `*hh` checksum suffix is absent.
    MissingChecksum,
    /// The checksum suffix is not two hex digits.
    MalformedChecksum(String),
    /// The computed checksum differs from the transmitted one.
    ChecksumMismatch {
        /// Checksum computed over the sentence body.
        computed: u8,
        /// Checksum transmitted in the sentence.
        transmitted: u8,
    },
    /// The sentence has fewer fields than the sentence type requires.
    TooFewFields {
        /// Sentence type, e.g. `"GGA"`.
        sentence: &'static str,
        /// Number of fields found.
        got: usize,
        /// Number of fields required.
        need: usize,
    },
    /// A field could not be parsed.
    InvalidField {
        /// Name of the offending field.
        field: &'static str,
        /// The raw field text.
        value: String,
    },
    /// The sentence exceeds the NMEA maximum length of 82 characters.
    SentenceTooLong(usize),
}

impl fmt::Display for NmeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NmeaError::MissingStartDelimiter => write!(f, "sentence does not start with '$'"),
            NmeaError::MissingChecksum => write!(f, "sentence has no '*hh' checksum"),
            NmeaError::MalformedChecksum(s) => write!(f, "malformed checksum suffix {s:?}"),
            NmeaError::ChecksumMismatch {
                computed,
                transmitted,
            } => write!(
                f,
                "checksum mismatch: computed {computed:02X}, transmitted {transmitted:02X}"
            ),
            NmeaError::TooFewFields {
                sentence,
                got,
                need,
            } => write!(f, "{sentence} sentence has {got} fields, needs {need}"),
            NmeaError::InvalidField { field, value } => {
                write!(f, "invalid {field} field {value:?}")
            }
            NmeaError::SentenceTooLong(n) => {
                write!(f, "sentence length {n} exceeds the NMEA maximum of 82")
            }
        }
    }
}

impl Error for NmeaError {}
