//! Transportation-mode inference (the paper intro's reference [4],
//! Zheng et al.): segmentation → feature extraction → decision-tree
//! classification → HMM post-processing, "structured as a reasoning
//! process" of ordinary Processing Components.
//!
//! A multi-modal trip (walk → drive → walk) is replayed through the
//! pipeline; the HMM smooths out classifier blips, and the reflective
//! API tunes its stickiness at runtime.
//!
//! Run with: `cargo run --example transport_mode`

use perpos::fusion::transport::{HmmSmoother, ModeClassifier, Segmenter, TRANSPORT_MODE};
use perpos::prelude::*;

fn main() -> Result<(), CoreError> {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).expect("valid"));

    // Synthesize the trip: walk 2 min, drive 3 min, walk 2 min (1 Hz).
    let mut items = Vec::new();
    let mut x = 0.0;
    let mut truth = Vec::new();
    for t in 0..420u64 {
        let (speed, mode) = match t {
            0..=119 => (1.4, "walk"),
            120..=299 => (13.0, "vehicle"),
            _ => (1.4, "walk"),
        };
        x += speed;
        truth.push(mode);
        items.push(DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::from_secs_f64(t as f64),
            Value::from(Position::new(
                frame.from_local(&Point2::new(x, 0.0)),
                Some(4.0),
            )),
        ));
    }

    let mut mw = Middleware::new();
    let emu = mw.add_component(EmulatorSource::new("trip-recording", Trace::new(items)));
    let segmenter = mw.add_component(Segmenter::new(frame));
    let classifier = mw.add_component(ModeClassifier::new());
    let hmm = mw.add_component(HmmSmoother::new());
    let app = mw.application_sink();
    mw.connect(emu, segmenter, 0)?;
    mw.connect(segmenter, classifier, 0)?;
    mw.connect(classifier, hmm, 0)?;
    mw.connect(hmm, app, 0)?;

    println!("process tree:\n{}", mw.render_process_tree());

    let provider = mw.location_provider(Criteria::new().kind(TRANSPORT_MODE))?;
    mw.run_for(SimDuration::from_secs(421), SimDuration::from_secs(1))?;

    println!("t(s)   smoothed mode   belief [walk bike vehicle]");
    println!("----   -------------   --------------------------");
    let mut correct = 0usize;
    let mut total = 0usize;
    for item in provider.history() {
        let t = item.timestamp.as_secs_f64();
        let mode = item.payload.as_text().unwrap_or("?");
        let belief = item
            .attr("belief")
            .and_then(Value::as_list)
            .map(|l| {
                l.iter()
                    .filter_map(Value::as_f64)
                    .map(|b| format!("{b:.2}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        let expected = truth[(t as usize).min(truth.len() - 1)];
        total += 1;
        if mode == expected {
            correct += 1;
        }
        if total % 3 == 1 {
            println!("{t:>4.0}   {mode:<15} [{belief}]");
        }
    }
    println!(
        "\naccuracy vs ground truth: {}/{} segments ({:.0}%)",
        correct,
        total,
        100.0 * correct as f64 / total.max(1) as f64
    );

    // Seamful bit: the reasoning process is adaptable at runtime.
    println!(
        "\nHMM stickiness (reflective): {}",
        mw.invoke(hmm, "getStickiness", &[])?
    );
    mw.invoke(hmm, "setStickiness", &[Value::Float(0.95)])?;
    println!(
        "raised to: {} — subsequent segments smooth harder",
        mw.invoke(hmm, "getStickiness", &[])?
    );
    Ok(())
}
