//! Criterion bench: geodesy primitives on the positioning hot path.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use perpos_geo::{Ecef, LocalFrame, Point2, Segment2, Wgs84};

fn bench_conversions(c: &mut Criterion) {
    let p = Wgs84::new(56.17, 10.19, 30.0).unwrap();
    let frame = LocalFrame::new(Wgs84::new(56.0, 10.0, 0.0).unwrap());
    c.bench_function("wgs84_to_ecef", |b| b.iter(|| Ecef::from_wgs84(&p)));
    let e = Ecef::from_wgs84(&p);
    c.bench_function("ecef_to_wgs84", |b| b.iter(|| e.to_wgs84()));
    c.bench_function("to_local", |b| b.iter(|| frame.to_local(&p)));
    let local = frame.to_local(&p);
    c.bench_function("from_local", |b| b.iter(|| frame.from_local(&local)));
}

fn bench_distance(c: &mut Criterion) {
    let a = Wgs84::new(56.17, 10.19, 0.0).unwrap();
    let b_ = Wgs84::new(55.67, 12.56, 0.0).unwrap();
    c.bench_function("haversine", |b| b.iter(|| a.distance_m(&b_)));
}

fn bench_segments(c: &mut Criterion) {
    let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(10.0, 10.0));
    let s2 = Segment2::new(Point2::new(0.0, 10.0), Point2::new(10.0, 0.0));
    c.bench_function("segment_intersect", |b| b.iter(|| s1.intersects(&s2)));
}

criterion_group!(benches, bench_conversions, bench_distance, bench_segments);
criterion_main!(benches);
