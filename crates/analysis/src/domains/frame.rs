//! Coordinate-frame inference (P010).
//!
//! The lattice is the powerset of frame names, ordered by inclusion;
//! the fact on a node's output is the set of reference frames its
//! position data may be expressed in. Frames come from three places, in
//! priority order: an explicit [`TransferSpec::frame`] declaration, the
//! frames *implied* by produced kinds (`position.wgs84` → `wgs84`,
//! `position.room` → `room`), and otherwise inheritance from upstream
//! (a smoothing filter emits whatever frame it was fed). A component
//! declared a [`TransferSpec::frame_transform`] re-expresses its inputs,
//! so upstream frames never leak past it.
//!
//! [`diagnostics`] flags two situations as P010: a merge whose inputs
//! carry two different frames without being a transform (coordinates
//! from different reference systems would be fused), and a component
//! with a declared frame being fed data in some other frame.

use std::collections::BTreeSet;

use perpos_core::component::ComponentRole;

use crate::dataflow::{Domain, FlowGraph};
use crate::diagnostic::{Code, Diagnostic, Report, Severity};

#[allow(unused_imports)] // doc links
use perpos_core::component::TransferSpec;

/// The frame a data kind implies by convention, if any.
pub fn implied_frame(kind: &str) -> Option<&'static str> {
    match kind {
        "position.wgs84" => Some("wgs84"),
        "position.room" => Some("room"),
        _ => None,
    }
}

/// The set of frames implied by a node's effective output kinds.
fn implied_frames(graph: &FlowGraph, node: usize) -> BTreeSet<String> {
    graph.nodes[node]
        .provides
        .iter()
        .filter_map(|k| implied_frame(k))
        .map(str::to_string)
        .collect()
}

/// The frames arriving at a node: union of its producers' facts over
/// edges that can carry data at all.
fn incoming(graph: &FlowGraph, inputs: &[(usize, &BTreeSet<String>)]) -> BTreeSet<String> {
    let mut frames = BTreeSet::new();
    for (e, fact) in inputs {
        if !graph.edge_kinds(*e).is_empty() {
            frames.extend(fact.iter().cloned());
        }
    }
    frames
}

/// The coordinate-frame domain; facts are sets of frame names.
pub struct FrameDomain;

impl Domain for FrameDomain {
    type Fact = BTreeSet<String>;

    fn bottom(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn transfer(
        &self,
        graph: &FlowGraph,
        node: usize,
        inputs: &[(usize, &Self::Fact)],
    ) -> Self::Fact {
        let n = &graph.nodes[node];
        if let Some(frame) = &n.transfer.frame {
            return BTreeSet::from([frame.clone()]);
        }
        let implied = implied_frames(graph, node);
        if n.transfer.frame_transform == Some(true) || !implied.is_empty() {
            // The node re-expresses data in its own output kinds'
            // frames; upstream frames do not pass through.
            return implied;
        }
        incoming(graph, inputs)
    }
}

/// P010 checks over the solved frame facts.
pub fn diagnostics(graph: &FlowGraph, facts: &[BTreeSet<String>], report: &mut Report) {
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.transfer.frame_transform == Some(true) {
            continue;
        }
        let inputs: Vec<(usize, &BTreeSet<String>)> = graph
            .preds(i)
            .iter()
            .map(|&e| (e, &facts[graph.edges[e].from]))
            .collect();
        let arriving = incoming(graph, &inputs);
        if n.role == ComponentRole::Merge && arriving.len() > 1 {
            let list: Vec<&str> = arriving.iter().map(String::as_str).collect();
            report.push(
                Diagnostic::new(
                    Code::P010,
                    Severity::Error,
                    format!(
                        "merge {} combines positions from incompatible coordinate \
                         frames [{}]",
                        n.label,
                        list.join(", ")
                    ),
                    vec![n.label.clone()],
                )
                .with_hint(
                    "insert a frame-transform component before the merge, or declare \
                     frame_transform on it if it re-projects its inputs",
                ),
            );
        }
        if let Some(declared) = &n.transfer.frame {
            let foreign: Vec<&str> = arriving
                .iter()
                .filter(|f| *f != declared)
                .map(String::as_str)
                .collect();
            if !foreign.is_empty() {
                report.push(
                    Diagnostic::new(
                        Code::P010,
                        Severity::Error,
                        format!(
                            "{} declares frame {:?} but is fed data in frame(s) [{}] \
                             without a transform",
                            n.label,
                            declared,
                            foreign.join(", ")
                        ),
                        vec![n.label.clone()],
                    )
                    .with_hint(
                        "insert a frame-transform upstream or declare frame_transform \
                         on this component",
                    ),
                );
            }
        }
    }
}
