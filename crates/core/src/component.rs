//! Processing Components — the nodes of the positioning process graph.
//!
//! A [`Component`] consumes data on input ports and produces data on its
//! single output port (paper §2.1). It declares its ports, the data kinds
//! they accept/provide, and any Component Features its inputs depend on in
//! a [`ComponentDescriptor`]; the graph validates connections against
//! those declarations.
//!
//! Components additionally expose a *designed reflection* surface: the
//! [`Component::invoke`] method dispatches named methods with dynamic
//! [`Value`] arguments, and [`Component::methods`] lists them. Component
//! Features use this to read, expose and manipulate component state
//! (paper §2.1 "Changing Component State").

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::data::{DataItem, DataKind, Payload, PayloadArena, Value};
use crate::{CoreError, SimTime};

/// The role a component plays in the process tree; determines how the PCL
/// abstracts it (paper §2.2: "data sources, components that merge data
/// sources, or the root node representing the application").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentRole {
    /// A leaf producing data (an actual sensor or an emulator).
    Source,
    /// An internal single-input processing step.
    Processor,
    /// A component merging several data sources (e.g. sensor fusion).
    Merge,
    /// The application end-point (root of the process tree).
    Sink,
}

impl fmt::Display for ComponentRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentRole::Source => "source",
            ComponentRole::Processor => "processor",
            ComponentRole::Merge => "merge",
            ComponentRole::Sink => "sink",
        };
        f.write_str(s)
    }
}

/// Declaration of one input port.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InputSpec {
    /// Port name for diagnostics.
    pub name: String,
    /// Data kinds this port accepts; empty means *any*.
    pub accepts: Vec<DataKind>,
    /// Names of Component Features that must be attached to the producer
    /// connected to this port (paper §2.1).
    pub required_features: Vec<String>,
}

impl InputSpec {
    /// Creates a port accepting the given kinds (empty = any).
    pub fn new(name: impl Into<String>, accepts: Vec<DataKind>) -> Self {
        InputSpec {
            name: name.into(),
            accepts,
            required_features: Vec::new(),
        }
    }

    /// Declares a Component Feature dependency (builder style).
    pub fn requiring_feature(mut self, feature: impl Into<String>) -> Self {
        self.required_features.push(feature.into());
        self
    }

    /// Whether this port accepts items of `kind`.
    pub fn accepts_kind(&self, kind: &DataKind) -> bool {
        self.accepts.is_empty() || self.accepts.contains(kind)
    }
}

/// Declaration of the output port.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputSpec {
    /// Data kinds the component can produce. Component Features that add
    /// data extend this set dynamically (paper §2.1 "Adding Data").
    pub provides: Vec<DataKind>,
}

impl OutputSpec {
    /// Creates an output spec for the given kinds.
    pub fn new(provides: Vec<DataKind>) -> Self {
        OutputSpec { provides }
    }
}

/// Abstract-interpretation metadata for a component type: the *transfer
/// function* whole-graph dataflow analysis applies when facts cross this
/// component (frame inference, accuracy propagation, privacy taint and
/// rate bounds — `perpos-analysis` codes P010–P013).
///
/// Every field is optional; an empty spec means "no declared semantics"
/// and analyses fall back to conservative defaults (kind-implied frames,
/// unknown accuracy/rate, taint propagation by provided kind). The spec
/// is declared on [`ComponentDescriptor`]s (live graphs), mirrored into
/// `perpos-analysis`'s `TypeCatalog` by its factory probe, and may be
/// overridden per instance in a `GraphConfig`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Coordinate frame of produced positions: `"wgs84"`, `"room"` or a
    /// local frame such as `"local:test-rig"`. Absent means the frame is
    /// implied by the produced kinds (`position.wgs84` → `wgs84`,
    /// `position.room` → `room`) or inherited from upstream.
    pub frame: Option<String>,
    /// Whether the component *converts* between coordinate frames: it
    /// accepts positions in any input frame and re-expresses them in
    /// [`TransferSpec::frame`] (or the kind-implied frame).
    pub frame_transform: Option<bool>,
    /// Best (lowest) achievable horizontal accuracy of position data
    /// derivable from this component's output, in metres. Declared on
    /// sources and on components that synthesize position information.
    pub accuracy_best_m: Option<f64>,
    /// Worst (highest) accuracy bound in metres; see
    /// [`TransferSpec::accuracy_best_m`].
    pub accuracy_worst_m: Option<f64>,
    /// Multiplicative factor the component applies to upstream accuracy
    /// bounds (`< 1.0` improves, e.g. a fusion filter). Default `1.0`.
    pub accuracy_scale: Option<f64>,
    /// Additive accuracy degradation in metres applied to upstream
    /// bounds (e.g. an interpolator). Default `0.0`.
    pub accuracy_add_m: Option<f64>,
    /// Accuracy (metres) this component *promises* to deliver, e.g. to
    /// satisfy a provider's `Criteria::max_accuracy_m`. Analysis flags
    /// the promise as statically unreachable (P011) when the inferred
    /// achievable bound is worse.
    pub claims_accuracy_m: Option<f64>,
    /// Sustained emit rate of a source, in items per second.
    pub emit_rate_hz: Option<f64>,
    /// Output items per input item (fan-out `> 1.0`, e.g. a sentence
    /// splitter; downsampling `< 1.0`). Default `1.0`.
    pub rate_factor: Option<f64>,
    /// Maximum sustained processing rate, in items per second. Analysis
    /// warns (P013) when the inferred inbound rate exceeds it — the
    /// input queue then grows without bound.
    pub max_rate_hz: Option<f64>,
    /// Whether the component anonymizes/aggregates identifiable sensor
    /// data: privacy taint (P012) is cleared at its output.
    pub anonymizes: Option<bool>,
    /// Additional data kinds to treat as raw identifiable sensor data
    /// for privacy-taint purposes, beyond the built-in set.
    pub taints: Option<Vec<String>>,
    /// Average power draw of the component while active, in milliwatts.
    /// Used by the pipeline synthesizer to honour a power budget; absent
    /// means the component is treated as free.
    pub power_mw: Option<f64>,
}

impl TransferSpec {
    /// An empty spec: no declared transfer semantics.
    pub fn new() -> Self {
        TransferSpec::default()
    }

    /// Whether no field is declared.
    pub fn is_empty(&self) -> bool {
        *self == TransferSpec::default()
    }

    /// Field-wise overlay: every field `over` declares replaces the
    /// corresponding field of `self` (per-instance configuration
    /// overrides beat per-type declarations).
    pub fn overlay(&self, over: &TransferSpec) -> TransferSpec {
        macro_rules! pick {
            ($field:ident) => {
                over.$field.clone().or_else(|| self.$field.clone())
            };
        }
        TransferSpec {
            frame: pick!(frame),
            frame_transform: pick!(frame_transform),
            accuracy_best_m: pick!(accuracy_best_m),
            accuracy_worst_m: pick!(accuracy_worst_m),
            accuracy_scale: pick!(accuracy_scale),
            accuracy_add_m: pick!(accuracy_add_m),
            claims_accuracy_m: pick!(claims_accuracy_m),
            emit_rate_hz: pick!(emit_rate_hz),
            rate_factor: pick!(rate_factor),
            max_rate_hz: pick!(max_rate_hz),
            anonymizes: pick!(anonymizes),
            taints: pick!(taints),
            power_mw: pick!(power_mw),
        }
    }

    /// Declares the output coordinate frame (builder style).
    pub fn with_frame(mut self, frame: impl Into<String>) -> Self {
        self.frame = Some(frame.into());
        self
    }

    /// Marks the component as a frame transform (builder style).
    pub fn transforms_frames(mut self) -> Self {
        self.frame_transform = Some(true);
        self
    }

    /// Declares the achievable accuracy interval in metres (builder
    /// style).
    pub fn with_accuracy_m(mut self, best: f64, worst: f64) -> Self {
        self.accuracy_best_m = Some(best);
        self.accuracy_worst_m = Some(worst);
        self
    }

    /// Declares the sustained source emit rate (builder style).
    pub fn with_emit_rate_hz(mut self, hz: f64) -> Self {
        self.emit_rate_hz = Some(hz);
        self
    }

    /// Declares the maximum sustained processing rate (builder style).
    pub fn with_max_rate_hz(mut self, hz: f64) -> Self {
        self.max_rate_hz = Some(hz);
        self
    }

    /// Marks the component as anonymizing (builder style).
    pub fn anonymizing(mut self) -> Self {
        self.anonymizes = Some(true);
        self
    }

    /// Declares the average active power draw (builder style).
    pub fn with_power_mw(mut self, mw: f64) -> Self {
        self.power_mw = Some(mw);
        self
    }
}

/// Effect-and-determinism metadata for a component type: which shared
/// resources it touches, which exogenous inputs it samples, and whether
/// its accumulated state survives a checkpoint. `perpos-analysis` uses
/// this to prove execution-level assembly properties *before* running:
/// wave interference under the level-parallel executor (P017), silent
/// checkpoint-restart divergence in fleets (P018) and hidden
/// nondeterminism in pipelines treated as deterministic (P019).
///
/// Every field is optional; an empty spec means "no declared effects"
/// and the analyses treat the component as pure, snapshot-safe and
/// deterministic — the behaviour all in-tree components actually have.
/// Like [`TransferSpec`], the spec is declared on
/// [`ComponentDescriptor`]s, mirrored into the analysis `TypeCatalog` by
/// its factory probe, and may be overridden per instance in a
/// `GraphConfig`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EffectSpec {
    /// Named shared resources the component reads (e.g. a shared map
    /// cache, a fingerprint database). Two same-wave components may both
    /// read a resource; a read racing a write is a P017 conflict.
    pub reads: Option<Vec<String>>,
    /// Named shared resources the component writes. Any same-wave
    /// reader or writer of the same resource is a P017 conflict.
    pub writes: Option<Vec<String>>,
    /// Whether the component samples the host wall clock (as opposed to
    /// the engine's simulated clock) — an exogenous input that makes
    /// replays diverge.
    pub wall_clock: Option<bool>,
    /// Whether the component performs live I/O (network, device files)
    /// during ticks/inputs — exogenous input outside the trace.
    pub io: Option<bool>,
    /// Whether the component draws randomness that is *not* seeded
    /// through its configuration, so two runs of the same trace can
    /// differ.
    pub unseeded: Option<bool>,
    /// Whether the component accumulates internal state across items
    /// (counters, filters, RNG positions). Stateful components must
    /// implement `snapshot_state`/`restore_state` to survive fleet
    /// checkpoint-restart.
    pub stateful: Option<bool>,
    /// Whether the component implements
    /// [`Component::snapshot_state`]/[`Component::restore_state`] so a
    /// restored instance replays byte-identically. Only meaningful
    /// together with [`EffectSpec::stateful`]; a stateful component
    /// without it trips P018 inside a fleet deployment.
    pub snapshot_capable: Option<bool>,
}

impl EffectSpec {
    /// An empty spec: no declared effects.
    pub fn new() -> Self {
        EffectSpec::default()
    }

    /// Whether no field is declared.
    pub fn is_empty(&self) -> bool {
        *self == EffectSpec::default()
    }

    /// Field-wise overlay: every field `over` declares replaces the
    /// corresponding field of `self` (per-instance configuration
    /// overrides beat per-type declarations).
    pub fn overlay(&self, over: &EffectSpec) -> EffectSpec {
        macro_rules! pick {
            ($field:ident) => {
                over.$field.clone().or_else(|| self.$field.clone())
            };
        }
        EffectSpec {
            reads: pick!(reads),
            writes: pick!(writes),
            wall_clock: pick!(wall_clock),
            io: pick!(io),
            unseeded: pick!(unseeded),
            stateful: pick!(stateful),
            snapshot_capable: pick!(snapshot_capable),
        }
    }

    /// Whether the component declares any exogenous input or unseeded
    /// randomness — the effects that break trace determinism.
    pub fn is_nondeterministic(&self) -> bool {
        self.wall_clock == Some(true) || self.io == Some(true) || self.unseeded == Some(true)
    }

    /// Declares a shared resource read (builder style).
    pub fn reading(mut self, resource: impl Into<String>) -> Self {
        self.reads
            .get_or_insert_with(Vec::new)
            .push(resource.into());
        self
    }

    /// Declares a shared resource write (builder style).
    pub fn writing(mut self, resource: impl Into<String>) -> Self {
        self.writes
            .get_or_insert_with(Vec::new)
            .push(resource.into());
        self
    }

    /// Marks the component as sampling the host wall clock (builder
    /// style).
    pub fn with_wall_clock(mut self) -> Self {
        self.wall_clock = Some(true);
        self
    }

    /// Marks the component as performing live I/O (builder style).
    pub fn with_io(mut self) -> Self {
        self.io = Some(true);
        self
    }

    /// Marks the component as drawing unseeded randomness (builder
    /// style).
    pub fn with_unseeded(mut self) -> Self {
        self.unseeded = Some(true);
        self
    }

    /// Marks the component as stateful; `snapshot_capable` says whether
    /// its state participates in checkpoints (builder style).
    pub fn stateful(mut self, snapshot_capable: bool) -> Self {
        self.stateful = Some(true);
        self.snapshot_capable = Some(snapshot_capable);
        self
    }
}

/// A reflective method exposed by a component or feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name, e.g. `"setThreshold"`.
    pub name: String,
    /// Human-readable signature documentation, e.g. `"(meters: float) -> null"`.
    pub signature: String,
}

impl MethodSpec {
    /// Creates a method description.
    pub fn new(name: impl Into<String>, signature: impl Into<String>) -> Self {
        MethodSpec {
            name: name.into(),
            signature: signature.into(),
        }
    }
}

/// Static description of a Processing Component: name, role and ports.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDescriptor {
    /// Component name (diagnostics; need not be unique).
    pub name: String,
    /// Structural role.
    pub role: ComponentRole,
    /// Input ports, in port-index order. Sources have none.
    pub inputs: Vec<InputSpec>,
    /// Output port; sinks have none.
    pub output: Option<OutputSpec>,
    /// Dataflow transfer metadata for whole-graph analysis (frames,
    /// accuracy, privacy, rates). Empty by default.
    pub transfer: TransferSpec,
    /// Effect metadata for determinism analysis (shared resources,
    /// exogenous inputs, snapshot capability). Empty by default.
    pub effects: EffectSpec,
}

impl ComponentDescriptor {
    /// Creates a descriptor for a source component producing `provides`.
    pub fn source(name: impl Into<String>, provides: Vec<DataKind>) -> Self {
        ComponentDescriptor {
            name: name.into(),
            role: ComponentRole::Source,
            inputs: Vec::new(),
            output: Some(OutputSpec::new(provides)),
            transfer: TransferSpec::default(),
            effects: EffectSpec::default(),
        }
    }

    /// Creates a descriptor for a single-input processor.
    pub fn processor(name: impl Into<String>, input: InputSpec, provides: Vec<DataKind>) -> Self {
        ComponentDescriptor {
            name: name.into(),
            role: ComponentRole::Processor,
            inputs: vec![input],
            output: Some(OutputSpec::new(provides)),
            transfer: TransferSpec::default(),
            effects: EffectSpec::default(),
        }
    }

    /// Creates a descriptor for a merge component with several inputs.
    pub fn merge(name: impl Into<String>, inputs: Vec<InputSpec>, provides: Vec<DataKind>) -> Self {
        ComponentDescriptor {
            name: name.into(),
            role: ComponentRole::Merge,
            inputs,
            output: Some(OutputSpec::new(provides)),
            transfer: TransferSpec::default(),
            effects: EffectSpec::default(),
        }
    }

    /// Creates a descriptor for an application sink.
    pub fn sink(name: impl Into<String>, input: InputSpec) -> Self {
        ComponentDescriptor {
            name: name.into(),
            role: ComponentRole::Sink,
            inputs: vec![input],
            output: None,
            transfer: TransferSpec::default(),
            effects: EffectSpec::default(),
        }
    }

    /// Attaches dataflow transfer metadata (builder style).
    pub fn with_transfer(mut self, transfer: TransferSpec) -> Self {
        self.transfer = transfer;
        self
    }

    /// Attaches effect metadata (builder style).
    pub fn with_effects(mut self, effects: EffectSpec) -> Self {
        self.effects = effects;
        self
    }
}

/// Execution context handed to a component while it runs.
///
/// Components produce data by calling [`ComponentCtx::emit`]; the engine
/// then routes the emissions through attached features, channel
/// bookkeeping and downstream ports.
///
/// On the sequential/batched execution paths the context additionally
/// carries the engine's [`PayloadArena`], so owned-value emissions
/// ([`ComponentCtx::emit_owned`], [`ComponentCtx::emit_with`]) land in
/// recycled slots instead of fresh allocations. Components never see the
/// difference: an interned and a plain payload holding the same value
/// are observationally identical.
pub struct ComponentCtx<'a> {
    now: SimTime,
    emitted: Vec<DataItem>,
    arena: Option<&'a mut PayloadArena>,
}

impl fmt::Debug for ComponentCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentCtx")
            .field("now", &self.now)
            .field("emitted", &self.emitted)
            .field("arena", &self.arena.is_some())
            .finish()
    }
}

impl<'a> ComponentCtx<'a> {
    /// Creates a context at `now`. Primarily useful when unit-testing
    /// custom components outside an engine.
    pub fn new(now: SimTime) -> Self {
        ComponentCtx {
            now,
            emitted: Vec::new(),
            arena: None,
        }
    }

    /// Creates a context at `now` reusing `emitted`'s allocation — the
    /// engine loans one buffer across units so the per-item hot path
    /// allocates nothing. The buffer is cleared before use.
    pub(crate) fn with_buffer(
        now: SimTime,
        mut emitted: Vec<DataItem>,
        arena: Option<&'a mut PayloadArena>,
    ) -> Self {
        emitted.clear();
        ComponentCtx { now, emitted, arena }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Emits a data item on the component's output port.
    pub fn emit(&mut self, item: DataItem) {
        self.emitted.push(item);
    }

    /// Convenience: emits `payload` as a fresh item of `kind` stamped with
    /// the current time.
    pub fn emit_value(&mut self, kind: DataKind, payload: impl Into<Payload>) {
        let item = DataItem::new(kind, self.now, payload);
        self.emit(item);
    }

    /// Emits an owned value as a fresh item of `kind`, interning it into
    /// the engine's payload arena when one is attached (recycling a slot
    /// instead of allocating). Equivalent to [`ComponentCtx::emit_value`]
    /// in every observable way.
    pub fn emit_owned(&mut self, kind: DataKind, value: Value) {
        let payload = match self.arena.as_deref_mut() {
            Some(arena) => arena.intern(value),
            None => Payload::new(value),
        };
        self.emitted.push(DataItem::new(kind, self.now, payload));
    }

    /// Emits by writing the payload value in place — the zero-allocation
    /// emission path. With an arena attached, `write` receives a recycled
    /// slot whose previous heap capacity (e.g. a retained `Value::Text`
    /// buffer) can be reused; without one it receives a fresh
    /// [`Value::Null`]. The closure must fully overwrite the slot: the
    /// previous *contents* are arbitrary, only the capacity is useful.
    pub fn emit_with(&mut self, kind: DataKind, write: impl FnOnce(&mut Value)) {
        let payload = match self.arena.as_deref_mut() {
            Some(arena) => arena.intern_with(write),
            None => {
                let mut value = Value::Null;
                write(&mut value);
                Payload::new(value)
            }
        };
        self.emitted.push(DataItem::new(kind, self.now, payload));
    }

    /// Whether a payload arena is attached (sequential/batched engine
    /// paths only; wave workers and bare test contexts run without one).
    pub fn has_arena(&self) -> bool {
        self.arena.is_some()
    }

    /// Drains everything emitted so far. The engine calls this after
    /// each hook; tests may call it to inspect component output.
    pub fn take_emitted(&mut self) -> Vec<DataItem> {
        std::mem::take(&mut self.emitted)
    }
}

/// A Processing Component: a node in the positioning process graph.
///
/// Implementations must be `Send` so graphs can be driven from worker
/// threads. All hooks are infallible by default where the paper's model
/// makes them optional.
pub trait Component: Send {
    /// The component's static declaration.
    fn descriptor(&self) -> ComponentDescriptor;

    /// Handles one item arriving on input port `port`.
    ///
    /// # Errors
    ///
    /// Implementations report internal failures as
    /// [`CoreError::ComponentFailure`]; the engine aborts the running step
    /// and surfaces the error.
    fn on_input(
        &mut self,
        port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError>;

    /// Called once per engine step; sources override this to sample and
    /// emit. Default: no-op.
    ///
    /// # Errors
    ///
    /// Same contract as [`Component::on_input`].
    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        let _ = ctx;
        Ok(())
    }

    /// Reflectively invokes a named method (designed reflection surface).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] for unknown methods; the
    /// default implementation knows none.
    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        let _ = args;
        Err(CoreError::NoSuchMethod {
            target: self.descriptor().name,
            method: method.to_string(),
        })
    }

    /// Lists the methods available through [`Component::invoke`].
    fn methods(&self) -> Vec<MethodSpec> {
        Vec::new()
    }

    /// Resets the component to a clean internal state. The supervisor
    /// calls this under [`crate::supervision::FaultPolicy::Restart`] and
    /// on quarantine entry; components with internal buffers or
    /// accumulated state should clear them here. Default: no-op.
    fn on_reset(&mut self) {}

    /// Serializes the component's internal state for a
    /// [`crate::Middleware::snapshot`] checkpoint. Components whose
    /// behaviour depends on accumulated state (counters, RNG positions,
    /// filters) return it as a [`Value`] here so a restored instance
    /// replays byte-identically; stateless components keep the default
    /// `None` and are skipped by the checkpointer.
    fn snapshot_state(&self) -> Option<Value> {
        None
    }

    /// Applies state previously captured by
    /// [`Component::snapshot_state`]. Implementations must accept any
    /// value their own `snapshot_state` can produce; the default ignores
    /// the state (matching the default `None` capture).
    fn restore_state(&mut self, state: &Value) {
        let _ = state;
    }
}

/// A source component driven by a closure: each tick the closure may
/// return a payload which is emitted with the configured kind.
///
/// Useful in tests, benchmarks and examples.
///
/// ```
/// use perpos_core::prelude::*;
///
/// let mut ticks = 0;
/// let mut src = FnSource::new("counter", kinds::RAW_STRING, move |_now| {
///     ticks += 1;
///     Some(Value::Int(ticks))
/// });
/// let mut ctx_probe = ComponentCtxProbe::run_tick(&mut src)?;
/// assert_eq!(ctx_probe.len(), 1);
/// # Ok::<(), perpos_core::CoreError>(())
/// ```
pub struct FnSource<F> {
    name: String,
    kind: DataKind,
    f: F,
}

impl<F> FnSource<F>
where
    F: FnMut(SimTime) -> Option<Value> + Send,
{
    /// Creates a closure-driven source emitting items of `kind`.
    pub fn new(name: impl Into<String>, kind: DataKind, f: F) -> Self {
        FnSource {
            name: name.into(),
            kind,
            f,
        }
    }
}

impl<F> Component for FnSource<F>
where
    F: FnMut(SimTime) -> Option<Value> + Send,
{
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source(self.name.clone(), vec![self.kind.clone()])
    }

    fn on_input(
        &mut self,
        port: usize,
        _item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Err(CoreError::ComponentFailure {
            component: self.name.clone(),
            reason: format!("source received unexpected input on port {port}"),
        })
    }

    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        if let Some(v) = (self.f)(ctx.now()) {
            // Owned-value emission: lands in the engine's payload arena
            // when the sequential path provides one.
            ctx.emit_owned(self.kind.clone(), v);
        }
        Ok(())
    }
}

impl<F> fmt::Debug for FnSource<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnSource")
            .field("name", &self.name)
            .finish()
    }
}

/// A single-input processor driven by a closure mapping each input item to
/// zero or one output payloads.
pub struct FnProcessor<F> {
    name: String,
    accepts: Vec<DataKind>,
    provides: DataKind,
    f: F,
}

impl<F> FnProcessor<F>
where
    F: FnMut(&DataItem) -> Option<crate::data::Payload> + Send,
{
    /// Creates a closure-driven processor.
    pub fn new(name: impl Into<String>, accepts: Vec<DataKind>, provides: DataKind, f: F) -> Self {
        FnProcessor {
            name: name.into(),
            accepts,
            provides,
            f,
        }
    }
}

impl<F> Component for FnProcessor<F>
where
    F: FnMut(&DataItem) -> Option<crate::data::Payload> + Send,
{
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            self.name.clone(),
            InputSpec::new("in", self.accepts.clone()),
            vec![self.provides.clone()],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        if let Some(v) = (self.f)(&item) {
            ctx.emit_value(self.provides.clone(), v);
        }
        Ok(())
    }
}

impl<F> fmt::Debug for FnProcessor<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnProcessor")
            .field("name", &self.name)
            .finish()
    }
}

/// A pure pass-through stage: re-emits every input item's payload under
/// its own output kind, stamped with the current time.
///
/// The payload is *moved* from input to output rather than cloned, so a
/// relay hop adds no reference-count traffic — the shared value travels
/// through the graph by handle. This is the cheapest faithful model of a
/// forwarding stage (a protocol bridge, a kind re-labeller, a channel
/// member that hands sentences down a pipeline).
pub struct FnRelay {
    name: String,
    accepts: Vec<DataKind>,
    provides: DataKind,
}

impl FnRelay {
    /// Creates a relay stage accepting `accepts` and re-emitting as
    /// `provides`.
    pub fn new(name: impl Into<String>, accepts: Vec<DataKind>, provides: DataKind) -> Self {
        FnRelay {
            name: name.into(),
            accepts,
            provides,
        }
    }
}

impl Component for FnRelay {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            self.name.clone(),
            InputSpec::new("in", self.accepts.clone()),
            vec![self.provides.clone()],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        // Move the payload handle through; attrs and timestamp are
        // re-derived (fresh item at the relay's own emission time).
        ctx.emit_value(self.provides.clone(), item.payload);
        Ok(())
    }
}

impl fmt::Debug for FnRelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnRelay").field("name", &self.name).finish()
    }
}

/// Test helper that drives a single component tick outside an engine.
///
/// Primarily useful in doctests and unit tests of custom components.
#[derive(Debug)]
pub struct ComponentCtxProbe;

impl ComponentCtxProbe {
    /// Runs `on_tick` at time zero and returns what the component emitted.
    ///
    /// # Errors
    ///
    /// Propagates the component's error.
    pub fn run_tick(c: &mut dyn Component) -> Result<Vec<DataItem>, CoreError> {
        let mut ctx = ComponentCtx::new(SimTime::ZERO);
        c.on_tick(&mut ctx)?;
        Ok(ctx.take_emitted())
    }

    /// Delivers one item to port 0 at the item's timestamp and returns the
    /// emissions.
    ///
    /// # Errors
    ///
    /// Propagates the component's error.
    pub fn run_input(c: &mut dyn Component, item: DataItem) -> Result<Vec<DataItem>, CoreError> {
        let mut ctx = ComponentCtx::new(item.timestamp);
        c.on_input(0, item, &mut ctx)?;
        Ok(ctx.take_emitted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::kinds;

    #[test]
    fn input_spec_accepts() {
        let any = InputSpec::new("in", vec![]);
        assert!(any.accepts_kind(&kinds::RAW_STRING));
        let only_pos = InputSpec::new("in", vec![kinds::POSITION_WGS84]);
        assert!(only_pos.accepts_kind(&kinds::POSITION_WGS84));
        assert!(!only_pos.accepts_kind(&kinds::RAW_STRING));
    }

    #[test]
    fn descriptor_constructors() {
        let s = ComponentDescriptor::source("gps", vec![kinds::RAW_STRING]);
        assert_eq!(s.role, ComponentRole::Source);
        assert!(s.inputs.is_empty());
        assert!(s.output.is_some());

        let p = ComponentDescriptor::processor(
            "parser",
            InputSpec::new("in", vec![kinds::RAW_STRING]),
            vec![kinds::NMEA_SENTENCE],
        );
        assert_eq!(p.role, ComponentRole::Processor);
        assert_eq!(p.inputs.len(), 1);

        let m = ComponentDescriptor::merge(
            "fusion",
            vec![InputSpec::default(), InputSpec::default()],
            vec![kinds::POSITION_WGS84],
        );
        assert_eq!(m.role, ComponentRole::Merge);

        let k = ComponentDescriptor::sink("app", InputSpec::default());
        assert_eq!(k.role, ComponentRole::Sink);
        assert!(k.output.is_none());
    }

    #[test]
    fn fn_source_emits() {
        let mut n = 0;
        let mut src = FnSource::new("s", kinds::RAW_STRING, move |_| {
            n += 1;
            (n <= 2).then_some(Value::Int(n))
        });
        assert_eq!(ComponentCtxProbe::run_tick(&mut src).unwrap().len(), 1);
        assert_eq!(ComponentCtxProbe::run_tick(&mut src).unwrap().len(), 1);
        assert_eq!(ComponentCtxProbe::run_tick(&mut src).unwrap().len(), 0);
    }

    #[test]
    fn fn_source_rejects_input() {
        let mut src = FnSource::new("s", kinds::RAW_STRING, |_| None);
        let item = DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Null);
        assert!(matches!(
            ComponentCtxProbe::run_input(&mut src, item),
            Err(CoreError::ComponentFailure { .. })
        ));
    }

    #[test]
    fn fn_processor_maps() {
        let mut p = FnProcessor::new(
            "double",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |item| item.payload.as_i64().map(|i| Value::Int(i * 2).into()),
        );
        let out = ComponentCtxProbe::run_input(
            &mut p,
            DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Int(21)),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Value::Int(42));
        assert_eq!(out[0].kind, kinds::NMEA_SENTENCE);
    }

    #[test]
    fn default_invoke_is_no_such_method() {
        let mut src = FnSource::new("s", kinds::RAW_STRING, |_| None);
        assert!(matches!(
            src.invoke("anything", &[]),
            Err(CoreError::NoSuchMethod { .. })
        ));
        assert!(src.methods().is_empty());
    }

    #[test]
    fn role_display() {
        assert_eq!(ComponentRole::Merge.to_string(), "merge");
    }
}
