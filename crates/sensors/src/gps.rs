use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, MethodSpec};
use perpos_core::prelude::*;
use perpos_geo::{LocalFrame, Point2};
use perpos_nmea::{FixQuality, Gga, NmeaTime, Rmc, Sentence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trajectory::Trajectory;

/// Sky-condition model governing satellite visibility, noise and
/// dropouts.
///
/// Presets follow typical receiver behaviour: open sky sees many
/// satellites and metre-level noise; urban canyons lose satellites to
/// buildings; indoors the receiver barely tracks anything — yet, as §3.1
/// of the paper notes, "GPS devices usually continue to produce
/// measurements even if they loose sight of the satellites", so the
/// simulator keeps emitting (bad) fixes at low satellite counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsEnvironment {
    /// Mean number of visible satellites.
    pub mean_visible_sats: f64,
    /// Standard deviation of the satellite count.
    pub sat_stddev: f64,
    /// 1-sigma horizontal noise at HDOP 1, in metres.
    pub base_noise_m: f64,
    /// Probability that a sample produces no sentence at all.
    pub dropout_prob: f64,
}

impl GpsEnvironment {
    /// Clear view of the sky.
    pub fn open_sky() -> Self {
        GpsEnvironment {
            mean_visible_sats: 9.0,
            sat_stddev: 1.5,
            base_noise_m: 3.0,
            dropout_prob: 0.01,
        }
    }

    /// Urban canyon: fewer satellites, multipath noise.
    pub fn urban() -> Self {
        GpsEnvironment {
            mean_visible_sats: 6.0,
            sat_stddev: 2.0,
            base_noise_m: 8.0,
            dropout_prob: 0.05,
        }
    }

    /// Indoors: marginal tracking, large errors, frequent dropouts.
    pub fn indoor() -> Self {
        GpsEnvironment {
            mean_visible_sats: 2.5,
            sat_stddev: 1.5,
            base_noise_m: 25.0,
            dropout_prob: 0.35,
        }
    }
}

type EnvFn = Box<dyn Fn(Point2, SimTime) -> GpsEnvironment + Send>;

/// A simulated GPS receiver: a Source component emitting raw NMEA
/// sentences (`raw.string` items) for a target walking a [`Trajectory`].
///
/// Reproduces the seams the paper's adaptations exploit: HDOP varies with
/// the satellite constellation, low-satellite fixes are unreliable but
/// still *reported as valid* by the device, and sentences disappear in
/// dropouts. The receiver can be switched off and on (with a warm-start
/// acquisition delay) through its reflective methods — the control knob
/// of the EnTracked power strategy (paper §3.3).
///
/// Reflective methods: `setEnabled(bool)`, `isEnabled() -> bool`,
/// `setSampleInterval(seconds: float)`, `getSampleInterval() -> float`.
pub struct GpsSimulator {
    name: String,
    frame: LocalFrame,
    trajectory: Trajectory,
    env: GpsEnvironment,
    env_fn: Option<EnvFn>,
    sample_interval: SimDuration,
    acquisition_delay: SimDuration,
    rng: StdRng,
    enabled: bool,
    pending_acquisition: bool,
    acquiring_until: Option<SimTime>,
    next_sample_at: SimTime,
    /// Accumulated drift applied to unreliable (low-satellite) fixes.
    drift: Point2,
    sentences_emitted: u64,
}

impl GpsSimulator {
    /// Creates a receiver for a target on `trajectory` within `frame`,
    /// under open-sky conditions, sampling at 1 Hz, seeded for
    /// reproducibility.
    pub fn new(name: impl Into<String>, frame: LocalFrame, trajectory: Trajectory) -> Self {
        GpsSimulator {
            name: name.into(),
            frame,
            trajectory,
            env: GpsEnvironment::open_sky(),
            env_fn: None,
            sample_interval: SimDuration::from_secs(1),
            acquisition_delay: SimDuration::from_secs(6),
            rng: StdRng::seed_from_u64(0x9e24),
            enabled: true,
            pending_acquisition: false,
            acquiring_until: None,
            next_sample_at: SimTime::ZERO,
            drift: Point2::new(0.0, 0.0),
            sentences_emitted: 0,
        }
    }

    /// Sets the sky environment (builder style).
    pub fn with_environment(mut self, env: GpsEnvironment) -> Self {
        self.env = env;
        self
    }

    /// Sets a position/time dependent environment, e.g. indoor when under
    /// a roof (builder style). Overrides the static environment.
    pub fn with_environment_fn(
        mut self,
        f: impl Fn(Point2, SimTime) -> GpsEnvironment + Send + 'static,
    ) -> Self {
        self.env_fn = Some(Box::new(f));
        self
    }

    /// Sets the sampling interval (builder style).
    pub fn with_sample_interval(mut self, d: SimDuration) -> Self {
        self.sample_interval = d;
        self
    }

    /// Sets the warm-start acquisition delay applied after re-enabling
    /// (builder style).
    pub fn with_acquisition_delay(mut self, d: SimDuration) -> Self {
        self.acquisition_delay = d;
        self
    }

    /// Seeds the noise generator (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Number of NMEA sentences emitted so far.
    pub fn sentences_emitted(&self) -> u64 {
        self.sentences_emitted
    }

    fn sample_normal(&mut self) -> f64 {
        // Box-Muller transform.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn emit_sentence(&mut self, ctx: &mut ComponentCtx<'_>, s: &Sentence) {
        self.sentences_emitted += 1;
        ctx.emit_value(kinds::RAW_STRING, Value::from(s.to_nmea_string()));
    }
}

impl Component for GpsSimulator {
    fn descriptor(&self) -> ComponentDescriptor {
        let secs = self.sample_interval.as_secs_f64();
        let mut transfer = TransferSpec::new().with_frame("wgs84");
        if secs > 0.0 {
            transfer = transfer.with_emit_rate_hz(1.0 / secs);
        }
        // Consumer-grade GNSS: a couple of metres in the open sky, tens of
        // metres once multipath and indoor attenuation bite.
        ComponentDescriptor::source(self.name.clone(), vec![kinds::RAW_STRING])
            .with_transfer(transfer.with_accuracy_m(2.0, 30.0))
    }

    fn on_input(
        &mut self,
        port: usize,
        _item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Err(CoreError::ComponentFailure {
            component: self.name.clone(),
            reason: format!("GPS source has no input port {port}"),
        })
    }

    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        let now = ctx.now();
        if !self.enabled {
            return Ok(());
        }
        if self.pending_acquisition {
            self.pending_acquisition = false;
            self.acquiring_until = Some(now + self.acquisition_delay);
        }
        if self.acquiring_until.is_some_and(|t| now >= t) {
            self.acquiring_until = None;
        }
        if now < self.next_sample_at {
            return Ok(());
        }
        self.next_sample_at = now + self.sample_interval;

        let truth = self.trajectory.position_at(now);
        let env = match &self.env_fn {
            Some(f) => f(truth, now),
            None => self.env,
        };

        if self.rng.gen::<f64>() < env.dropout_prob {
            return Ok(()); // no sentence this sample
        }

        let time = NmeaTime::from_seconds_of_day(now.as_secs_f64());
        if self.acquiring_until.is_some_and(|t| now < t) {
            // Still acquiring: the receiver emits empty, invalid fixes.
            let gga = Gga {
                time,
                ..Gga::default()
            };
            self.emit_sentence(ctx, &Sentence::Gga(gga));
            return Ok(());
        }

        let sats = ((env.mean_visible_sats + self.sample_normal() * env.sat_stddev).round() as i64)
            .clamp(0, 12) as u8;

        if sats < 2 {
            // Lost the constellation: invalid sentence (paper Fig. 4's
            // "first NMEA sentence did not contain a valid position").
            let gga = Gga {
                time,
                ..Gga::default()
            };
            self.emit_sentence(ctx, &Sentence::Gga(gga));
            return Ok(());
        }

        // HDOP grows as the constellation thins.
        let hdop =
            (1.0 + (9.0_f64 - f64::from(sats)).max(0.0) * 0.6 + self.sample_normal().abs() * 0.3)
                .clamp(0.7, 30.0);

        let reliable = sats >= 4;
        let noisy = if reliable {
            let sigma = env.base_noise_m * hdop / 2.0;
            Point2::new(
                truth.x + self.sample_normal() * sigma,
                truth.y + self.sample_normal() * sigma,
            )
        } else {
            // Unreliable fix: the device keeps reporting "valid" positions
            // that drift far from the truth (§3.1's motivation).
            self.drift = Point2::new(
                self.drift.x + self.sample_normal() * 15.0,
                self.drift.y + self.sample_normal() * 15.0,
            );
            Point2::new(
                truth.x + self.drift.x + self.sample_normal() * env.base_noise_m,
                truth.y + self.drift.y + self.sample_normal() * env.base_noise_m,
            )
        };

        let coord = self.frame.from_local(&noisy);
        let gga = Gga {
            time,
            lat_deg: Some(coord.lat_deg()),
            lon_deg: Some(coord.lon_deg()),
            quality: FixQuality::Gps,
            num_satellites: sats,
            hdop,
            altitude_m: coord.alt_m(),
            geoid_separation_m: 40.0,
        };
        self.emit_sentence(ctx, &Sentence::Gga(gga));

        let speed_mps = self.trajectory.speed_at(now);
        let rmc = Rmc {
            time,
            valid: true,
            lat_deg: Some(coord.lat_deg()),
            lon_deg: Some(coord.lon_deg()),
            speed_knots: speed_mps / 0.514_444,
            course_deg: self.trajectory.heading_at(now).unwrap_or(0.0),
            date: "010110".to_string(),
        };
        self.emit_sentence(ctx, &Sentence::Rmc(rmc));
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setEnabled" => {
                let on = args.first().and_then(Value::as_bool).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one bool".to_string(),
                    }
                })?;
                if on && !self.enabled {
                    self.pending_acquisition = true;
                }
                if !on {
                    self.acquiring_until = None;
                }
                self.enabled = on;
                Ok(Value::Null)
            }
            "isEnabled" => Ok(Value::Bool(self.enabled)),
            "isAcquiring" => Ok(Value::Bool(
                self.enabled && (self.pending_acquisition || self.acquiring_until.is_some()),
            )),
            "setSampleInterval" => {
                let secs = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float (seconds)".to_string(),
                    }
                })?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("interval must be positive, got {secs}"),
                    });
                }
                self.sample_interval = SimDuration::from_secs_f64(secs);
                Ok(Value::Null)
            }
            "getSampleInterval" => Ok(Value::Float(self.sample_interval.as_secs_f64())),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setEnabled", "(on: bool) -> null"),
            MethodSpec::new("isEnabled", "() -> bool"),
            MethodSpec::new("isAcquiring", "() -> bool"),
            MethodSpec::new("setSampleInterval", "(seconds: float) -> null"),
            MethodSpec::new("getSampleInterval", "() -> float"),
        ]
    }
}

impl std::fmt::Debug for GpsSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpsSimulator")
            .field("name", &self.name)
            .field("enabled", &self.enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_geo::Wgs84;
    use perpos_nmea::parse_sentence;

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    fn walk() -> Trajectory {
        Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)], 1.4)
    }

    fn drain_ticks(gps: &mut GpsSimulator, seconds: u64) -> Vec<String> {
        let mut out = Vec::new();
        for s in 0..seconds {
            let mut ctx =
                perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(s as f64));
            gps.on_tick(&mut ctx).unwrap();
            for item in ctx.take_emitted() {
                out.push(item.payload.as_text().unwrap().to_string());
            }
        }
        out
    }

    #[test]
    fn emits_parseable_nmea() {
        let mut gps = GpsSimulator::new("gps", frame(), walk()).with_seed(7);
        let lines = drain_ticks(&mut gps, 20);
        assert!(!lines.is_empty());
        for line in &lines {
            parse_sentence(line).expect("simulator must emit valid NMEA");
        }
        // Open sky: most sentences carry a fix.
        let fixes = lines
            .iter()
            .filter(|l| parse_sentence(l).unwrap().has_fix())
            .count();
        assert!(fixes * 2 > lines.len(), "{fixes}/{}", lines.len());
    }

    #[test]
    fn open_sky_positions_are_near_truth() {
        let f = frame();
        let t = walk();
        let mut gps = GpsSimulator::new("gps", f, t.clone()).with_seed(3);
        for s in 0..30u64 {
            let mut ctx =
                perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(s as f64));
            gps.on_tick(&mut ctx).unwrap();
            for item in ctx.take_emitted() {
                let line = item.payload.as_text().unwrap();
                if let perpos_nmea::Sentence::Gga(g) = parse_sentence(line).unwrap() {
                    if let (Some(lat), Some(lon)) = (g.lat_deg, g.lon_deg) {
                        if g.num_satellites >= 4 {
                            let p = f.to_local(&Wgs84::new(lat, lon, 0.0).unwrap());
                            let truth = t.position_at(SimTime::from_secs_f64(s as f64));
                            assert!(
                                p.distance(&truth) < 100.0,
                                "reliable fix {} m from truth",
                                p.distance(&truth)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn indoor_is_much_worse_than_open_sky() {
        let count_valid = |env: GpsEnvironment, seed: u64| {
            let mut gps = GpsSimulator::new("gps", frame(), walk())
                .with_environment(env)
                .with_seed(seed);
            drain_ticks(&mut gps, 60)
                .iter()
                .filter(|l| parse_sentence(l).unwrap().has_fix())
                .count()
        };
        let open = count_valid(GpsEnvironment::open_sky(), 1);
        let indoor = count_valid(GpsEnvironment::indoor(), 1);
        assert!(
            indoor * 2 < open,
            "indoor fixes ({indoor}) should be well under half of open sky ({open})"
        );
    }

    #[test]
    fn disabled_receiver_is_silent_and_reacquires() {
        let mut gps = GpsSimulator::new("gps", frame(), walk())
            .with_seed(5)
            .with_acquisition_delay(SimDuration::from_secs(5));
        gps.invoke("setEnabled", &[Value::Bool(false)]).unwrap();
        assert_eq!(gps.invoke("isEnabled", &[]).unwrap(), Value::Bool(false));
        assert!(drain_ticks(&mut gps, 10).is_empty());
        gps.invoke("setEnabled", &[Value::Bool(true)]).unwrap();
        // During acquisition only invalid sentences appear. Ticks resume
        // at t=10..20 (drain_ticks restarts at 0 but next_sample_at is in
        // the past, so sampling resumes immediately).
        let lines = drain_ticks(&mut gps, 4);
        assert!(!lines.is_empty());
        for l in &lines {
            assert!(
                !parse_sentence(l).unwrap().has_fix(),
                "no fix during acquisition: {l}"
            );
        }
    }

    #[test]
    fn sample_interval_is_respected() {
        let mut gps = GpsSimulator::new("gps", frame(), walk())
            .with_seed(11)
            .with_sample_interval(SimDuration::from_secs(5))
            .with_environment(GpsEnvironment {
                dropout_prob: 0.0,
                ..GpsEnvironment::open_sky()
            });
        let lines = drain_ticks(&mut gps, 20);
        // 4 samples x 2 sentences (GGA+RMC) = 8.
        assert_eq!(lines.len(), 8, "{lines:?}");
        gps.invoke("setSampleInterval", &[Value::Float(1.0)])
            .unwrap();
        assert_eq!(
            gps.invoke("getSampleInterval", &[]).unwrap(),
            Value::Float(1.0)
        );
    }

    #[test]
    fn invoke_validates_arguments() {
        let mut gps = GpsSimulator::new("gps", frame(), walk());
        assert!(matches!(
            gps.invoke("setEnabled", &[]),
            Err(CoreError::BadArguments { .. })
        ));
        assert!(matches!(
            gps.invoke("setSampleInterval", &[Value::Float(-1.0)]),
            Err(CoreError::BadArguments { .. })
        ));
        assert!(matches!(
            gps.invoke("selfDestruct", &[]),
            Err(CoreError::NoSuchMethod { .. })
        ));
        assert_eq!(gps.methods().len(), 5);
    }

    #[test]
    fn emissions_are_deterministic_per_seed() {
        let run = |seed| {
            let mut gps = GpsSimulator::new("gps", frame(), walk()).with_seed(seed);
            drain_ticks(&mut gps, 30)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn environment_fn_switches_behaviour_by_position() {
        // Indoor past x = 20: fixes should become rarer after ~14 s.
        let f = frame();
        let mut gps = GpsSimulator::new("gps", f, walk())
            .with_seed(4)
            .with_environment_fn(|p, _| {
                if p.x > 20.0 {
                    GpsEnvironment::indoor()
                } else {
                    GpsEnvironment {
                        dropout_prob: 0.0,
                        ..GpsEnvironment::open_sky()
                    }
                }
            });
        let mut early_fixes = 0;
        let mut late_fixes = 0;
        for s in 0..120u64 {
            let mut ctx =
                perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(s as f64));
            gps.on_tick(&mut ctx).unwrap();
            for item in ctx.take_emitted() {
                if parse_sentence(item.payload.as_text().unwrap())
                    .unwrap()
                    .has_fix()
                {
                    if s < 14 {
                        early_fixes += 1;
                    } else {
                        late_fixes += 1;
                    }
                }
            }
        }
        // 14 outdoor seconds vs 106 indoor seconds; the indoor fix rate
        // (valid sentences per second) must drop noticeably.
        assert!(early_fixes > 10, "outdoors delivers fixes: {early_fixes}");
        let early_rate = early_fixes as f64 / 14.0;
        let late_rate = late_fixes as f64 / 106.0;
        assert!(
            late_rate < early_rate * 0.75,
            "indoor fix rate must drop ({early_rate:.2}/s outdoors vs {late_rate:.2}/s indoors)"
        );
    }

    #[test]
    fn source_rejects_input() {
        let mut gps = GpsSimulator::new("gps", frame(), walk());
        let item = DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Null);
        assert!(ComponentCtxProbe::run_input(&mut gps, item).is_err());
    }
}
