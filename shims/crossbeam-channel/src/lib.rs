//! Offline shim for the `crossbeam-channel` surface the PerPos workspace
//! uses: [`unbounded`] channels with cloneable senders, non-blocking
//! receive, and disconnection tracking (a send to a dropped receiver
//! fails, which the registry uses to prune dead subscribers).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    receiver_alive: AtomicBool,
    sender_count: AtomicUsize,
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders were dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        receiver_alive: AtomicBool::new(true),
        sender_count: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message.
    ///
    /// # Errors
    ///
    /// Returns the message back when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if !self.shared.receiver_alive.load(Ordering::Acquire) {
            return Err(SendError(value));
        }
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.sender_count.fetch_add(1, Ordering::Relaxed);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.sender_count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Wake a blocked receiver so it can observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives a message without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when no message is queued,
    /// [`TryRecvError::Disconnected`] when the queue is drained and all
    /// senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match q.pop_front() {
            Some(v) => Ok(v),
            None if self.shared.sender_count.load(Ordering::Acquire) == 0 => {
                Err(TryRecvError::Disconnected)
            }
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until a message arrives or every sender is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is drained and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.sender_count.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self
                .shared
                .ready
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receiver_alive.store(false, Ordering::Release);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Iterator over currently queued messages (see [`Receiver::try_iter`]).
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn try_recv_reports_disconnection() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_senders_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send("a").unwrap();
        tx2.send("b").unwrap();
        drop((tx, tx2));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
