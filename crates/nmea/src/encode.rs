//! Encoding of [`Sentence`] values back to NMEA-0183 text.
//!
//! The encoder is the inverse of the parser for every modelled sentence
//! type; the GPS simulator in `perpos-sensors` uses it to emit the raw
//! strings that flow through the PerPos processing graph.

use crate::parser::checksum;
use crate::sentence::{FixQuality, GsaFixType, Sentence};

fn encode_time(t: &crate::NmeaTime) -> String {
    if t.millis == 0 {
        format!("{:02}{:02}{:02}", t.hour, t.minute, t.second)
    } else {
        format!(
            "{:02}{:02}{:02}.{:03}",
            t.hour, t.minute, t.second, t.millis
        )
    }
}

fn encode_lat(deg: Option<f64>) -> (String, String) {
    match deg {
        None => (String::new(), String::new()),
        Some(v) => {
            let hemi = if v >= 0.0 { "N" } else { "S" };
            let abs = v.abs();
            let d = abs.floor();
            let m = (abs - d) * 60.0;
            (format!("{:02}{:07.4}", d as u32, m), hemi.to_string())
        }
    }
}

fn encode_lon(deg: Option<f64>) -> (String, String) {
    match deg {
        None => (String::new(), String::new()),
        Some(v) => {
            let hemi = if v >= 0.0 { "E" } else { "W" };
            let abs = v.abs();
            let d = abs.floor();
            let m = (abs - d) * 60.0;
            (format!("{:03}{:07.4}", d as u32, m), hemi.to_string())
        }
    }
}

fn frame(body: String) -> String {
    format!("${body}*{:02X}", checksum(&body))
}

impl Sentence {
    /// Serializes the sentence to its NMEA-0183 wire format, including the
    /// leading `$` and the `*hh` checksum (without a trailing newline).
    ///
    /// ```
    /// use perpos_nmea::{parse_sentence, Sentence, Gga, FixQuality, NmeaTime};
    /// let gga = Gga {
    ///     time: NmeaTime::new(12, 35, 19, 0),
    ///     lat_deg: Some(48.1173),
    ///     lon_deg: Some(11.5167),
    ///     quality: FixQuality::Gps,
    ///     num_satellites: 8,
    ///     hdop: 0.9,
    ///     altitude_m: 545.4,
    ///     geoid_separation_m: 46.9,
    /// };
    /// let line = Sentence::Gga(gga.clone()).to_nmea_string();
    /// let reparsed = parse_sentence(&line)?;
    /// assert_eq!(reparsed.type_code(), "GGA");
    /// # Ok::<(), perpos_nmea::NmeaError>(())
    /// ```
    pub fn to_nmea_string(&self) -> String {
        match self {
            Sentence::Gga(g) => {
                let (lat, ns) = encode_lat(g.lat_deg);
                let (lon, ew) = encode_lon(g.lon_deg);
                frame(format!(
                    "GPGGA,{},{},{},{},{},{},{:02},{:.1},{:.1},M,{:.1},M,,",
                    encode_time(&g.time),
                    lat,
                    ns,
                    lon,
                    ew,
                    g.quality.as_u8(),
                    g.num_satellites,
                    g.hdop,
                    g.altitude_m,
                    g.geoid_separation_m,
                ))
            }
            Sentence::Rmc(r) => {
                let (lat, ns) = encode_lat(r.lat_deg);
                let (lon, ew) = encode_lon(r.lon_deg);
                frame(format!(
                    "GPRMC,{},{},{},{},{},{},{:.1},{:.1},{},,",
                    encode_time(&r.time),
                    if r.valid { "A" } else { "V" },
                    lat,
                    ns,
                    lon,
                    ew,
                    r.speed_knots,
                    r.course_deg,
                    r.date,
                ))
            }
            Sentence::Gsa(g) => {
                let mut prn_fields = vec![String::new(); 12];
                for (i, prn) in g.prns.iter().take(12).enumerate() {
                    prn_fields[i] = format!("{prn:02}");
                }
                let fix = match g.fix_type {
                    GsaFixType::NoFix => 1,
                    GsaFixType::Fix2d => 2,
                    GsaFixType::Fix3d => 3,
                };
                frame(format!(
                    "GPGSA,{},{},{},{:.1},{:.1},{:.1}",
                    if g.auto_selection { "A" } else { "M" },
                    fix,
                    prn_fields.join(","),
                    g.pdop,
                    g.hdop,
                    g.vdop,
                ))
            }
            Sentence::Gsv(g) => {
                let mut body = format!(
                    "GPGSV,{},{},{:02}",
                    g.total_messages, g.message_number, g.satellites_in_view
                );
                for s in g.satellites.iter().take(4) {
                    body.push_str(&format!(
                        ",{:02},{:02},{:03},{}",
                        s.prn,
                        s.elevation_deg,
                        s.azimuth_deg,
                        s.snr_db.map(|v| format!("{v:02}")).unwrap_or_default(),
                    ));
                }
                frame(body)
            }
            Sentence::Vtg(v) => frame(format!(
                "GPVTG,{:.1},T,,M,{:.1},N,{:.1},K",
                v.course_true_deg, v.speed_knots, v.speed_kmh,
            )),
            Sentence::Unknown {
                talker_and_type,
                fields,
            } => {
                let mut body = talker_and_type.clone();
                for f in fields {
                    body.push(',');
                    body.push_str(f);
                }
                frame(body)
            }
        }
    }
}

/// Re-encode of `FixQuality` used by the simulator when it degrades fixes.
impl From<FixQuality> for u8 {
    fn from(q: FixQuality) -> u8 {
        q.as_u8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sentence;
    use crate::sentence::{Gga, Gsa, Gsv, NmeaTime, Rmc, SatelliteInfo, Vtg};
    use proptest::prelude::*;

    #[test]
    fn gga_round_trip() {
        let gga = Gga {
            time: NmeaTime::new(1, 2, 3, 0),
            lat_deg: Some(56.172),
            lon_deg: Some(-10.187),
            quality: FixQuality::Dgps,
            num_satellites: 7,
            hdop: 1.2,
            altitude_m: 31.0,
            geoid_separation_m: 40.1,
        };
        let line = Sentence::Gga(gga.clone()).to_nmea_string();
        let Sentence::Gga(back) = parse_sentence(&line).unwrap() else {
            panic!("not GGA: {line}");
        };
        assert_eq!(back.num_satellites, gga.num_satellites);
        assert_eq!(back.quality, gga.quality);
        assert!((back.lat_deg.unwrap() - 56.172).abs() < 1e-5);
        assert!((back.lon_deg.unwrap() - (-10.187)).abs() < 1e-5);
    }

    #[test]
    fn invalid_gga_round_trip_keeps_empty_position() {
        let gga = Gga::default();
        let line = Sentence::Gga(gga).to_nmea_string();
        let Sentence::Gga(back) = parse_sentence(&line).unwrap() else {
            panic!("not GGA");
        };
        assert_eq!(back.lat_deg, None);
        assert!(!back.quality.has_fix());
    }

    #[test]
    fn rmc_round_trip() {
        let rmc = Rmc {
            time: NmeaTime::new(23, 59, 59, 0),
            valid: true,
            lat_deg: Some(-33.9),
            lon_deg: Some(151.2),
            speed_knots: 4.5,
            course_deg: 270.0,
            date: "010170".into(),
        };
        let line = Sentence::Rmc(rmc.clone()).to_nmea_string();
        let Sentence::Rmc(back) = parse_sentence(&line).unwrap() else {
            panic!("not RMC: {line}");
        };
        assert!(back.valid);
        assert!((back.lat_deg.unwrap() + 33.9).abs() < 1e-5);
        assert!((back.speed_knots - 4.5).abs() < 1e-9);
    }

    #[test]
    fn gsa_round_trip() {
        let gsa = Gsa {
            auto_selection: true,
            fix_type: GsaFixType::Fix3d,
            prns: vec![1, 2, 3],
            pdop: 2.0,
            hdop: 1.0,
            vdop: 1.7,
        };
        let line = Sentence::Gsa(gsa.clone()).to_nmea_string();
        let Sentence::Gsa(back) = parse_sentence(&line).unwrap() else {
            panic!("not GSA: {line}");
        };
        assert_eq!(back.prns, gsa.prns);
        assert_eq!(back.fix_type, GsaFixType::Fix3d);
    }

    #[test]
    fn gsv_round_trip() {
        let gsv = Gsv {
            total_messages: 1,
            message_number: 1,
            satellites_in_view: 2,
            satellites: vec![
                SatelliteInfo {
                    prn: 4,
                    elevation_deg: 60,
                    azimuth_deg: 120,
                    snr_db: Some(42),
                },
                SatelliteInfo {
                    prn: 9,
                    elevation_deg: 15,
                    azimuth_deg: 310,
                    snr_db: None,
                },
            ],
        };
        let line = Sentence::Gsv(gsv.clone()).to_nmea_string();
        let Sentence::Gsv(back) = parse_sentence(&line).unwrap() else {
            panic!("not GSV: {line}");
        };
        assert_eq!(back.satellites.len(), 2);
        assert_eq!(back.satellites[0].snr_db, Some(42));
        assert_eq!(back.satellites[1].snr_db, None);
    }

    #[test]
    fn vtg_round_trip() {
        let vtg = Vtg {
            course_true_deg: 12.5,
            speed_knots: 3.2,
            speed_kmh: 5.9,
        };
        let line = Sentence::Vtg(vtg).to_nmea_string();
        let Sentence::Vtg(back) = parse_sentence(&line).unwrap() else {
            panic!("not VTG: {line}");
        };
        assert!((back.speed_kmh - 5.9).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn gga_position_round_trips(
            lat in -89.0f64..89.0,
            lon in -179.0f64..179.0,
            sats in 0u8..13,
            hdop in 0.5f64..20.0,
        ) {
            let gga = Gga {
                time: NmeaTime::new(10, 20, 30, 0),
                lat_deg: Some(lat),
                lon_deg: Some(lon),
                quality: FixQuality::Gps,
                num_satellites: sats,
                hdop,
                altitude_m: 10.0,
                geoid_separation_m: 0.0,
            };
            let line = Sentence::Gga(gga).to_nmea_string();
            let Sentence::Gga(back) = parse_sentence(&line).unwrap() else {
                panic!("not GGA");
            };
            // 4 decimal minute digits give ~0.2 m resolution -> 1e-5 deg slack.
            prop_assert!((back.lat_deg.unwrap() - lat).abs() < 2e-5);
            prop_assert!((back.lon_deg.unwrap() - lon).abs() < 2e-5);
            prop_assert_eq!(back.num_satellites, sats);
            prop_assert!((back.hdop - hdop).abs() < 0.05 + 1e-9);
        }
    }
}
