//! Generic forward-dataflow / abstract-interpretation framework over
//! processing graphs.
//!
//! Whole-graph semantic properties — which coordinate frame a channel
//! carries, what accuracy is achievable, whether identifiable data can
//! reach the application, how many items per second flow — are *dataflow
//! facts*: elements of a lattice attached to every component output and
//! computed as a fixpoint of per-component *transfer functions*. This
//! module provides the machinery; the concrete lattices live in
//! [`crate::domains`].
//!
//! Two halves:
//!
//! - [`FlowGraph`] — a common intermediate representation built either
//!   [from a declarative configuration](FlowGraph::from_config) (types
//!   resolved against a [`TypeCatalog`], per-instance
//!   [`TransferSpec`] overrides applied) or
//!   [from the live structure](FlowGraph::from_structure)
//!   (`Middleware::structure()` output, feature-added kinds included).
//!   Running the same analyses over both is what makes config-level and
//!   live-level findings comparable (parity-tested in the suite).
//! - [`solve`] — a fixpoint solver for any [`Domain`]. Positioning
//!   processes are DAGs, so the common case is a single pass in
//!   topological order; structures that already violate the DAG
//!   invariant (flagged P005 elsewhere) fall back to a worklist with
//!   [widening](Domain::widen) and a step cap, so the solver terminates
//!   on *any* input.

use std::collections::{BTreeMap, VecDeque};

use perpos_core::assembly::{FleetSpec, GraphConfig};
use perpos_core::component::{ComponentRole, EffectSpec, TransferSpec};
use perpos_core::graph::NodeInfo;

use crate::catalog::TypeCatalog;

/// One input port of a [`FlowNode`]: the kinds it accepts (empty = any).
#[derive(Debug, Clone, Default)]
pub struct FlowPort {
    /// Accepted data kinds; empty means the port accepts anything.
    pub accepts: Vec<String>,
}

impl FlowPort {
    /// Whether the port lets items of `kind` through.
    pub fn accepts_kind(&self, kind: &str) -> bool {
        self.accepts.is_empty() || self.accepts.iter().any(|k| k == kind)
    }
}

/// One component instance in the analysis representation.
#[derive(Debug, Clone)]
pub struct FlowNode {
    /// Display label used in diagnostics (instance name for configs,
    /// `name (node#N)` for live structures).
    pub label: String,
    /// Structural role.
    pub role: ComponentRole,
    /// Input ports in port-index order.
    pub inputs: Vec<FlowPort>,
    /// Effective output kinds: declared provides plus, for live nodes,
    /// everything attached features add.
    pub provides: Vec<String>,
    /// Effective transfer function metadata (type-level spec overlaid
    /// with any per-instance override).
    pub transfer: TransferSpec,
    /// Whether the node anonymizes identifiable data: declared on the
    /// transfer spec, or (live) contributed by an attached feature.
    pub anonymizes: bool,
    /// Effective effect metadata (type-level spec overlaid with any
    /// per-instance override).
    pub effects: EffectSpec,
}

/// One wire: output of `from` into input `port` of `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEdge {
    /// Producing node index.
    pub from: usize,
    /// Consuming node index.
    pub to: usize,
    /// Input port on the consumer.
    pub port: usize,
}

/// The unified graph representation dataflow analyses run on.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    /// Component instances.
    pub nodes: Vec<FlowNode>,
    /// Wires between them.
    pub edges: Vec<FlowEdge>,
    /// Executor mode the configuration requests (`None` = the default
    /// sequential executor; live structures do not record a request).
    pub executor: Option<String>,
    /// Fleet deployment the configuration requests (`None` = a single
    /// unsupervised instance; live structures do not record one).
    pub fleet: Option<FleetSpec>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl FlowGraph {
    pub(crate) fn finish(nodes: Vec<FlowNode>, edges: Vec<FlowEdge>) -> FlowGraph {
        let mut preds = vec![Vec::new(); nodes.len()];
        let mut succs = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            preds[e.to].push(i);
            succs[e.from].push(i);
        }
        FlowGraph {
            nodes,
            edges,
            executor: None,
            fleet: None,
            preds,
            succs,
        }
    }

    /// Builds the analysis representation of a declarative configuration.
    ///
    /// Components whose type the catalog does not know, and connections
    /// referencing unknown instances or out-of-range ports, are skipped —
    /// the reference lints (P007) report those; dataflow analysis runs on
    /// the well-formed remainder.
    pub fn from_config(config: &GraphConfig, catalog: &TypeCatalog) -> FlowGraph {
        let mut nodes = Vec::new();
        let mut index: BTreeMap<&str, usize> = BTreeMap::new();
        for c in &config.components {
            let Some(spec) = catalog.get(&c.kind) else {
                continue;
            };
            if index.contains_key(c.name.as_str()) {
                continue; // duplicate instance name; P007 reports it
            }
            let role = match spec.role.as_str() {
                "source" => ComponentRole::Source,
                "merge" => ComponentRole::Merge,
                "sink" => ComponentRole::Sink,
                _ => ComponentRole::Processor,
            };
            let base = spec.transfer.clone().unwrap_or_default();
            let transfer = match &c.transfer {
                Some(over) => base.overlay(over),
                None => base,
            };
            let effects_base = spec.effects.clone().unwrap_or_default();
            let effects = match &c.effects {
                Some(over) => effects_base.overlay(over),
                None => effects_base,
            };
            let anonymizes = transfer.anonymizes == Some(true);
            index.insert(c.name.as_str(), nodes.len());
            nodes.push(FlowNode {
                label: c.name.clone(),
                role,
                inputs: spec
                    .inputs
                    .iter()
                    .map(|p| FlowPort {
                        accepts: p.accepts.clone(),
                    })
                    .collect(),
                provides: spec.provides.clone(),
                transfer,
                anonymizes,
                effects,
            });
        }
        let mut edges = Vec::new();
        for conn in &config.connections {
            let (Some(&from), Some(&to)) =
                (index.get(conn.from.as_str()), index.get(conn.to.as_str()))
            else {
                continue;
            };
            if conn.port >= nodes[to].inputs.len() {
                continue;
            }
            edges.push(FlowEdge {
                from,
                to,
                port: conn.port,
            });
        }
        let mut graph = FlowGraph::finish(nodes, edges);
        graph.executor = config.executor.clone();
        graph.fleet = config.fleet.clone();
        graph
    }

    /// Builds the analysis representation of a live (or simulated)
    /// structure, as returned by `Middleware::structure()`.
    pub fn from_structure(structure: &[NodeInfo]) -> FlowGraph {
        let index: BTreeMap<_, _> = structure
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, i))
            .collect();
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for (i, n) in structure.iter().enumerate() {
            let mut provides: Vec<String> = n
                .descriptor
                .output
                .as_ref()
                .map(|o| o.provides.iter().map(|k| k.as_str().to_string()).collect())
                .unwrap_or_default();
            for f in &n.features {
                for k in &f.adds_kinds {
                    let s = k.as_str().to_string();
                    if !provides.contains(&s) {
                        provides.push(s);
                    }
                }
            }
            let anonymizes = n.descriptor.transfer.anonymizes == Some(true)
                || n.features.iter().any(|f| f.anonymizes);
            nodes.push(FlowNode {
                label: format!("{} ({})", n.descriptor.name, n.id),
                role: n.descriptor.role,
                inputs: n
                    .descriptor
                    .inputs
                    .iter()
                    .map(|p| FlowPort {
                        accepts: p.accepts.iter().map(|k| k.as_str().to_string()).collect(),
                    })
                    .collect(),
                provides,
                transfer: n.descriptor.transfer.clone(),
                anonymizes,
                effects: n.descriptor.effects.clone(),
            });
            for (port, producer) in n.inputs.iter().enumerate() {
                let Some(pid) = producer else { continue };
                let Some(&from) = index.get(pid) else {
                    continue;
                };
                edges.push(FlowEdge { from, to: i, port });
            }
        }
        FlowGraph::finish(nodes, edges)
    }

    /// Edge indices entering `node` (wires driving its input ports).
    pub fn preds(&self, node: usize) -> &[usize] {
        &self.preds[node]
    }

    /// Edge indices leaving `node`.
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// The data kinds that can actually flow over edge `e`: the
    /// producer's effective provides filtered by what the consuming port
    /// accepts. The engine enforces exactly this at delivery time, so
    /// analyses that propagate per-kind facts filter with it too.
    pub fn edge_kinds(&self, e: usize) -> Vec<String> {
        let edge = &self.edges[e];
        let port = &self.nodes[edge.to].inputs[edge.port];
        self.nodes[edge.from]
            .provides
            .iter()
            .filter(|k| port.accepts_kind(k))
            .cloned()
            .collect()
    }

    /// A topological order of the nodes, or `None` if the graph has a
    /// cycle (possible only for hypothetical/declarative structures; the
    /// live graph is acyclic by construction).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indegree: Vec<usize> = (0..self.nodes.len()).map(|i| self.preds[i].len()).collect();
        let mut queue: VecDeque<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &e in &self.succs[i] {
                let t = self.edges[e].to;
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }

    /// Longest-path layering of the nodes: level 0 holds the nodes with
    /// no wired producers, and every other node sits one past its
    /// deepest producer. This mirrors the layering the level-parallel
    /// executor schedules by, so lint output and runtime agree on the
    /// graph's parallel width. Nodes stuck on a cycle (possible only in
    /// declarative configs; flagged P005 elsewhere) are placed at level
    /// 0 to keep the layering total.
    pub fn topo_levels(&self) -> Vec<Vec<usize>> {
        let mut level: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut pending: Vec<usize> = (0..self.nodes.len()).collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&i| {
                let mut lvl = 0usize;
                for &e in &self.preds[i] {
                    match level[self.edges[e].from] {
                        Some(l) => lvl = lvl.max(l + 1),
                        None => return true, // producer not layered yet
                    }
                }
                level[i] = Some(lvl);
                false
            });
            if pending.len() == before {
                for i in pending.drain(..) {
                    level[i] = Some(0);
                }
            }
        }
        let depth = level.iter().flatten().copied().max().map_or(0, |m| m + 1);
        let mut levels = vec![Vec::new(); depth];
        for (i, l) in level.into_iter().enumerate() {
            levels[l.unwrap_or(0)].push(i);
        }
        levels
    }
}

/// An abstract domain: the lattice of facts one analysis computes, with
/// its per-node transfer function.
///
/// Facts live on node *outputs* (for sinks, the fact describes what the
/// sink observes). [`Domain::transfer`] receives the facts of all wired
/// producers, one entry per incoming edge, and combines/filters them as
/// the domain requires — joins happen inside `transfer`, which keeps
/// per-edge filtering (by the kinds the edge can carry) domain-specific.
pub trait Domain {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// The least element: "nothing known yet".
    fn bottom(&self) -> Self::Fact;

    /// Computes the node's output fact from its inputs. `inputs` holds
    /// `(edge_index, producer_fact)` for every wired incoming edge, in
    /// edge order; use [`FlowGraph::edge_kinds`] for per-edge filtering.
    fn transfer(
        &self,
        graph: &FlowGraph,
        node: usize,
        inputs: &[(usize, &Self::Fact)],
    ) -> Self::Fact;

    /// Accelerates convergence on cyclic inputs: called instead of plain
    /// replacement once a node has been revisited [`WIDEN_AFTER`] times.
    /// Must return an upper bound of both arguments; the default keeps
    /// the new fact, which suffices for finite lattices.
    fn widen(&self, previous: &Self::Fact, next: &Self::Fact) -> Self::Fact {
        let _ = previous;
        next.clone()
    }
}

/// Revisit count after which the solver starts widening a node's fact.
pub const WIDEN_AFTER: usize = 4;

/// The solved facts of one domain over one graph.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Output fact per node, indexed like [`FlowGraph::nodes`].
    pub facts: Vec<F>,
    /// Whether a fixpoint was reached. A single topological pass over a
    /// DAG always converges; the worklist fallback converges unless the
    /// step cap is hit (pathological non-widening domains only).
    pub converged: bool,
    /// Transfer-function evaluations performed.
    pub steps: usize,
}

/// Runs `domain` to a fixpoint over `graph`.
///
/// DAGs (every real positioning process) are solved in one pass over a
/// topological order. Cyclic graphs — already structural errors, but the
/// solver must not hang on them — use a worklist: each node's fact is
/// recomputed until stable, with [`Domain::widen`] applied after
/// [`WIDEN_AFTER`] revisits and a hard step cap as the final backstop.
pub fn solve<D: Domain>(graph: &FlowGraph, domain: &D) -> Solution<D::Fact> {
    let n = graph.nodes.len();
    let mut facts: Vec<D::Fact> = (0..n).map(|_| domain.bottom()).collect();

    let gather = |facts: &Vec<D::Fact>, node: usize| -> Vec<(usize, D::Fact)> {
        graph
            .preds(node)
            .iter()
            .map(|&e| (e, facts[graph.edges[e].from].clone()))
            .collect()
    };
    let run = |domain: &D, facts: &Vec<D::Fact>, node: usize| -> D::Fact {
        let inputs = gather(facts, node);
        let refs: Vec<(usize, &D::Fact)> = inputs.iter().map(|(e, f)| (*e, f)).collect();
        domain.transfer(graph, node, &refs)
    };

    if let Some(order) = graph.topological_order() {
        for &i in &order {
            facts[i] = run(domain, &facts, i);
        }
        return Solution {
            facts,
            converged: true,
            steps: n,
        };
    }

    // Cyclic (already-invalid) structure: worklist with widening.
    let cap = 64 * n.max(1) + 64;
    let mut steps = 0;
    let mut visits = vec![0usize; n];
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();
    let mut converged = true;
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        if steps >= cap {
            converged = false;
            break;
        }
        steps += 1;
        let mut next = run(domain, &facts, i);
        visits[i] += 1;
        if visits[i] > WIDEN_AFTER {
            next = domain.widen(&facts[i], &next);
        }
        if next != facts[i] {
            facts[i] = next;
            for &e in graph.succs(i) {
                let t = graph.edges[e].to;
                if !queued[t] {
                    queued[t] = true;
                    work.push_back(t);
                }
            }
        }
    }
    Solution {
        facts,
        converged,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ComponentTypeSpec, PortSpec};
    use perpos_core::assembly::{ComponentConfig, ConnectionConfig};

    fn spec(kind: &str, role: &str, inputs: usize, provides: &[&str]) -> ComponentTypeSpec {
        ComponentTypeSpec {
            kind: kind.into(),
            role: role.into(),
            inputs: (0..inputs)
                .map(|i| PortSpec {
                    name: format!("in{i}"),
                    accepts: Vec::new(),
                    required_features: Vec::new(),
                })
                .collect(),
            provides: provides.iter().map(|s| s.to_string()).collect(),
            transfer: None,
            effects: None,
        }
    }

    fn instance(name: &str, kind: &str) -> ComponentConfig {
        ComponentConfig {
            name: name.into(),
            kind: kind.into(),
            fault_policy: None,
            transfer: None,
            effects: None,
        }
    }

    fn edge(from: &str, to: &str, port: usize) -> ConnectionConfig {
        ConnectionConfig {
            from: from.into(),
            to: to.into(),
            port,
        }
    }

    /// Counts the longest producer chain above each node — a simple
    /// domain whose fixpoint on a DAG is node depth, and which diverges
    /// on cycles unless widened.
    struct Depth;
    impl Domain for Depth {
        type Fact = u64;
        fn bottom(&self) -> u64 {
            0
        }
        fn transfer(&self, _g: &FlowGraph, _n: usize, inputs: &[(usize, &u64)]) -> u64 {
            inputs
                .iter()
                .map(|(_, f)| (**f).saturating_add(1))
                .max()
                .unwrap_or(0)
        }
        fn widen(&self, _previous: &u64, _next: &u64) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn dag_is_solved_in_topological_order() {
        let mut catalog = TypeCatalog::new();
        catalog.insert(spec("src", "source", 0, &["raw.string"]));
        catalog.insert(spec("proc", "processor", 1, &["raw.string"]));
        catalog.insert(spec("join", "merge", 2, &["raw.string"]));
        let config = GraphConfig {
            components: vec![
                instance("a", "src"),
                instance("b", "proc"),
                instance("c", "join"),
                instance("app", "application"),
            ],
            connections: vec![
                edge("a", "b", 0),
                edge("a", "c", 0),
                edge("b", "c", 1),
                edge("c", "app", 0),
            ],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let g = FlowGraph::from_config(&config, &catalog);
        assert_eq!(g.nodes.len(), 4);
        assert_eq!(g.edges.len(), 4);
        let solution = solve(&g, &Depth);
        assert!(solution.converged);
        // a=0, b=1, c=max(a,b)+1=2, app=3.
        assert_eq!(solution.facts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cyclic_graph_terminates_via_widening() {
        let mut catalog = TypeCatalog::new();
        catalog.insert(spec("proc", "processor", 1, &["raw.string"]));
        let config = GraphConfig {
            components: vec![instance("x", "proc"), instance("y", "proc")],
            connections: vec![edge("x", "y", 0), edge("y", "x", 0)],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let g = FlowGraph::from_config(&config, &catalog);
        assert!(g.topological_order().is_none());
        let solution = solve(&g, &Depth);
        assert!(solution.converged, "widening must reach the fixpoint");
        assert_eq!(solution.facts, vec![u64::MAX, u64::MAX]);
    }

    #[test]
    fn topo_levels_layer_by_longest_path() {
        let mut catalog = TypeCatalog::new();
        catalog.insert(spec("src", "source", 0, &["raw.string"]));
        catalog.insert(spec("proc", "processor", 1, &["raw.string"]));
        catalog.insert(spec("join", "merge", 2, &["raw.string"]));
        let config = GraphConfig {
            components: vec![
                instance("a", "src"),
                instance("b", "proc"),
                instance("c", "join"),
                instance("app", "application"),
            ],
            connections: vec![
                edge("a", "b", 0),
                edge("a", "c", 0),
                edge("b", "c", 1),
                edge("c", "app", 0),
            ],
            executor: Some("level-parallel".into()),
            tree_policy: None,
            fleet: None,
        };
        let g = FlowGraph::from_config(&config, &catalog);
        assert_eq!(g.executor.as_deref(), Some("level-parallel"));
        // c consumes both a (depth 0) and b (depth 1), so it sits at
        // level 2 — one past its *deepest* producer.
        assert_eq!(g.topo_levels(), vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn topo_levels_stay_total_on_cycles() {
        let mut catalog = TypeCatalog::new();
        catalog.insert(spec("proc", "processor", 1, &["raw.string"]));
        let config = GraphConfig {
            components: vec![instance("x", "proc"), instance("y", "proc")],
            connections: vec![edge("x", "y", 0), edge("y", "x", 0)],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let g = FlowGraph::from_config(&config, &catalog);
        let levels = g.topo_levels();
        let placed: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(placed, 2, "every node is layered even on a cycle");
    }

    #[test]
    fn unknown_references_are_skipped_not_fatal() {
        let mut catalog = TypeCatalog::new();
        catalog.insert(spec("src", "source", 0, &["raw.string"]));
        let config = GraphConfig {
            components: vec![instance("a", "src"), instance("ghost", "unknown-type")],
            connections: vec![edge("a", "nobody", 0), edge("ghost", "a", 7)],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let g = FlowGraph::from_config(&config, &catalog);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.edges.is_empty());
        assert!(solve(&g, &Depth).converged);
    }

    #[test]
    fn edge_kinds_filter_by_port_accepts() {
        let mut catalog = TypeCatalog::new();
        catalog.insert(spec("src", "source", 0, &["raw.string", "nmea.sentence"]));
        let mut narrow = spec("narrow", "processor", 1, &["position.wgs84"]);
        narrow.inputs[0].accepts = vec!["nmea.sentence".into()];
        catalog.insert(narrow);
        let config = GraphConfig {
            components: vec![instance("s", "src"), instance("n", "narrow")],
            connections: vec![edge("s", "n", 0)],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let g = FlowGraph::from_config(&config, &catalog);
        assert_eq!(g.edge_kinds(0), vec!["nmea.sentence".to_string()]);
    }
}
