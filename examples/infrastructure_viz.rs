//! Infrastructure visualization for authoring tools (the paper intro's
//! reference [2], Oppermann et al.): translucency lets a developer tool
//! render the positioning infrastructure and its *seams* — coverage
//! boundaries, signal quality, processing topology — rather than just
//! positions.
//!
//! This example renders, from middleware inspection alone:
//! 1. the processing topology (PSL),
//! 2. the channels and their features (PCL),
//! 3. a WiFi signal-quality map of the building (the physical seam),
//! 4. per-component health counters via reflection.
//!
//! Run with: `cargo run --example infrastructure_viz`

use std::sync::Arc;

use perpos::prelude::*;

fn main() -> Result<(), CoreError> {
    let building = Arc::new(demo_building());
    let frame = *building.frame();
    let walk = Trajectory::stationary(Point2::new(10.0, 5.25));

    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(2)
            .with_environment(GpsEnvironment::indoor()),
    );
    let parser = mw.add_component(Parser::new());
    mw.attach_feature(parser, HdopFeature::new())?;
    mw.attach_feature(parser, NumberOfSatellitesFeature::new())?;
    let interpreter = mw.add_component(Interpreter::new());
    let env = Arc::new(WifiEnvironment::with_ap_per_room(Arc::clone(&building), 0));
    let map = Arc::new(perpos::sensors::RadioMap::build(&env, 1.0));
    let wifi = mw.add_component(WifiScanner::new("WiFi", Arc::clone(&env), walk).with_seed(3));
    let wifi_pos = mw.add_component(WifiPositioning::new(map, Arc::clone(&building)));
    let app = mw.application_sink();
    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect_to_sink(interpreter, app)?;
    mw.connect(wifi, wifi_pos, 0)?;
    mw.connect_to_sink(wifi_pos, app)?;

    mw.run_for(SimDuration::from_secs(30), SimDuration::from_secs(1))?;

    println!("== 1. processing topology ==");
    print!("{}", mw.render_process_tree());

    println!("\n== 2. channels and their features ==");
    for c in mw.channels() {
        println!(
            "  {} : {}  features={:?}",
            c.id,
            c.member_names.join(" -> "),
            c.features
        );
    }

    println!("\n== 3. WiFi signal-quality seam map (strongest AP RSSI, dBm) ==");
    println!("   legend: '#' wall, '9'..'0' ≈ -25..-45 dBm, ' ' below threshold\n");
    let floor = building.floor(0).expect("demo floor");
    let cell = 1.0;
    for row in (0..11).rev() {
        let mut line = String::new();
        for col in 0..21 {
            let p = Point2::new(col as f64 * cell, row as f64 * cell);
            let on_wall = floor.walls().iter().any(|w| w.distance_to_point(&p) < 0.3);
            if on_wall {
                line.push('#');
                continue;
            }
            if floor.room_at(p).is_none() {
                line.push(' ');
                continue;
            }
            let best = env
                .access_points()
                .iter()
                .map(|ap| env.mean_rssi_dbm(ap, p))
                .fold(f64::NEG_INFINITY, f64::max);
            let ch = if best < -90.0 {
                ' '
            } else {
                // -25 dBm -> '9' … -45 dBm -> '0' (indoor dynamic range)
                let level = ((best + 45.0) / 20.0 * 9.0).clamp(0.0, 9.0) as u32;
                char::from_digit(level, 10).unwrap_or('?')
            };
            line.push(ch);
        }
        println!("   {line}");
    }

    println!("\n== 4. component health via reflection ==");
    for node in mw.structure() {
        let name = node.descriptor.name.clone();
        for method in mw.methods(node.id)? {
            if method.name.ends_with("Count")
                || method.name.ends_with("Produced")
                || method.name.starts_with("get")
            {
                if let Ok(v) = mw.invoke(node.id, &method.name, &[]) {
                    println!("  {name:<16} {:<24} = {v}", method.name);
                }
            }
        }
    }
    println!(
        "\n(indoor GPS seam, visible in the counters: the Parser parsed far more sentences\n than the Interpreter produced positions — the gap is the invalid-fix seam)"
    );
    Ok(())
}
