//! # PerPos — a translucent positioning middleware (facade crate)
//!
//! This crate re-exports the whole PerPos workspace — a Rust
//! reproduction of *"PerPos: A Translucent Positioning Middleware
//! Supporting Adaptation of Internal Positioning Processes"*
//! (Langdal, Schougaard, Kjærgaard, Toftkjær — Middleware 2010) — under
//! one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `perpos-core` | the middleware: processing graph (PSL), channels & data trees (PCL), positioning layer, features, engine |
//! | [`geo`] | `perpos-geo` | WGS-84 / ECEF / ENU coordinates and planar geometry |
//! | [`nmea`] | `perpos-nmea` | NMEA-0183 parsing, generation and stream splitting |
//! | [`model`] | `perpos-model` | buildings, rooms, walls, room graphs (the location model service) |
//! | [`registry`] | `perpos-registry` | OSGi-like dynamic service registry |
//! | [`sensors`] | `perpos-sensors` | GPS/WiFi/motion simulators, Fig. 1 pipeline components, trace emulator |
//! | [`fusion`] | `perpos-fusion` | particle filter, Likelihood channel feature, Kalman/centroid baselines |
//! | [`energy`] | `perpos-energy` | power models and the EnTracked strategy |
//! | [`baselines`] | `perpos-baselines` | Location-Stack- and PoSIM-style comparison middlewares |
//! | [`analysis`] | `perpos-analysis` | whole-graph static analysis (P001–P019), adaptation safety, `perpos-lint` |
//!
//! See `examples/` for runnable scenarios (start with
//! `cargo run --example quickstart`) and `DESIGN.md` / `EXPERIMENTS.md`
//! for the paper-reproduction map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use perpos_analysis as analysis;
pub use perpos_baselines as baselines;
pub use perpos_core as core;
pub use perpos_energy as energy;
pub use perpos_fusion as fusion;
pub use perpos_geo as geo;
pub use perpos_model as model;
pub use perpos_nmea as nmea;
pub use perpos_registry as registry;
pub use perpos_sensors as sensors;

/// Everything an application built on PerPos usually needs.
pub mod prelude {
    pub use perpos_core::prelude::*;
    pub use perpos_geo::{LocalFrame, Point2, Wgs84};
    pub use perpos_model::{demo_building, Building, BuildingBuilder, RoomId};
    pub use perpos_sensors::{
        EmulatorSource, FaultInjector, GpsEnvironment, GpsSimulator, HdopFeature, Interpreter,
        MotionSensor, NumberOfSatellitesFeature, Parser, Resolver, SatelliteFilter, SensorWrapper,
        Trace, TraceError, Trajectory, WifiEnvironment, WifiPositioning, WifiScanner,
    };
}
