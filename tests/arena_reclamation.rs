//! Arena reclamation under channel backpressure: the payload arena's
//! prefix-claim reclamation must keep arena-held memory bounded over an
//! arbitrarily long run — including the adversarial case where a level
//! ring sits permanently full because a downstream stage swallows every
//! item — while leaving every channel-layer counter exactly as the
//! pre-arena data plane reported it.

#![allow(clippy::unwrap_used)]
use perpos::core::channel::LEVEL_BUFFER_CAP;
use perpos::prelude::*;

fn text_source(name: &str) -> impl Component {
    let mut i = 0i64;
    FnSource::new(name.to_string(), kinds::RAW_STRING, move |_| {
        i += 1;
        Some(Value::Text(format!("$GPGGA,fix,{i:06}")))
    })
}

/// Soak length: long enough that an unbounded leak (growth proportional
/// to steps) dwarfs every legitimate pool, and not a multiple of the
/// reclamation stride so partial sweeps are exercised too.
const SOAK_STEPS: u64 = 100_003;

#[test]
fn swallowed_pipeline_soak_holds_leak_bound_and_drop_counters() {
    // src -> swallow -> app: the swallow stage never produces, so the
    // channel endpoint never completes and level 0's ring buffers until
    // the cap bounds it. Every buffered entry pins its payload's arena
    // slot — the worst case for reclamation.
    let mut mw = Middleware::new();
    let src = mw.add_component(text_source("src"));
    let swallow = mw.add_component(FnProcessor::new(
        "swallow",
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        |_| None,
    ));
    let app = mw.application_sink();
    mw.connect(src, swallow, 0).unwrap();
    mw.connect_to_sink(swallow, app).unwrap();
    assert!(mw.arena_enabled(), "interning is the default");

    mw.step_batch(SOAK_STEPS, SimDuration::from_micros(1)).unwrap();

    // Channel counters are byte-for-byte the pre-arena semantics: the
    // ring holds exactly its cap, the overflow is counted as dropped.
    let ch = mw.channel_into(app, 0).unwrap();
    let stats = mw.channel_stats(ch).unwrap();
    assert_eq!(stats.buffered, LEVEL_BUFFER_CAP as u64);
    assert_eq!(stats.dropped, SOAK_STEPS - LEVEL_BUFFER_CAP as u64);

    // One interned payload per step, and the arena's working set is
    // bounded by its pools — ring-pinned slots cool and recycle as the
    // ring evicts them, so memory held via the arena is O(pools), not
    // O(steps). (`escaped` slots left the arena's books entirely; their
    // memory dies with the holder, so they cannot leak either.)
    let arena = mw.arena_stats();
    assert_eq!(arena.interned, SOAK_STEPS);
    let held = arena.live + arena.cooling + arena.free;
    assert!(
        held <= 4 * LEVEL_BUFFER_CAP,
        "arena working set grew with the soak: {arena:?}"
    );
    // Reclamation must actually run — the soak recycles slots at a rate
    // comparable to interning, it does not just allocate fresh forever.
    assert!(
        arena.recycled >= arena.interned / 2,
        "recycling stalled: {arena:?}"
    );
    eprintln!("swallow soak arena stats: {arena:?}");
}

#[test]
fn healthy_pipeline_soak_recycles_nearly_everything() {
    // src -> relay -> app: items flow to the sink and nothing pins
    // slots beyond the retire lag, so reclamation keeps pace exactly.
    let mut mw = Middleware::new();
    let src = mw.add_component(text_source("src"));
    let relay = mw.add_component(FnRelay::new(
        "relay",
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
    ));
    let app = mw.application_sink();
    mw.connect(src, relay, 0).unwrap();
    mw.connect_to_sink(relay, app).unwrap();

    mw.step_batch(SOAK_STEPS, SimDuration::from_micros(1)).unwrap();

    let arena = mw.arena_stats();
    assert_eq!(arena.interned, SOAK_STEPS);
    let held = arena.live + arena.cooling + arena.free;
    assert!(
        held <= 4 * LEVEL_BUFFER_CAP,
        "arena working set grew with the soak: {arena:?}"
    );
    assert!(
        arena.recycled >= arena.interned * 9 / 10,
        "a healthy pipeline must recycle nearly every slot: {arena:?}"
    );
    eprintln!("healthy soak arena stats: {arena:?}");
}
