use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, MethodSpec};
use perpos_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use crate::trajectory::Trajectory;

/// An accelerometer-like motion sensor: emits `motion.sample` items with
/// a movement flag and a speed estimate.
///
/// EnTracked's client-side updating scheme uses exactly this signal: the
/// GPS can stay off while the accelerometer reports the target
/// stationary (paper §3.3). Misclassification noise is configurable so
/// the strategy must tolerate imperfect detection.
///
/// Reflective methods: `setEnabled(bool)`, `isEnabled() -> bool`.
pub struct MotionSensor {
    name: String,
    trajectory: Trajectory,
    interval: SimDuration,
    next_at: SimTime,
    flip_prob: f64,
    rng: StdRng,
    enabled: bool,
}

impl MotionSensor {
    /// Creates a sensor sampling at 1 Hz with 2% misclassification.
    pub fn new(name: impl Into<String>, trajectory: Trajectory) -> Self {
        MotionSensor {
            name: name.into(),
            trajectory,
            interval: SimDuration::from_secs(1),
            next_at: SimTime::ZERO,
            flip_prob: 0.02,
            rng: StdRng::seed_from_u64(0x0a11),
            enabled: true,
        }
    }

    /// Sets the misclassification probability (builder style).
    pub fn with_flip_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.flip_prob = p;
        self
    }

    /// Sets the sampling interval (builder style).
    pub fn with_interval(mut self, d: SimDuration) -> Self {
        self.interval = d;
        self
    }

    /// Seeds the noise generator (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }
}

impl std::fmt::Debug for MotionSensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MotionSensor")
            .field("name", &self.name)
            .finish()
    }
}

impl Component for MotionSensor {
    fn descriptor(&self) -> ComponentDescriptor {
        let secs = self.interval.as_secs_f64();
        let mut transfer = TransferSpec::new();
        if secs > 0.0 {
            transfer = transfer.with_emit_rate_hz(1.0 / secs);
        }
        ComponentDescriptor::source(self.name.clone(), vec![kinds::MOTION_SAMPLE])
            .with_transfer(transfer)
    }

    fn on_input(
        &mut self,
        port: usize,
        _item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Err(CoreError::ComponentFailure {
            component: self.name.clone(),
            reason: format!("motion source has no input port {port}"),
        })
    }

    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        if !self.enabled || ctx.now() < self.next_at {
            return Ok(());
        }
        self.next_at = ctx.now() + self.interval;
        let speed = self.trajectory.speed_at(ctx.now());
        let mut moving = speed > 0.05;
        if self.rng.gen::<f64>() < self.flip_prob {
            moving = !moving;
        }
        let mut map = BTreeMap::new();
        map.insert("moving".to_string(), Value::Bool(moving));
        map.insert(
            "speed_estimate".to_string(),
            Value::Float(if moving { speed.max(0.3) } else { 0.0 }),
        );
        let item = DataItem::new(kinds::MOTION_SAMPLE, ctx.now(), Value::Map(map))
            .with_attr("source", Value::from("motion"));
        ctx.emit(item);
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setEnabled" => {
                let on = args.first().and_then(Value::as_bool).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one bool".into(),
                    }
                })?;
                self.enabled = on;
                Ok(Value::Null)
            }
            "isEnabled" => Ok(Value::Bool(self.enabled)),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setEnabled", "(on: bool) -> null"),
            MethodSpec::new("isEnabled", "() -> bool"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_geo::Point2;

    #[test]
    fn reports_motion_while_walking() {
        let traj = Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)], 1.4);
        let mut sensor = MotionSensor::new("motion", traj).with_flip_prob(0.0);
        let out = ComponentCtxProbe::run_tick(&mut sensor).unwrap();
        assert_eq!(out.len(), 1);
        let map = out[0].payload.as_map().unwrap();
        assert_eq!(map["moving"].as_bool(), Some(true));
        assert!(map["speed_estimate"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn reports_stationary() {
        let mut sensor = MotionSensor::new("motion", Trajectory::stationary(Point2::new(0.0, 0.0)))
            .with_flip_prob(0.0);
        let out = ComponentCtxProbe::run_tick(&mut sensor).unwrap();
        let map = out[0].payload.as_map().unwrap();
        assert_eq!(map["moving"].as_bool(), Some(false));
        assert_eq!(map["speed_estimate"].as_f64(), Some(0.0));
    }

    #[test]
    fn flip_probability_injects_errors() {
        let mut sensor = MotionSensor::new("motion", Trajectory::stationary(Point2::new(0.0, 0.0)))
            .with_flip_prob(1.0)
            .with_seed(1);
        let out = ComponentCtxProbe::run_tick(&mut sensor).unwrap();
        let map = out[0].payload.as_map().unwrap();
        assert_eq!(map["moving"].as_bool(), Some(true), "always flipped");
    }

    #[test]
    fn respects_interval_and_enable() {
        let traj = Trajectory::stationary(Point2::new(0.0, 0.0));
        let mut sensor = MotionSensor::new("m", traj)
            .with_interval(SimDuration::from_secs(10))
            .with_flip_prob(0.0);
        assert_eq!(ComponentCtxProbe::run_tick(&mut sensor).unwrap().len(), 1);
        // Within the interval: silent.
        let mut ctx = perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(5.0));
        sensor.on_tick(&mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
        sensor.invoke("setEnabled", &[Value::Bool(false)]).unwrap();
        let mut ctx = perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(60.0));
        sensor.on_tick(&mut ctx).unwrap();
        assert!(ctx.take_emitted().is_empty());
    }
}
