//! Provenance/privacy taint (P012).
//!
//! The fact on a node's output is the set of `(kind, origin)` pairs of
//! raw identifiable sensor data the output still carries: which
//! identifiable kinds, and which component they originate from. Taint is
//! seeded wherever a component provides an identifiable kind (the
//! [built-in set](IDENTIFIABLE_KINDS) plus anything listed in
//! [`TransferSpec::taints`]), flows only along edges whose ports let the
//! kind through and only while the downstream component keeps providing
//! the kind (a parser turning `raw.string` into `nmea.sentence` ends the
//! raw string's journey), and is cleared entirely by an anonymizing
//! component or feature.
//!
//! [`diagnostics`] reports P012 when taint reaches an application sink:
//! identifiable data leaves the middleware without anonymization.

use std::collections::BTreeSet;

use perpos_core::component::ComponentRole;

use crate::dataflow::{Domain, FlowGraph};
use crate::diagnostic::{Code, Diagnostic, Report, Severity};

#[allow(unused_imports)] // doc links
use perpos_core::component::TransferSpec;

/// Data kinds treated as raw identifiable sensor data everywhere: raw
/// device read-outs (which may embed serial numbers and precise
/// movement), WiFi scans (MAC addresses) and inertial samples (gait
/// fingerprints). Extendable per component via [`TransferSpec::taints`].
pub const IDENTIFIABLE_KINDS: &[&str] = &["raw.string", "wifi.scan", "motion.sample"];

/// Whether `kind` counts as identifiable at `node`.
fn identifiable(graph: &FlowGraph, node: usize, kind: &str) -> bool {
    IDENTIFIABLE_KINDS.contains(&kind)
        || graph.nodes[node]
            .transfer
            .taints
            .as_ref()
            .is_some_and(|extra| extra.iter().any(|k| k == kind))
}

/// The privacy-taint domain; facts are sets of `(kind, origin label)`.
pub struct TaintDomain;

impl Domain for TaintDomain {
    type Fact = BTreeSet<(String, String)>;

    fn bottom(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn transfer(
        &self,
        graph: &FlowGraph,
        node: usize,
        inputs: &[(usize, &Self::Fact)],
    ) -> Self::Fact {
        let n = &graph.nodes[node];
        if n.anonymizes {
            return BTreeSet::new();
        }
        let mut out = BTreeSet::new();
        let keeps_flowing =
            |kind: &str| n.role == ComponentRole::Sink || n.provides.iter().any(|k| k == kind);
        for (e, fact) in inputs {
            let kinds = graph.edge_kinds(*e);
            for (kind, origin) in fact.iter() {
                if kinds.iter().any(|k| k == kind) && keeps_flowing(kind) {
                    out.insert((kind.clone(), origin.clone()));
                }
            }
        }
        for kind in &n.provides {
            if identifiable(graph, node, kind) {
                out.insert((kind.clone(), n.label.clone()));
            }
        }
        out
    }
}

/// P012 checks over the solved taint facts.
pub fn diagnostics(graph: &FlowGraph, facts: &[BTreeSet<(String, String)>], report: &mut Report) {
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.role != ComponentRole::Sink || facts[i].is_empty() {
            continue;
        }
        let list: Vec<String> = facts[i]
            .iter()
            .map(|(kind, origin)| format!("{kind} from {origin}"))
            .collect();
        report.push(
            Diagnostic::new(
                Code::P012,
                Severity::Error,
                format!(
                    "raw identifiable sensor data reaches application sink {}: {}",
                    n.label,
                    list.join(", ")
                ),
                vec![n.label.clone()],
            )
            .with_hint(
                "insert an anonymizing component or attach an anonymizing feature on \
                 the path, or stop delivering the raw kind to the sink",
            ),
        );
    }
}
