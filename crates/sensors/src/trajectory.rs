use perpos_core::{SimDuration, SimTime};
use perpos_geo::{Point2, Vec2};
use serde::{Deserialize, Serialize};

/// A piecewise-linear ground-truth path through building-local
/// coordinates, walked at a constant speed.
///
/// Trajectories are the shared ground truth of the simulation: the GPS
/// and WiFi simulators sample (noisy observations of) the same trajectory,
/// and the experiments compare middleware outputs against it.
///
/// ```
/// use perpos_core::SimTime;
/// use perpos_geo::Point2;
/// use perpos_sensors::Trajectory;
///
/// let t = Trajectory::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)],
///     1.0, // m/s
/// );
/// assert_eq!(t.position_at(SimTime::from_secs_f64(5.0)), Point2::new(5.0, 0.0));
/// assert_eq!(t.duration().as_secs_f64(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<Point2>,
    speed_mps: f64,
    /// Cumulative distance at each waypoint.
    cumulative_m: Vec<f64>,
    looping: bool,
}

impl Trajectory {
    /// Creates a trajectory through `waypoints` at `speed_mps`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than one waypoint is given or the speed is not
    /// positive and finite.
    pub fn new(waypoints: Vec<Point2>, speed_mps: f64) -> Self {
        assert!(!waypoints.is_empty(), "a trajectory needs waypoints");
        assert!(
            speed_mps.is_finite() && speed_mps > 0.0,
            "speed must be positive, got {speed_mps}"
        );
        let mut cumulative_m = vec![0.0];
        for w in waypoints.windows(2) {
            let last = *cumulative_m.last().expect("seeded with one element");
            cumulative_m.push(last + w[0].distance(&w[1]));
        }
        Trajectory {
            waypoints,
            speed_mps,
            cumulative_m,
            looping: false,
        }
    }

    /// A trajectory that stands still at one point.
    pub fn stationary(at: Point2) -> Self {
        Trajectory {
            waypoints: vec![at],
            speed_mps: 1.0,
            cumulative_m: vec![0.0],
            looping: false,
        }
    }

    /// Makes the trajectory wrap around to the first waypoint when the
    /// end is reached (builder style).
    pub fn looping(mut self) -> Self {
        self.looping = true;
        self
    }

    /// The waypoints.
    pub fn waypoints(&self) -> &[Point2] {
        &self.waypoints
    }

    /// The constant walking speed in m/s.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Total path length in metres.
    pub fn length_m(&self) -> f64 {
        *self.cumulative_m.last().expect("non-empty")
    }

    /// Time to walk the full path once.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.length_m() / self.speed_mps)
    }

    /// Ground-truth position at simulated time `t`. Clamps to the final
    /// waypoint (or wraps when [`Trajectory::looping`]).
    pub fn position_at(&self, t: SimTime) -> Point2 {
        let total = self.length_m();
        if total == 0.0 {
            return self.waypoints[0];
        }
        let mut travelled = t.as_secs_f64() * self.speed_mps;
        if self.looping {
            travelled %= total;
        } else if travelled >= total {
            return *self.waypoints.last().expect("non-empty");
        }
        // Find the active segment.
        let seg = self
            .cumulative_m
            .windows(2)
            .position(|w| travelled >= w[0] && travelled <= w[1])
            .unwrap_or(self.waypoints.len().saturating_sub(2));
        let seg_len = self.cumulative_m[seg + 1] - self.cumulative_m[seg];
        let frac = if seg_len > 0.0 {
            (travelled - self.cumulative_m[seg]) / seg_len
        } else {
            0.0
        };
        let a = self.waypoints[seg];
        let b = self.waypoints[seg + 1];
        a + (b - a) * frac
    }

    /// Instantaneous speed at `t`: the walking speed while en route, zero
    /// after arrival (for non-looping trajectories).
    pub fn speed_at(&self, t: SimTime) -> f64 {
        if self.looping || self.waypoints.len() < 2 {
            return if self.waypoints.len() < 2 {
                0.0
            } else {
                self.speed_mps
            };
        }
        let travelled = t.as_secs_f64() * self.speed_mps;
        if travelled >= self.length_m() {
            0.0
        } else {
            self.speed_mps
        }
    }

    /// Heading (degrees clockwise from north) at `t`; `None` when
    /// stationary.
    pub fn heading_at(&self, t: SimTime) -> Option<f64> {
        if self.speed_at(t) == 0.0 {
            return None;
        }
        let p = self.position_at(t);
        let p2 = self.position_at(t + SimDuration::from_millis(100));
        let d: Vec2 = p2 - p;
        if d.norm() < 1e-9 {
            None
        } else {
            Some(d.heading_deg())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square_path() -> Trajectory {
        Trajectory::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(10.0, 0.0),
                Point2::new(10.0, 10.0),
                Point2::new(0.0, 10.0),
            ],
            2.0,
        )
    }

    #[test]
    #[should_panic(expected = "needs waypoints")]
    fn rejects_empty() {
        let _ = Trajectory::new(vec![], 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_bad_speed() {
        let _ = Trajectory::new(vec![Point2::new(0.0, 0.0)], 0.0);
    }

    #[test]
    fn interpolates_segments() {
        let t = square_path();
        assert_eq!(t.length_m(), 30.0);
        assert_eq!(t.position_at(SimTime::ZERO), Point2::new(0.0, 0.0));
        // 2 m/s * 2.5 s = 5 m along the first segment.
        assert_eq!(
            t.position_at(SimTime::from_secs_f64(2.5)),
            Point2::new(5.0, 0.0)
        );
        // 15 m: 10 on seg0 + 5 on seg1.
        let p = t.position_at(SimTime::from_secs_f64(7.5));
        assert!((p.x - 10.0).abs() < 1e-9 && (p.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_at_end() {
        let t = square_path();
        let end = t.position_at(SimTime::from_secs_f64(1000.0));
        assert_eq!(end, Point2::new(0.0, 10.0));
        assert_eq!(t.speed_at(SimTime::from_secs_f64(1000.0)), 0.0);
        assert_eq!(t.heading_at(SimTime::from_secs_f64(1000.0)), None);
    }

    #[test]
    fn looping_wraps() {
        let t = square_path().looping();
        let p0 = t.position_at(SimTime::ZERO);
        let p_wrap = t.position_at(SimTime::from_secs_f64(15.0)); // exactly one lap
        assert!((p0.distance(&p_wrap)) < 1e-9);
        assert_eq!(t.speed_at(SimTime::from_secs_f64(100.0)), 2.0);
    }

    #[test]
    fn stationary_never_moves() {
        let t = Trajectory::stationary(Point2::new(3.0, 4.0));
        assert_eq!(
            t.position_at(SimTime::from_secs_f64(99.0)),
            Point2::new(3.0, 4.0)
        );
        assert_eq!(t.speed_at(SimTime::ZERO), 0.0);
        assert!(t.heading_at(SimTime::ZERO).is_none());
        assert!(t.duration().is_zero());
    }

    #[test]
    fn heading_follows_segments() {
        let t = square_path();
        // First segment goes east (+x) = 90°.
        let h = t.heading_at(SimTime::from_secs_f64(1.0)).unwrap();
        assert!((h - 90.0).abs() < 1e-6);
        // Second segment goes north (+y) = 0°.
        let h = t.heading_at(SimTime::from_secs_f64(6.0)).unwrap();
        assert!(!(1.0..=359.0).contains(&h));
    }

    proptest! {
        /// Position along the path is always within the waypoint bounding
        /// box, and consecutive samples move at most speed * dt.
        #[test]
        fn motion_is_continuous(seconds in 0.0f64..30.0) {
            let t = square_path();
            let p1 = t.position_at(SimTime::from_secs_f64(seconds));
            let p2 = t.position_at(SimTime::from_secs_f64(seconds + 0.1));
            prop_assert!(p1.distance(&p2) <= 2.0 * 0.1 + 1e-9);
            prop_assert!((-1e-9..=10.0 + 1e-9).contains(&p1.x));
            prop_assert!((-1e-9..=10.0 + 1e-9).contains(&p1.y));
        }
    }
}
