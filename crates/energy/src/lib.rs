//! Energy models and the EnTracked power-aware tracking strategy
//! (paper §3.3, Fig. 7).
//!
//! The paper validates PerPos by reimplementing key parts of EnTracked
//! (Kjærgaard et al., MobiSys 2009) purely through the graph
//! abstractions:
//!
//! * a **Power Strategy** Component Feature attached to the device-side
//!   sensor provides "methods for controlling the operation mode of the
//!   updating scheme" — [`PowerStrategyFeature`],
//! * an **EnTracked** Channel Feature "continuously monitors the output
//!   of the Interpreter component and calls the appropriate methods on
//!   the Power Strategy feature" based on "threshold levels for the
//!   maximum distance between two consecutive position updates" —
//!   [`EnTrackedFeature`],
//! * a device [`PowerModel`] with published smartphone-class constants
//!   and an [`EnergyMeter`] integrating consumption over simulated time
//!   substitute for the phone measurements of the original paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod power;
mod strategy;

pub use power::{EnergyMeter, PowerModel};
pub use strategy::{EnTrackedFeature, PowerStrategyFeature};
