//! The Likelihood Channel Feature of the paper's Fig. 5.
//!
//! The feature's `apply(dataTree)` walks every NMEA sentence in the data
//! tree behind each channel output, collects the HDOP values the
//! [`HdopFeature`](perpos_sensors::HdopFeature) attached, and maintains a
//! sliding window. `getLikelihood(particle)` — here
//! [`LikelihoodHandle::likelihood`] — turns a particle-to-measurement
//! distance into a probability using a Gaussian whose deviation follows
//! the recent HDOP level.

use parking_lot::RwLock;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos_core::component::MethodSpec;
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::*;

/// Metres of 1-sigma error per unit of HDOP (user-equivalent range
/// error).
const UERE_M: f64 = 5.0;

/// How many HDOP observations the window keeps.
const WINDOW: usize = 10;

#[derive(Debug, Default)]
struct State {
    hdops: VecDeque<f64>,
    applies: u64,
}

impl State {
    fn sigma_m(&self) -> f64 {
        if self.hdops.is_empty() {
            return 15.0; // conservative prior before any observation
        }
        let mean = self.hdops.iter().sum::<f64>() / self.hdops.len() as f64;
        (mean * UERE_M).clamp(2.0, 60.0)
    }
}

/// A cloneable handle to the likelihood state, handed to the particle
/// filter — the Rust equivalent of the paper's
/// `inputChannel.getFeature(position, Likelihood.class)`.
#[derive(Debug, Clone, Default)]
pub struct LikelihoodHandle {
    state: Arc<RwLock<State>>,
}

impl LikelihoodHandle {
    /// The current 1-sigma measurement deviation in metres, derived from
    /// the HDOP window.
    pub fn sigma_m(&self) -> f64 {
        self.state.read().sigma_m()
    }

    /// The likelihood of a particle at `distance_m` from the measured
    /// position (unnormalized Gaussian).
    pub fn likelihood(&self, distance_m: f64) -> f64 {
        let sigma = self.sigma_m();
        (-0.5 * (distance_m / sigma).powi(2)).exp().max(1e-12)
    }

    /// Number of `apply` calls observed (diagnostics).
    pub fn applies(&self) -> u64 {
        self.state.read().applies
    }
}

/// The Likelihood Channel Feature (Fig. 5, artifact 2).
///
/// Declares a dependency on the `HDOP` Component Feature, exactly as the
/// paper's version "specifies that it depends on a Processing Component
/// that provides the Component Feature which can access \[HDOP\]
/// information". Reflective methods: `getSigma() -> float`,
/// `getLikelihood(distance: float) -> float`.
#[derive(Debug, Clone, Default)]
pub struct LikelihoodFeature {
    state: Arc<RwLock<State>>,
}

impl LikelihoodFeature {
    /// The feature name.
    pub const NAME: &'static str = "Likelihood";

    /// Creates the feature.
    pub fn new() -> Self {
        LikelihoodFeature::default()
    }

    /// A handle sharing this feature's state; give it to the particle
    /// filter before attaching the feature to the channel.
    pub fn handle(&self) -> LikelihoodHandle {
        LikelihoodHandle {
            state: Arc::clone(&self.state),
        }
    }
}

impl ChannelFeature for LikelihoodFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
            .requiring("HDOP")
            .method(MethodSpec::new("getSigma", "() -> float"))
            .method(MethodSpec::new(
                "getLikelihood",
                "(distance_m: float) -> float",
            ))
    }

    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        let mut state = self.state.write();
        state.applies += 1;
        // "The method implementation collects the HDOP values from the
        // data tree" (Fig. 5): the HDOP Component Feature attached them
        // to the NMEA sentence items.
        for node in tree.items_of_kind(&kinds::NMEA_SENTENCE) {
            if let Some(h) = node.item.attr("hdop").and_then(Value::as_f64) {
                state.hdops.push_back(h);
                if state.hdops.len() > WINDOW {
                    state.hdops.pop_front();
                }
            }
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "getSigma" => Ok(Value::Float(self.state.read().sigma_m())),
            "getLikelihood" => {
                let d = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float (distance in metres)".into(),
                    }
                })?;
                Ok(Value::Float(self.handle().likelihood(d)))
            }
            other => Err(CoreError::NoSuchMethod {
                target: Self::NAME.into(),
                method: other.into(),
            }),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::channel::{ChannelId, DataNode};
    use perpos_core::graph::ProcessingGraph;

    fn tree_with_hdops(hdops: &[f64]) -> (DataTree, ProcessingGraph) {
        let mut graph = ProcessingGraph::new();
        let node = graph.add(Box::new(perpos_core::component::FnSource::new(
            "gps",
            kinds::RAW_STRING,
            |_| None,
        )));
        let children: Vec<DataNode> = hdops
            .iter()
            .enumerate()
            .map(|(i, h)| DataNode {
                component: node,
                component_name: "Parser".into(),
                item: DataItem::new(kinds::NMEA_SENTENCE, SimTime::ZERO, Value::Null)
                    .with_attr("hdop", Value::Float(*h)),
                logical: i as u64 + 1,
                range: None,
                children: vec![],
            })
            .collect();
        let root = DataNode {
            component: node,
            component_name: "Interpreter".into(),
            item: DataItem::new(kinds::POSITION_WGS84, SimTime::ZERO, Value::Null),
            logical: 1,
            range: Some((1, hdops.len() as u64)),
            children,
        };
        (
            DataTree {
                channel: ChannelId::of_head(node),
                root,
            },
            graph,
        )
    }

    #[test]
    fn collects_hdops_from_tree() {
        let (tree, mut graph) = tree_with_hdops(&[1.0, 2.0, 3.0]);
        let mut f = LikelihoodFeature::new();
        let handle = f.handle();
        let members = [];
        let mut host = ChannelHost::for_test(&mut graph, &members);
        f.apply(&tree, &mut host).unwrap();
        // Mean HDOP 2.0 -> sigma 10.0 m.
        assert!((handle.sigma_m() - 10.0).abs() < 1e-9);
        assert_eq!(handle.applies(), 1);
    }

    #[test]
    fn window_is_bounded() {
        let mut f = LikelihoodFeature::new();
        let handle = f.handle();
        for _ in 0..5 {
            let (tree, mut graph) = tree_with_hdops(&[4.0, 4.0, 4.0]);
            let members = [];
            let mut host = ChannelHost::for_test(&mut graph, &members);
            f.apply(&tree, &mut host).unwrap();
        }
        assert_eq!(f.state.read().hdops.len(), WINDOW);
        assert!((handle.sigma_m() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn likelihood_decreases_with_distance() {
        let handle = LikelihoodFeature::new().handle();
        let near = handle.likelihood(1.0);
        let far = handle.likelihood(100.0);
        assert!(near > far);
        assert!(near <= 1.0);
        assert!(far >= 1e-12);
    }

    #[test]
    fn prior_sigma_without_observations() {
        let handle = LikelihoodFeature::new().handle();
        assert_eq!(handle.sigma_m(), 15.0);
    }

    #[test]
    fn reflective_surface() {
        let mut f = LikelihoodFeature::new();
        assert!(matches!(
            f.invoke("getSigma", &[]).unwrap(),
            Value::Float(_)
        ));
        let l = f
            .invoke("getLikelihood", &[Value::Float(0.0)])
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((l - 1.0).abs() < 1e-9);
        assert!(f.invoke("getLikelihood", &[]).is_err());
        assert!(f.invoke("nope", &[]).is_err());
        assert_eq!(f.descriptor().requires, vec!["HDOP".to_string()]);
    }
}
