//! End-to-end test of the paper's §3.2 emulator workflow: record a live
//! sensor, replay the trace through an emulator that "takes the place of
//! the sensors", and verify the downstream pipeline behaves identically.

#![allow(clippy::unwrap_used)]
use perpos::prelude::*;

#[test]
fn recorded_gps_replays_identically() {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let walk = Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(50.0, 0.0)], 1.4);

    // --- Live run, recording the raw sensor output. ---
    let mut live = Middleware::new();
    let gps = live.add_component(GpsSimulator::new("GPS", frame, walk).with_seed(5));
    let recorder = perpos::sensors::TraceRecorderFeature::new();
    let handle = recorder.handle();
    live.attach_feature(gps, recorder).unwrap();
    let parser = live.add_component(Parser::new());
    let interpreter = live.add_component(Interpreter::new());
    let app = live.application_sink();
    live.connect(gps, parser, 0).unwrap();
    live.connect(parser, interpreter, 0).unwrap();
    live.connect(interpreter, app, 0).unwrap();
    let live_provider = live
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    live.run_for(SimDuration::from_secs(40), SimDuration::from_secs(1))
        .unwrap();
    let live_positions: Vec<String> = live_provider
        .history()
        .iter()
        .map(|i| i.payload.to_string())
        .collect();
    let trace = handle.trace();
    assert!(!trace.is_empty());

    // --- Replay through a file, emulator in place of the sensor. ---
    let dir = std::env::temp_dir().join("perpos-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gps-trace.json");
    trace.save_to_file(&path).unwrap();

    let mut replay = Middleware::new();
    let emulator = replay.add_component(EmulatorSource::from_file("GPS-emulator", &path).unwrap());
    let parser2 = replay.add_component(Parser::new());
    let interpreter2 = replay.add_component(Interpreter::new());
    let app2 = replay.application_sink();
    replay.connect(emulator, parser2, 0).unwrap();
    replay.connect(parser2, interpreter2, 0).unwrap();
    replay.connect(interpreter2, app2, 0).unwrap();
    let replay_provider = replay
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    replay
        .run_for(SimDuration::from_secs(40), SimDuration::from_secs(1))
        .unwrap();
    let replay_positions: Vec<String> = replay_provider
        .history()
        .iter()
        .map(|i| i.payload.to_string())
        .collect();

    assert_eq!(
        live_positions, replay_positions,
        "replayed pipeline must produce the exact same positions"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn emulator_supports_downstream_adaptations() {
    // Record a bad-sky run, then test a filter threshold offline against
    // the recording — the authoring workflow emulators enable.
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut live = Middleware::new();
    let gps = live.add_component(
        GpsSimulator::new("GPS", frame, walk)
            .with_seed(9)
            .with_environment(GpsEnvironment {
                mean_visible_sats: 4.5,
                sat_stddev: 1.5,
                base_noise_m: 8.0,
                dropout_prob: 0.0,
            }),
    );
    let recorder = perpos::sensors::TraceRecorderFeature::new();
    let handle = recorder.handle();
    live.attach_feature(gps, recorder).unwrap();
    let sink = live.application_sink();
    live.connect(gps, sink, 0).unwrap();
    live.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    let trace = handle.trace();

    // Offline: emulator -> parser(+sats feature) -> filter -> interpreter.
    let mut offline = Middleware::new();
    let emu = offline.add_component(EmulatorSource::new("emu", trace));
    let parser = offline.add_component(Parser::new());
    offline
        .attach_feature(parser, NumberOfSatellitesFeature::new())
        .unwrap();
    let filter = offline.add_component(SatelliteFilter::new(5));
    let interpreter = offline.add_component(Interpreter::new());
    let app = offline.application_sink();
    offline.connect(emu, parser, 0).unwrap();
    offline.connect(parser, filter, 0).unwrap();
    offline.connect(filter, interpreter, 0).unwrap();
    offline.connect(interpreter, app, 0).unwrap();
    offline
        .run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    let dropped = offline.invoke(filter, "filteredCount", &[]).unwrap();
    assert!(
        matches!(dropped, Value::Int(n) if n > 0),
        "offline filter evaluation must exercise the filter: {dropped:?}"
    );
}
