use bytes::{Buf, BytesMut};

/// Incremental re-framer from raw bytes to complete NMEA sentences.
///
/// A serial GPS delivers bytes in arbitrary chunks; the PerPos GPS sensor
/// component feeds those chunks in with [`SentenceSplitter::push`] and
/// drains complete `$...\n`-terminated lines with
/// [`SentenceSplitter::next_sentence`]. Garbage before the first `$` of a
/// line (noise, partial power-up output) is discarded, mirroring how real
/// receivers resynchronize.
///
/// ```
/// use perpos_nmea::SentenceSplitter;
/// let mut s = SentenceSplitter::new();
/// s.push(b"noise$GPGGA,1");
/// assert_eq!(s.next_sentence(), None); // incomplete
/// s.push(b"23*00\r\n$GPR");
/// assert_eq!(s.next_sentence().as_deref(), Some("$GPGGA,123*00"));
/// assert_eq!(s.next_sentence(), None);
/// ```
#[derive(Debug, Default)]
pub struct SentenceSplitter {
    buf: BytesMut,
}

impl SentenceSplitter {
    /// Creates an empty splitter.
    pub fn new() -> Self {
        SentenceSplitter::default()
    }

    /// Appends a chunk of raw bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered (not yet framed) bytes.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete sentence, without the trailing line
    /// terminator, or `None` when no complete line is buffered.
    ///
    /// Non-UTF-8 lines and lines not containing a `$` are silently dropped,
    /// matching receiver resynchronization behaviour.
    pub fn next_sentence(&mut self) -> Option<String> {
        loop {
            let newline = self.buf.iter().position(|&b| b == b'\n')?;
            let mut line: &[u8] = &self.buf[..newline];
            // Resynchronize at the byte level: drop everything before the
            // first '$' so binary noise ahead of a sentence cannot poison
            // the UTF-8 check of the sentence itself.
            if let Some(dollar) = line.iter().position(|&b| b == b'$') {
                line = &line[dollar..];
            } else {
                line = &[];
            }
            let line: Vec<u8> = line.to_vec();
            self.buf.advance(newline + 1);
            if line.is_empty() {
                continue;
            }
            let Ok(text) = String::from_utf8(line) else {
                continue;
            };
            let trimmed = text.trim_end_matches('\r');
            if !trimmed.is_empty() {
                return Some(trimmed.to_string());
            }
        }
    }

    /// Drains all complete sentences currently buffered.
    pub fn drain(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(s) = self.next_sentence() {
            out.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_multiple_lines() {
        let mut s = SentenceSplitter::new();
        s.push(b"$A,1*00\r\n$B,2*00\r\n");
        assert_eq!(s.drain(), vec!["$A,1*00", "$B,2*00"]);
    }

    #[test]
    fn discards_leading_garbage() {
        let mut s = SentenceSplitter::new();
        s.push(b"\xff\xfe$A*00\n");
        assert_eq!(s.next_sentence().as_deref(), Some("$A*00"));
    }

    #[test]
    fn drops_lines_without_dollar() {
        let mut s = SentenceSplitter::new();
        s.push(b"hello\n$A*00\n");
        assert_eq!(s.next_sentence().as_deref(), Some("$A*00"));
        assert_eq!(s.next_sentence(), None);
    }

    #[test]
    fn drops_invalid_utf8_lines() {
        let mut s = SentenceSplitter::new();
        s.push(b"$A\xff\xff\n$B*00\n");
        assert_eq!(s.next_sentence().as_deref(), Some("$B*00"));
    }

    #[test]
    fn handles_byte_at_a_time_delivery() {
        let mut s = SentenceSplitter::new();
        for b in b"$GPGGA,1,2*33\r\n" {
            s.push(&[*b]);
        }
        assert_eq!(s.next_sentence().as_deref(), Some("$GPGGA,1,2*33"));
    }

    #[test]
    fn empty_line_is_skipped() {
        let mut s = SentenceSplitter::new();
        s.push(b"\r\n\r\n$X*00\n");
        assert_eq!(s.next_sentence().as_deref(), Some("$X*00"));
    }

    proptest! {
        /// Arbitrary binary input never panics the splitter and every
        /// produced sentence starts with '$'.
        #[test]
        fn arbitrary_bytes_never_panic(chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 0..10
        )) {
            let mut s = SentenceSplitter::new();
            for c in &chunks {
                s.push(c);
            }
            for sentence in s.drain() {
                prop_assert!(sentence.starts_with('$'));
            }
        }

        /// Whatever the chunk boundaries, the reassembled sentences match.
        #[test]
        fn chunking_is_transparent(cut in 1usize..30) {
            let stream = b"$GPGGA,A*11\r\n$GPRMC,B*22\r\n$GPGSV,C*33\r\n";
            let mut s = SentenceSplitter::new();
            for chunk in stream.chunks(cut) {
                s.push(chunk);
            }
            prop_assert_eq!(
                s.drain(),
                vec!["$GPGGA,A*11".to_string(), "$GPRMC,B*22".to_string(), "$GPGSV,C*33".to_string()]
            );
        }
    }
}
