//! Block-ingest equivalence: [`Middleware::ingest_batch`] must be a
//! *transport*, not a semantic: feeding N pre-lexed lines through it is
//! observationally byte-identical to an N-step run whose source emits
//! the same lines from `on_tick` — trees, history, channel counters,
//! health, clocks — including with seeded panics and quarantines firing
//! mid-drain (the batch path hoists its panic fence around the whole
//! per-line drain; attribution and fault policy must come out exactly
//! as the per-unit fence produces them).

#![allow(clippy::unwrap_used)]
use std::any::Any;
use std::sync::Arc;

use perpos::core::channel::{ChannelFeature, ChannelHost, ChannelId, DataTree};
use perpos::prelude::*;

/// Records the rendered form of every tree it observes.
#[derive(Default)]
struct TreeLog(Vec<String>);

impl TreeLog {
    const NAME: &'static str = "TreeLog";
}

impl ChannelFeature for TreeLog {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
    }
    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.0.push(tree.render());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn trace_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,{i:05}"))
        .collect()
}

/// src -> upper -> tail -> app, optionally with a panic injector
/// (dropped per item) on `upper` and an error injector (quarantining)
/// on `tail`.
fn build(lines: Arc<Vec<String>>, scripted: bool, faulty: bool) -> (Middleware, NodeId, ChannelId) {
    let mut mw = Middleware::new();
    let mut i = 0usize;
    let src = mw.add_component(FnSource::new("trace", kinds::RAW_STRING, move |_| {
        if !scripted {
            return None;
        }
        let line = lines.get(i)?;
        i += 1;
        Some(Value::Text(line.clone()))
    }));
    let upper = mw.add_component(FnProcessor::new(
        "upper",
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        |item| {
            item.payload
                .as_text()
                .map(|t| Value::Text(t.to_ascii_uppercase()).into())
        },
    ));
    let tail = mw.add_component(FnRelay::new(
        "tail",
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
    ));
    let app = mw.application_sink();
    mw.connect(src, upper, 0).unwrap();
    mw.connect(upper, tail, 0).unwrap();
    let port = mw.connect_to_sink(tail, app).unwrap();
    let channel = mw.channel_into(app, port).unwrap();
    mw.attach_channel_feature(channel, TreeLog::default()).unwrap();
    mw.subscribe_channel_history(channel, 32).unwrap();
    if faulty {
        mw.attach_feature(
            upper,
            FaultInjector::with_seed(42)
                .with_panic_rate(0.2)
                .with_error_rate(0.1),
        )
        .unwrap();
        mw.set_fault_policy(upper, FaultPolicy::DropItem).unwrap();
        mw.attach_feature(tail, FaultInjector::with_seed(7).with_panic_rate(0.25))
            .unwrap();
        mw.set_fault_policy(tail, FaultPolicy::quarantine_default())
            .unwrap();
    }
    (mw, src, channel)
}

fn observe(
    mw: &mut Middleware,
    channel: ChannelId,
) -> (Vec<String>, Vec<String>, Value, Vec<String>, u64, SimTime) {
    let trees = mw
        .with_channel_feature_mut(channel, TreeLog::NAME, |log: &mut TreeLog| log.0.clone())
        .unwrap();
    let history = mw
        .channel_history(channel)
        .unwrap()
        .iter()
        .map(DataTree::render)
        .collect();
    let stats = mw.channel_stats(channel).unwrap();
    let health = mw
        .structure()
        .iter()
        .map(|n| format!("{}: {:?}", n.descriptor.name, mw.node_health(n.id)))
        .collect();
    (
        trees,
        history,
        Value::from(format!("{stats:?}")),
        health,
        mw.steps_run(),
        mw.now(),
    )
}

fn assert_ingest_equals_tick(faulty: bool, arena: bool) {
    let lines = Arc::new(trace_lines(150));
    let tick = SimDuration::from_micros(50);

    let (mut ticked, _, tick_chan) = build(Arc::clone(&lines), true, faulty);
    ticked.set_arena_enabled(arena);
    ticked.step_batch(lines.len() as u64, tick).unwrap();

    let (mut batched, src, batch_chan) = build(Arc::clone(&lines), false, faulty);
    batched.set_arena_enabled(arena);
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let ingested = batched.ingest_batch(src, kinds::RAW_STRING, &refs, tick).unwrap();
    assert_eq!(ingested, lines.len() as u64);

    let tick_view = observe(&mut ticked, tick_chan);
    let batch_view = observe(&mut batched, batch_chan);
    assert!(!tick_view.0.is_empty(), "the pipeline produced trees");
    assert_eq!(
        tick_view, batch_view,
        "ingest_batch diverged from the tick loop (faulty={faulty}, arena={arena})"
    );
}

#[test]
fn block_ingest_equals_scripted_tick_loop() {
    assert_ingest_equals_tick(false, true);
}

#[test]
fn block_ingest_equals_scripted_tick_loop_without_arena() {
    assert_ingest_equals_tick(false, false);
}

#[test]
fn block_ingest_equivalence_holds_under_injected_faults() {
    assert_ingest_equals_tick(true, true);
    assert_ingest_equals_tick(true, false);
}

#[test]
fn faulty_ingest_actually_exercised_the_fault_paths() {
    // Keep the equivalence above honest: the seeded injectors must have
    // fired during the batched run — at least one dropped panic on
    // `upper` and at least one quarantine on `tail`.
    let lines = Arc::new(trace_lines(150));
    let (mut mw, src, _) = build(Arc::clone(&lines), false, true);
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    mw.ingest_batch(src, kinds::RAW_STRING, &refs, SimDuration::from_micros(50))
        .unwrap();
    let faults: u64 = mw
        .structure()
        .iter()
        .map(|n| mw.node_health(n.id).faults)
        .sum();
    assert!(faults >= 2, "injectors never fired (faults={faults})");
}
