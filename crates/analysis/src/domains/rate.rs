//! Rate/cost propagation (P013, P014).
//!
//! The fact on a node's output is an interval bounding the sustained
//! item rate it produces, in items/second: `Some((lo, hi))`, or `None`
//! when nothing upstream declares a rate. Sources declare
//! [`TransferSpec::emit_rate_hz`]; downstream, a node's inflow is the
//! *sum* over its input edges (fan-in accumulates queue pressure), an
//! edge from an undeclared producer contributes `[0, ∞)`, and the node's
//! own [`TransferSpec::rate_factor`] (fan-out > 1, downsampling < 1)
//! scales the inflow into the outflow.
//!
//! [`diagnostics`] reports P013 when a node's *guaranteed* inflow (the
//! lower bound) exceeds its declared [`TransferSpec::max_rate_hz`]: the
//! input queue then grows without bound no matter how the runtime
//! behaves — the static form of unbounded queue growth. The same excess
//! also predicts when the channel layer's bounded per-level buffer
//! ([`LEVEL_BUFFER_CAP`]) will start evicting entries (P014), turning
//! the unbounded-queue abstraction into concrete silent data loss.

use crate::dataflow::{Domain, FlowGraph};
use crate::diagnostic::{Code, Diagnostic, Report, Severity};

use perpos_core::channel::LEVEL_BUFFER_CAP;
#[allow(unused_imports)] // doc links
use perpos_core::component::TransferSpec;

/// Sums the rate intervals arriving over a node's wired input edges;
/// `None` when no input carries any rate information.
fn inflow(inputs: &[(usize, &Option<(f64, f64)>)]) -> Option<(f64, f64)> {
    if inputs.is_empty() {
        return None;
    }
    let mut lo = 0.0;
    let mut hi = 0.0;
    let mut known = false;
    for (_, fact) in inputs {
        match fact {
            Some((l, h)) => {
                lo += l;
                hi += h;
                known = true;
            }
            None => hi = f64::INFINITY,
        }
    }
    known.then_some((lo, hi))
}

/// The item-rate domain; facts are optional `(lo, hi)` items/second
/// intervals.
pub struct RateDomain;

impl Domain for RateDomain {
    type Fact = Option<(f64, f64)>;

    fn bottom(&self) -> Self::Fact {
        None
    }

    fn transfer(
        &self,
        graph: &FlowGraph,
        node: usize,
        inputs: &[(usize, &Self::Fact)],
    ) -> Self::Fact {
        let t = &graph.nodes[node].transfer;
        if let Some(rate) = t.emit_rate_hz {
            return Some((rate, rate));
        }
        inflow(inputs).map(|(lo, hi)| {
            let factor = t.rate_factor.unwrap_or(1.0);
            (lo * factor, hi * factor)
        })
    }

    fn widen(&self, _previous: &Self::Fact, next: &Self::Fact) -> Self::Fact {
        next.map(|_| (0.0, f64::INFINITY))
    }
}

/// Seconds of sustained run time until the channel layer's per-level
/// buffer first evicts, given a guaranteed inflow `lo` against a
/// declared `capacity`; `None` while the buffer drains at least as fast
/// as it fills.
pub(crate) fn overflow_seconds(lo: f64, capacity: f64) -> Option<f64> {
    (lo > capacity).then(|| LEVEL_BUFFER_CAP as f64 / (lo - capacity))
}

/// The predicted time-to-eviction for one node over solved rate facts
/// (see [`overflow_seconds`]); surfaced in the `--facts json` document.
pub(crate) fn node_overflow_s(
    graph: &FlowGraph,
    facts: &[Option<(f64, f64)>],
    node: usize,
) -> Option<f64> {
    let capacity = graph.nodes[node].transfer.max_rate_hz?;
    let inputs: Vec<(usize, &Option<(f64, f64)>)> = graph
        .preds(node)
        .iter()
        .map(|&e| (e, &facts[graph.edges[e].from]))
        .collect();
    let (lo, _) = inflow(&inputs)?;
    overflow_seconds(lo, capacity)
}

/// P013/P014 checks over the solved rate facts.
pub fn diagnostics(graph: &FlowGraph, facts: &[Option<(f64, f64)>], report: &mut Report) {
    for (i, n) in graph.nodes.iter().enumerate() {
        let Some(capacity) = n.transfer.max_rate_hz else {
            continue;
        };
        let inputs: Vec<(usize, &Option<(f64, f64)>)> = graph
            .preds(i)
            .iter()
            .map(|&e| (e, &facts[graph.edges[e].from]))
            .collect();
        let Some((lo, _)) = inflow(&inputs) else {
            continue;
        };
        if lo > capacity {
            report.push(
                Diagnostic::new(
                    Code::P013,
                    Severity::Warning,
                    format!(
                        "{} receives at least {lo} items/s but sustains only \
                         {capacity} items/s; its input queue grows without bound",
                        n.label
                    ),
                    vec![n.label.clone()],
                )
                .with_hint(
                    "downsample upstream (rate_factor < 1), reduce source emit rates, \
                     or raise the component's capacity",
                ),
            );
            if let Some(secs) = overflow_seconds(lo, capacity) {
                report.push(
                    Diagnostic::new(
                        Code::P014,
                        Severity::Warning,
                        format!(
                            "{} backlog grows {:.3} items/s; the channel layer's \
                             {LEVEL_BUFFER_CAP}-entry level buffer starts evicting \
                             after ~{secs:.0} s, silently dropping tree contributors",
                            n.label,
                            lo - capacity,
                        ),
                        vec![n.label.clone()],
                    )
                    .with_hint(
                        "resolve the P013 rate overload so the buffer drains as fast \
                         as it fills; runtime evictions are counted in \
                         invoke(\"channel_stats\").dropped",
                    ),
                );
            }
        }
    }
}
