//! Analysis of an instantiated processing graph via its reflective
//! structure ([`NodeInfo`] list).
//!
//! The live graph validates every *edge* as it is built, but whole-graph
//! properties — nothing dangling, everything reaching a sink, features
//! not conflicting — hold only if someone checks them. This module is
//! that check: it re-verifies type flow under the *current* feature set
//! (P001), finds dangling required inputs with role awareness (P002),
//! unsatisfied feature requirements (P003), dead components (P004),
//! cycles in hypothetical structures (P005) and feature conflicts
//! (P006). It runs on the output of `Middleware::structure()` or on a
//! simulated structure produced by [`crate::adaptation`].

use std::collections::{BTreeMap, BTreeSet};

use perpos_core::assembly::FleetSpec;
use perpos_core::component::ComponentRole;
use perpos_core::executor::ExecMode;
use perpos_core::graph::{NodeId, NodeInfo};

use crate::diagnostic::{Code, Diagnostic, Report, Severity};

/// Deployment context of a live structure, for the effect checks
/// (P017–P019). A reflected [`NodeInfo`] list records components and
/// wires but not how the graph is *run* — which executor steps it and
/// whether it is replicated into a fleet — so callers that know supply
/// it here. The default (sequential executor, no fleet) makes the
/// effect checks vacuous, matching [`analyze_structure`].
#[derive(Debug, Clone, Default)]
pub struct StructureContext {
    /// Executor mode stepping the graph (`None` = sequential).
    pub executor: Option<ExecMode>,
    /// Fleet deployment the instance belongs to (`None` = standalone).
    pub fleet: Option<FleetSpec>,
}

impl StructureContext {
    /// Context for a graph stepped by `executor`, standalone.
    pub fn for_executor(executor: ExecMode) -> StructureContext {
        StructureContext {
            executor: Some(executor),
            fleet: None,
        }
    }

    /// Declares the fleet deployment (builder style).
    pub fn with_fleet(mut self, fleet: FleetSpec) -> StructureContext {
        self.fleet = Some(fleet);
        self
    }
}

/// Analyzes a live (or simulated) process structure with no deployment
/// context: the effect checks (P017–P019) assume the default sequential
/// executor and no fleet. Use [`analyze_structure_in`] when the
/// executor mode or fleet membership is known.
pub fn analyze_structure(nodes: &[NodeInfo]) -> Report {
    analyze_structure_in(nodes, &StructureContext::default())
}

/// Analyzes a live (or simulated) process structure in a known
/// deployment context, so the effect checks see the executor actually
/// stepping the graph and the fleet it runs in.
pub fn analyze_structure_in(nodes: &[NodeInfo], ctx: &StructureContext) -> Report {
    let mut report = Report::new();
    let by_id: BTreeMap<NodeId, &NodeInfo> = nodes.iter().map(|n| (n.id, n)).collect();

    check_type_flow(nodes, &by_id, &mut report);
    check_dangling_inputs(nodes, &mut report);
    check_feature_requirements(nodes, &by_id, &mut report);
    check_cycles(nodes, &by_id, &mut report);
    check_dead_components(nodes, &by_id, &mut report);
    check_feature_conflicts(nodes, &mut report);

    // Semantic dataflow analyses (P010-P014) over the same structure.
    let mut flow = crate::dataflow::FlowGraph::from_structure(nodes);
    flow.executor = ctx.executor.map(|m| m.as_str().to_string());
    flow.fleet = ctx.fleet.clone();
    let (_, dataflow_report) = crate::domains::analyze_dataflow(&flow);
    report.merge(dataflow_report);

    // Effect & determinism checks (P017-P019) against the declared
    // deployment context.
    crate::effects::effect_diagnostics(&flow, &mut report);

    report
}

/// A node's display name for diagnostic paths: `name (node#N)`.
fn label(n: &NodeInfo) -> String {
    format!("{} ({})", n.descriptor.name, n.id)
}

/// Longest-path layering of a reflected structure: level 0 holds the
/// nodes with no wired producers, every other node sits one past its
/// deepest producer. This is the same layering
/// `ProcessingGraph::topo_levels` computes for the live graph (and the
/// level-parallel executor schedules by), recomputed here so simulated
/// structures from [`crate::adaptation`] can be layered without
/// instantiating them. Nodes stuck on a cycle (flagged P005) are placed
/// at level 0 to keep the layering total.
pub fn structure_levels(nodes: &[NodeInfo]) -> Vec<Vec<NodeId>> {
    let ids: BTreeSet<NodeId> = nodes.iter().map(|n| n.id).collect();
    let mut level: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut pending: Vec<&NodeInfo> = nodes.iter().collect();
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|n| {
            let mut lvl = 0usize;
            for producer in n.inputs.iter().flatten() {
                if !ids.contains(producer) {
                    continue;
                }
                match level.get(producer) {
                    Some(l) => lvl = lvl.max(l + 1),
                    None => return true, // producer not layered yet
                }
            }
            level.insert(n.id, lvl);
            false
        });
        if pending.len() == before {
            for n in pending.drain(..) {
                level.insert(n.id, 0);
            }
        }
    }
    let depth = level.values().copied().max().map_or(0, |m| m + 1);
    let mut levels = vec![Vec::new(); depth];
    for (id, l) in level {
        levels[l].push(id);
    }
    levels
}

/// The kinds a node can currently produce: declared output plus
/// everything attached features add.
fn effective_provides(n: &NodeInfo) -> Vec<String> {
    let mut kinds: Vec<String> = n
        .descriptor
        .output
        .as_ref()
        .map(|o| o.provides.iter().map(|k| k.as_str().to_string()).collect())
        .unwrap_or_default();
    for f in &n.features {
        for k in &f.adds_kinds {
            let s = k.as_str().to_string();
            if !kinds.contains(&s) {
                kinds.push(s);
            }
        }
    }
    kinds
}

/// P001: every wired edge must still type-check under the current
/// feature set (detaching a feature can remove the kind an edge relied
/// on; connect-time validation cannot see that happen later).
fn check_type_flow(nodes: &[NodeInfo], by_id: &BTreeMap<NodeId, &NodeInfo>, report: &mut Report) {
    for n in nodes {
        for (port, producer) in n.inputs.iter().enumerate() {
            let Some(pid) = producer else { continue };
            let Some(p) = by_id.get(pid) else { continue };
            let Some(spec) = n.descriptor.inputs.get(port) else {
                report.push(
                    Diagnostic::new(
                        Code::P007,
                        Severity::Error,
                        format!(
                            "wire into port {port} of {} but only {} port(s) are declared",
                            label(n),
                            n.descriptor.inputs.len()
                        ),
                        vec![label(p), format!("{}(port {port})", label(n))],
                    )
                    .with_hint("disconnect the out-of-range wire"),
                );
                continue;
            };
            if spec.accepts.is_empty() {
                continue;
            }
            let provides = effective_provides(p);
            let accepts: Vec<String> = spec
                .accepts
                .iter()
                .map(|k| k.as_str().to_string())
                .collect();
            if !provides.iter().any(|k| accepts.contains(k)) {
                report.push(
                    Diagnostic::new(
                        Code::P001,
                        Severity::Error,
                        format!(
                            "{} effectively provides [{}] but port {:?} accepts [{}]",
                            label(p),
                            provides.join(", "),
                            spec.name,
                            accepts.join(", ")
                        ),
                        vec![label(p), format!("{}(port {port})", label(n))],
                    )
                    .with_hint(
                        "re-attach the feature providing the missing kind, or rewire the port",
                    ),
                );
            }
        }
    }
}

/// P002: unconnected input ports. Processors and merges need every
/// declared port (error); a sink's many any-kind ports are optional, but
/// a sink with no input at all receives nothing (warning).
fn check_dangling_inputs(nodes: &[NodeInfo], report: &mut Report) {
    for n in nodes {
        match n.descriptor.role {
            ComponentRole::Source => {}
            ComponentRole::Sink => {
                if !n.inputs.iter().any(Option::is_some) {
                    report.push(
                        Diagnostic::new(
                            Code::P002,
                            Severity::Warning,
                            format!("sink {} has no connected input", label(n)),
                            vec![label(n)],
                        )
                        .with_hint("connect the end of the positioning process to this sink"),
                    );
                }
            }
            ComponentRole::Processor | ComponentRole::Merge => {
                for (port, producer) in n.inputs.iter().enumerate() {
                    if producer.is_none() {
                        let name = n
                            .descriptor
                            .inputs
                            .get(port)
                            .map(|s| s.name.clone())
                            .unwrap_or_default();
                        report.push(
                            Diagnostic::new(
                                Code::P002,
                                Severity::Error,
                                format!(
                                    "input port {name:?} (index {port}) of {} is not connected",
                                    label(n)
                                ),
                                vec![format!("{}(port {port})", label(n))],
                            )
                            .with_hint("connect a producer or remove the component"),
                        );
                    }
                }
            }
        }
    }
}

/// P003: a port's `required_features` must all be attached to the wired
/// producer (detaching a feature after connecting breaks this silently).
fn check_feature_requirements(
    nodes: &[NodeInfo],
    by_id: &BTreeMap<NodeId, &NodeInfo>,
    report: &mut Report,
) {
    for n in nodes {
        for (port, producer) in n.inputs.iter().enumerate() {
            let Some(pid) = producer else { continue };
            let Some(p) = by_id.get(pid) else { continue };
            let Some(spec) = n.descriptor.inputs.get(port) else {
                continue;
            };
            let attached: BTreeSet<&str> = p.features.iter().map(|f| f.name.as_str()).collect();
            for feature in &spec.required_features {
                if !attached.contains(feature.as_str()) {
                    report.push(
                        Diagnostic::new(
                            Code::P003,
                            Severity::Error,
                            format!(
                                "port {:?} of {} requires feature {:?}, which is not \
                                 attached to producer {}",
                                spec.name,
                                label(n),
                                feature,
                                label(p)
                            ),
                            vec![label(p), format!("{}(port {port})", label(n))],
                        )
                        .with_hint(format!("attach feature {feature:?} to {}", label(p))),
                    );
                }
            }
        }
    }
}

/// P005: cycles. A live `ProcessingGraph` is acyclic by construction, so
/// this only fires on simulated structures (adaptation plans), where it
/// predicts the `CycleDetected` the real graph would raise.
fn check_cycles(nodes: &[NodeInfo], by_id: &BTreeMap<NodeId, &NodeInfo>, report: &mut Report) {
    let mut state: BTreeMap<NodeId, u8> = BTreeMap::new(); // 1 = visiting, 2 = done
    for start in nodes {
        if state.contains_key(&start.id) {
            continue;
        }
        let mut stack = vec![(start.id, 0usize)];
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            if *next == 0 {
                state.insert(id, 1);
            }
            let outs = by_id.get(&id).map(|n| n.outputs.as_slice()).unwrap_or(&[]);
            if let Some(&(succ, _)) = outs.get(*next) {
                *next += 1;
                match state.get(&succ) {
                    None => stack.push((succ, 0)),
                    Some(1) => {
                        let members: Vec<String> = stack
                            .iter()
                            .skip_while(|(n, _)| *n != succ)
                            .map(|(n, _)| by_id.get(n).map(|i| label(i)).unwrap_or_default())
                            .collect();
                        report.push(
                            Diagnostic::new(
                                Code::P005,
                                Severity::Error,
                                format!(
                                    "structure contains a cycle through {}",
                                    members.join(" -> ")
                                ),
                                members,
                            )
                            .with_hint(
                                "positioning processes are DAGs; remove one edge of the cycle",
                            ),
                        );
                    }
                    Some(_) => {}
                }
            } else {
                state.insert(id, 2);
                stack.pop();
            }
        }
    }
}

/// P004: components with no directed path to any sink.
fn check_dead_components(
    nodes: &[NodeInfo],
    by_id: &BTreeMap<NodeId, &NodeInfo>,
    report: &mut Report,
) {
    let mut alive: BTreeSet<NodeId> = nodes
        .iter()
        .filter(|n| n.descriptor.role == ComponentRole::Sink)
        .map(|n| n.id)
        .collect();
    let mut frontier: Vec<NodeId> = alive.iter().copied().collect();
    while let Some(id) = frontier.pop() {
        let Some(n) = by_id.get(&id) else { continue };
        for producer in n.inputs.iter().flatten() {
            if alive.insert(*producer) {
                frontier.push(*producer);
            }
        }
    }
    for n in nodes {
        if !alive.contains(&n.id) {
            report.push(
                Diagnostic::new(
                    Code::P004,
                    Severity::Warning,
                    format!(
                        "{} has no path to any sink; its output is never consumed",
                        label(n)
                    ),
                    vec![label(n)],
                )
                .with_hint("connect it (transitively) to a sink, or remove it"),
            );
        }
    }
}

/// P006: conflicting features on one component — two features adding the
/// same data kind (consumers cannot tell which produced an item) or
/// exposing the same reflective method name (dispatch is first-match,
/// silently shadowing the later feature).
fn check_feature_conflicts(nodes: &[NodeInfo], report: &mut Report) {
    for n in nodes {
        let mut kind_owner: BTreeMap<&str, &str> = BTreeMap::new();
        let mut method_owner: BTreeMap<&str, &str> = BTreeMap::new();
        for f in &n.features {
            for k in &f.adds_kinds {
                if let Some(first) = kind_owner.insert(k.as_str(), f.name.as_str()) {
                    report.push(
                        Diagnostic::new(
                            Code::P006,
                            Severity::Warning,
                            format!(
                                "features {:?} and {:?} on {} both add kind {:?}",
                                first,
                                f.name,
                                label(n),
                                k.as_str()
                            ),
                            vec![label(n)],
                        )
                        .with_hint("detach one of the features or change what it adds"),
                    );
                }
            }
            for m in &f.methods {
                if let Some(first) = method_owner.insert(m.name.as_str(), f.name.as_str()) {
                    report.push(
                        Diagnostic::new(
                            Code::P006,
                            Severity::Warning,
                            format!(
                                "features {:?} and {:?} on {} both expose method {:?}; \
                                 reflective dispatch will always pick {:?}",
                                first,
                                f.name,
                                label(n),
                                m.name,
                                first
                            ),
                            vec![label(n)],
                        )
                        .with_hint("rename one method or invoke the feature explicitly by name"),
                    );
                }
            }
        }
    }
}
