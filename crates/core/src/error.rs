use std::error::Error;
use std::fmt;

use crate::channel::ChannelId;
use crate::data::DataKind;
use crate::graph::NodeId;

/// Error type for all fallible PerPos middleware operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The node id does not exist in the processing graph.
    UnknownNode(NodeId),
    /// The channel id does not exist (channels are recomputed when the
    /// graph changes; stale ids become invalid).
    UnknownChannel(ChannelId),
    /// The input port index is out of range for the component.
    UnknownPort {
        /// Target node.
        node: NodeId,
        /// Offending port index.
        port: usize,
    },
    /// The input port is already connected.
    PortOccupied {
        /// Target node.
        node: NodeId,
        /// Occupied port index.
        port: usize,
    },
    /// The producing component has no output port.
    NoOutput(NodeId),
    /// A connection would violate declared port capabilities.
    IncompatibleConnection {
        /// Producing node.
        from: NodeId,
        /// Consuming node.
        to: NodeId,
        /// What the consumer's port accepts.
        accepts: Vec<DataKind>,
        /// What the producer provides.
        provides: Vec<DataKind>,
    },
    /// A required Component Feature is not attached to the upstream
    /// component (paper §2.1: input requirements include feature
    /// dependencies).
    MissingFeature {
        /// Node whose port declares the dependency.
        node: NodeId,
        /// The feature name required.
        feature: String,
    },
    /// Connecting these nodes would create a cycle; the positioning
    /// process must stay a DAG.
    CycleDetected {
        /// Producing node.
        from: NodeId,
        /// Consuming node.
        to: NodeId,
    },
    /// The reflective method does not exist on the target.
    NoSuchMethod {
        /// Target description (component/feature name).
        target: String,
        /// Requested method.
        method: String,
    },
    /// A reflective method was called with unusable arguments.
    BadArguments {
        /// Requested method.
        method: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// No feature with this name is attached to the target.
    UnknownFeatureName {
        /// Target description.
        target: String,
        /// The feature looked up.
        feature: String,
    },
    /// No location provider satisfies the criteria.
    NoMatchingProvider(String),
    /// A component implementation reported a failure.
    ComponentFailure {
        /// Component name.
        component: String,
        /// Failure description.
        reason: String,
    },
    /// A payload did not have the expected shape.
    PayloadMismatch {
        /// What was expected, e.g. `"position"`.
        expected: &'static str,
        /// What was found (value variant name).
        found: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownNode(id) => write!(f, "unknown node {id}"),
            CoreError::UnknownChannel(id) => write!(f, "unknown channel {id}"),
            CoreError::UnknownPort { node, port } => {
                write!(f, "node {node} has no input port {port}")
            }
            CoreError::PortOccupied { node, port } => {
                write!(f, "input port {port} of node {node} is already connected")
            }
            CoreError::NoOutput(id) => write!(f, "node {id} has no output port"),
            CoreError::IncompatibleConnection {
                from,
                to,
                accepts,
                provides,
            } => write!(
                f,
                "cannot connect {from} -> {to}: port accepts {accepts:?} but producer provides {provides:?}"
            ),
            CoreError::MissingFeature { node, feature } => write!(
                f,
                "node {node} requires component feature {feature:?} on its producer"
            ),
            CoreError::CycleDetected { from, to } => {
                write!(f, "connecting {from} -> {to} would create a cycle")
            }
            CoreError::NoSuchMethod { target, method } => {
                write!(f, "{target} has no method {method:?}")
            }
            CoreError::BadArguments { method, reason } => {
                write!(f, "bad arguments for {method:?}: {reason}")
            }
            CoreError::UnknownFeatureName { target, feature } => {
                write!(f, "{target} has no feature {feature:?}")
            }
            CoreError::NoMatchingProvider(c) => {
                write!(f, "no location provider matches criteria {c}")
            }
            CoreError::ComponentFailure { component, reason } => {
                write!(f, "component {component} failed: {reason}")
            }
            CoreError::PayloadMismatch { expected, found } => {
                write!(f, "expected a {expected} payload, found {found}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::kinds;
    use crate::graph::ProcessingGraph;

    #[test]
    fn every_variant_displays_nonempty() {
        let mut g = ProcessingGraph::new();
        let n = g.add(Box::new(crate::component::FnSource::new(
            "x",
            kinds::RAW_STRING,
            |_| None,
        )));
        let variants: Vec<CoreError> = vec![
            CoreError::UnknownNode(n),
            CoreError::UnknownChannel(crate::channel::ChannelId::of_head(n)),
            CoreError::UnknownPort { node: n, port: 3 },
            CoreError::PortOccupied { node: n, port: 0 },
            CoreError::NoOutput(n),
            CoreError::IncompatibleConnection {
                from: n,
                to: n,
                accepts: vec![kinds::NMEA_SENTENCE],
                provides: vec![kinds::RAW_STRING],
            },
            CoreError::MissingFeature {
                node: n,
                feature: "HDOP".into(),
            },
            CoreError::CycleDetected { from: n, to: n },
            CoreError::NoSuchMethod {
                target: "Parser".into(),
                method: "warp".into(),
            },
            CoreError::BadArguments {
                method: "set".into(),
                reason: "expected float".into(),
            },
            CoreError::UnknownFeatureName {
                target: "Parser".into(),
                feature: "Nope".into(),
            },
            CoreError::NoMatchingProvider("kinds=[]".into()),
            CoreError::ComponentFailure {
                component: "GPS".into(),
                reason: "fault".into(),
            },
            CoreError::PayloadMismatch {
                expected: "position",
                found: "int",
            },
        ];
        for v in variants {
            let text = v.to_string();
            assert!(!text.is_empty(), "{v:?}");
            // Errors behave as std errors.
            let _: &dyn std::error::Error = &v;
        }
    }
}
