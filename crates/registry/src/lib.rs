//! An OSGi-like dynamic service registry for the PerPos middleware.
//!
//! The paper realizes PerPos "on top of the OSGi service platform", mapping
//! processing components to service components and using "the dynamic
//! composition mechanisms of OSGi … for connecting the components" (§3).
//! This crate reproduces the middleware-relevant subset of that substrate:
//!
//! * services declare provided [`Capability`]s and required
//!   [`Requirement`]s (property-based matching),
//! * the [`Registry`] resolves requirements against capabilities
//!   dynamically as services come and go,
//! * resolution state changes cascade (unregistering a provider unresolves
//!   its dependents), and
//! * every lifecycle transition is published as a [`ServiceEvent`] on
//!   subscriber channels.
//!
//! `perpos-core` registers Processing Component factories here so that
//! custom components are "added to the processing graph appropriately"
//! once their declared dependencies are satisfied (paper §2.1).
//!
//! # Examples
//!
//! ```
//! use perpos_registry::{Capability, Registry, Requirement, ServiceDescriptor};
//!
//! let registry: Registry<&'static str> = Registry::new();
//! let parser = registry.register(
//!     ServiceDescriptor::new("parser")
//!         .provides(Capability::new("data.nmea"))
//!         .requires(Requirement::new("data.raw")),
//!     "parser-impl",
//! );
//! // The parser's requirement is unsatisfied until a raw source appears.
//! assert!(!registry.is_resolved(parser));
//! registry.register(
//!     ServiceDescriptor::new("gps").provides(Capability::new("data.raw")),
//!     "gps-impl",
//! );
//! assert!(registry.is_resolved(parser));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod descriptor;
mod registry;

pub use descriptor::{Capability, Requirement, ServiceDescriptor};
pub use registry::{Registry, RegistryError, ServiceEvent, ServiceId, ServiceState, Wire};
