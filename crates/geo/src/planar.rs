use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point in a planar metric frame (metres).
///
/// Used for building-local coordinates: room polygons, walls, particles.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// East/x coordinate in metres.
    pub x: f64,
    /// North/y coordinate in metres.
    pub y: f64,
}

/// A displacement between two [`Point2`]s, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// x component in metres.
    pub x: f64,
    /// y component in metres.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from metric coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(&self, other: &Point2) -> f64 {
        (*self - *other).norm()
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl Vec2 {
    /// Creates a vector from metric components.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm in metres.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product.
    pub fn dot(&self, other: &Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    pub fn cross(&self, other: &Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or the zero vector if the norm is
    /// (near) zero.
    pub fn normalized(&self) -> Vec2 {
        let n = self.norm();
        if n < 1e-12 {
            Vec2::default()
        } else {
            Vec2::new(self.x / n, self.y / n)
        }
    }

    /// A unit vector pointing along `heading_deg` degrees clockwise from
    /// north (navigation convention: 0° = +y, 90° = +x).
    pub fn from_heading_deg(heading_deg: f64) -> Vec2 {
        let r = heading_deg.to_radians();
        Vec2::new(r.sin(), r.cos())
    }

    /// Heading of this vector in degrees clockwise from north, `[0, 360)`.
    pub fn heading_deg(&self) -> f64 {
        crate::normalize_deg(self.x.atan2(self.y).to_degrees())
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    fn sub(self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    fn sub(self, v: Vec2) -> Point2 {
        Point2::new(self.x - v.x, self.y - v.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.2}, {:.2}>", self.x, self.y)
    }
}

/// A line segment between two planar points, e.g. a wall in a floor plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment2 {
    /// Start point.
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment2 {
    /// Creates a segment between `a` and `b`.
    pub fn new(a: Point2, b: Point2) -> Self {
        Segment2 { a, b }
    }

    /// Segment length in metres.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Whether this segment properly or improperly intersects `other`.
    ///
    /// Touching endpoints and collinear overlap count as intersections —
    /// the conservative choice for wall-crossing tests, where grazing a
    /// wall should still be treated as blocked.
    pub fn intersects(&self, other: &Segment2) -> bool {
        let d1 = (self.b - self.a).cross(&(other.a - self.a));
        let d2 = (self.b - self.a).cross(&(other.b - self.a));
        let d3 = (other.b - other.a).cross(&(self.a - other.a));
        let d4 = (other.b - other.a).cross(&(self.b - other.a));

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }

        let on = |p: Point2, s: &Segment2, d: f64| -> bool {
            d.abs() < 1e-12
                && p.x >= s.a.x.min(s.b.x) - 1e-12
                && p.x <= s.a.x.max(s.b.x) + 1e-12
                && p.y >= s.a.y.min(s.b.y) - 1e-12
                && p.y <= s.a.y.max(s.b.y) + 1e-12
        };
        on(other.a, self, d1)
            || on(other.b, self, d2)
            || on(self.a, other, d3)
            || on(self.b, other, d4)
    }

    /// Shortest distance from `p` to any point on the segment.
    pub fn distance_to_point(&self, p: &Point2) -> f64 {
        let ab = self.b - self.a;
        let len2 = ab.dot(&ab);
        if len2 < 1e-24 {
            return self.a.distance(p);
        }
        let t = ((*p - self.a).dot(&ab) / len2).clamp(0.0, 1.0);
        (self.a + ab * t).distance(p)
    }

    /// Point at parameter `t` in `[0, 1]` along the segment.
    pub fn lerp(&self, t: f64) -> Point2 {
        self.a + (self.b - self.a) * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_arithmetic() {
        let p = Point2::new(1.0, 2.0);
        let q = p + Vec2::new(3.0, -1.0);
        assert_eq!(q, Point2::new(4.0, 1.0));
        assert_eq!(q - p, Vec2::new(3.0, -1.0));
        assert!((p.distance(&q) - 10.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn heading_round_trip() {
        for h in [0.0, 45.0, 90.0, 135.0, 180.0, 270.0, 359.0] {
            let v = Vec2::from_heading_deg(h);
            assert!((v.heading_deg() - h).abs() < 1e-9, "heading {h}");
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn vector_normalization_and_ops() {
        let v = Vec2::new(3.0, 4.0);
        let n = v.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!((Vec2::default().normalized().norm()) < 1e-12);
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
        assert_eq!(v / 2.0, Vec2::new(1.5, 2.0));
        assert_eq!(v + v - v, v);
        assert!((v.dot(&Vec2::new(4.0, -3.0))).abs() < 1e-12);
        assert!((v.cross(&v)).abs() < 1e-12);
        let p = Point2::new(0.0, 0.0).midpoint(&Point2::new(2.0, 4.0));
        assert_eq!(p, Point2::new(1.0, 2.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
        let s2 = Segment2::new(Point2::new(0.0, 2.0), Point2::new(2.0, 0.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        let s2 = Segment2::new(Point2::new(0.0, 1.0), Point2::new(2.0, 1.0));
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn touching_endpoint_counts_as_intersection() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        let s2 = Segment2::new(Point2::new(2.0, 0.0), Point2::new(2.0, 2.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlap_intersects() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        let s2 = Segment2::new(Point2::new(1.0, 0.0), Point2::new(3.0, 0.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let s2 = Segment2::new(Point2::new(2.0, 0.0), Point2::new(3.0, 0.0));
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn distance_to_point_clamps_to_endpoints() {
        let s = Segment2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        assert!((s.distance_to_point(&Point2::new(-1.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((s.distance_to_point(&Point2::new(0.5, 2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = Segment2::new(Point2::new(1.0, 1.0), Point2::new(1.0, 1.0));
        assert!((s.distance_to_point(&Point2::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
        assert_eq!(s.length(), 0.0);
    }

    proptest! {
        #[test]
        fn intersection_is_symmetric(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0,
            cx in -10.0f64..10.0, cy in -10.0f64..10.0,
            dx in -10.0f64..10.0, dy in -10.0f64..10.0,
        ) {
            let s1 = Segment2::new(Point2::new(ax, ay), Point2::new(bx, by));
            let s2 = Segment2::new(Point2::new(cx, cy), Point2::new(dx, dy));
            prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        }

        #[test]
        fn lerp_stays_on_segment(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0,
            t in 0.0f64..1.0,
        ) {
            let s = Segment2::new(Point2::new(ax, ay), Point2::new(bx, by));
            let p = s.lerp(t);
            prop_assert!(s.distance_to_point(&p) < 1e-9);
        }
    }
}
