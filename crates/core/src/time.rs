use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds from the start of
/// the simulation.
///
/// PerPos runs on a deterministic simulation clock so that experiments and
/// tests are exactly reproducible; see the substitution notes in the
/// repository's `DESIGN.md`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds since the epoch.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero duration.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// The simulation clock driving a PerPos engine.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(500);
        let t2 = t + SimDuration::from_millis(2);
        assert_eq!(t2.as_micros(), 2_500);
        assert_eq!((t2 - t).as_micros(), 2_000);
        // Saturating subtraction.
        assert_eq!((t - t2).as_micros(), 0);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_negative_duration() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn clock_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_secs(1));
        c.advance(SimDuration::from_millis(500));
        assert!((c.now().as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "t=1.250s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}
