//! Experiment FR — fault containment and recovery. Measures positioning
//! availability (fraction of ticks on which the application can obtain a
//! fresh position) under a sweep of injected fault rates, comparing the
//! unsupervised engine (the paper's abort-on-error contract) with the
//! supervision policies and with provider failover across a redundant
//! GPS + WiFi topology.
//!
//! Faults come from [`perpos_sensors::FaultInjector`] with a fixed seed,
//! so every arm of a row sees the identical fault schedule.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_fault_recovery --release`

#![allow(clippy::unwrap_used)]
use perpos_core::prelude::*;
use perpos_core::supervision::FaultPolicy;
use perpos_geo::Wgs84;
use perpos_sensors::FaultInjector;

const TICKS: u64 = 600; // 10 minutes at 1 Hz
const SEED: u64 = 1347;
/// A position counts as "live" while younger than 2.5 ticks.
const FRESH_MS: u64 = 2500;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Arm {
    /// Default `Propagate` policy: the first fault aborts the run, as a
    /// `run_for` driver would experience it.
    Unsupervised,
    /// Faulty items are contained and dropped; flow continues.
    DropItem,
    /// Circuit breaker around the source (3 faults / 10 s, 5 s backoff).
    Quarantine,
    /// Quarantine plus a redundant WiFi pipeline behind a
    /// `FailoverProvider`.
    QuarantineFailover,
}

/// A sensor stand-in emitting one tagged WGS84 position per tick.
struct PosSource {
    name: String,
    lat: f64,
}

impl Component for PosSource {
    fn descriptor(&self) -> perpos_core::component::ComponentDescriptor {
        perpos_core::component::ComponentDescriptor::source(
            self.name.clone(),
            vec![kinds::POSITION_WGS84],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        _item: DataItem,
        _ctx: &mut perpos_core::component::ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }

    fn on_tick(&mut self, ctx: &mut perpos_core::component::ComponentCtx<'_>) -> Result<(), CoreError> {
        let coord = Wgs84::new(self.lat, 10.0, 0.0).unwrap();
        let item = DataItem::new(
            kinds::POSITION_WGS84,
            ctx.now(),
            Value::from(Position::new(coord, Some(5.0))),
        )
        .with_attr("source", Value::from(self.name.as_str()));
        ctx.emit(item);
        Ok(())
    }
}

fn quarantine_policy() -> FaultPolicy {
    FaultPolicy::Quarantine {
        max_faults: 3,
        window: SimDuration::from_secs(10),
        backoff: SimDuration::from_secs(5),
    }
}

/// Runs one arm at one fault rate; returns availability in [0, 1].
fn run(arm: Arm, fault_rate: f64) -> f64 {
    let mut mw = Middleware::new();
    let gps = mw.add_component(PosSource {
        name: "gps".into(),
        lat: 1.0,
    });
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();

    // 70% of injected faults are errors, 30% are panics — both must be
    // contained identically by the supervisor.
    let injector = FaultInjector::with_seed(SEED)
        .with_error_rate(fault_rate * 0.7)
        .with_panic_rate(fault_rate * 0.3);
    mw.attach_feature(gps, injector).unwrap();

    match arm {
        Arm::Unsupervised => {}
        Arm::DropItem => mw.set_fault_policy(gps, FaultPolicy::DropItem).unwrap(),
        Arm::Quarantine | Arm::QuarantineFailover => {
            mw.set_fault_policy(gps, quarantine_policy()).unwrap()
        }
    }

    let failover = if arm == Arm::QuarantineFailover {
        let wifi = mw.add_component(PosSource {
            name: "wifi".into(),
            lat: 2.0,
        });
        mw.connect(wifi, app, 1).unwrap();
        Some(
            mw.failover_provider(vec![
                Criteria::new().source("gps"),
                Criteria::new().source("wifi"),
            ])
            .unwrap(),
        )
    } else {
        None
    };
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();

    let fresh = SimDuration::from_millis(FRESH_MS);
    let mut live = 0u64;
    let mut dead = false;
    for _ in 0..TICKS {
        if !dead {
            match mw.step() {
                Ok(()) => {}
                Err(_) if arm == Arm::Unsupervised => {
                    // The abort-on-error contract: the driver stops; no
                    // further positions arrive for the rest of the run.
                    dead = true;
                }
                Err(e) => panic!("supervised arm must contain faults: {e}"),
            }
        }
        let now = mw.now();
        let have = match &failover {
            Some(f) => f.last_position_within(fresh, now).is_some(),
            None => provider.last_position_within(fresh, now).is_some(),
        };
        if have {
            live += 1;
        }
        mw.advance_clock(SimDuration::from_secs(1));
    }
    live as f64 / TICKS as f64
}

fn main() {
    // Injected panics are part of the experiment; keep stderr readable.
    std::panic::set_hook(Box::new(|_| {}));

    println!("=== Fault containment & recovery: availability under injected faults ===\n");
    println!(
        "(availability = fraction of {TICKS} 1 Hz ticks with a position younger than {FRESH_MS} ms; \
seed {SEED})\n"
    );
    println!(
        "{:<12} {:>14} {:>11} {:>12} {:>20}",
        "fault rate", "unsupervised", "drop_item", "quarantine", "quarantine+failover"
    );
    println!("{}", "-".repeat(74));
    for rate in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let cols = [
            run(Arm::Unsupervised, rate),
            run(Arm::DropItem, rate),
            run(Arm::Quarantine, rate),
            run(Arm::QuarantineFailover, rate),
        ];
        println!(
            "{:<12} {:>14.3} {:>11.3} {:>12.3} {:>20.3}",
            format!("{:.0}%", rate * 100.0),
            cols[0],
            cols[1],
            cols[2],
            cols[3]
        );
    }
    let _ = std::panic::take_hook();
    println!(
        "\n(expected shape — unsupervised availability collapses once the first fault kills the\n\
 run; drop_item stays near 1.0 because a fresh position survives isolated drops;\n\
 quarantine trades some availability for isolation when the breaker opens on fault\n\
 bursts; the redundant WiFi pipeline behind the failover provider restores\n\
 availability to ~1.0 regardless of the GPS fault rate)"
    );
}
