//! Offline shim for the `rand` 0.8 surface the PerPos workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fully
//! deterministic, so seeded simulations stay reproducible across runs and
//! platforms. Stream values differ from the real `rand` crate's `StdRng`
//! (ChaCha12); seeded tests in this workspace only rely on determinism,
//! not on specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's internal state word, for checkpointing: a
        /// generator rebuilt with [`StdRng::from_state`] continues the
        /// exact same stream. (The real `rand` crate gets this via
        /// serde on `StdRng`; the shim exposes the words directly.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state word previously read with
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A non-cryptographic generator seeded from system entropy-ish state
/// (mirrors `rand::thread_rng` loosely; deterministic enough for demos).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn gen_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&f), "{f}");
            let i = rng.gen_range(3u8..13);
            assert!((3..13).contains(&i), "{i}");
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n), "{n}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
