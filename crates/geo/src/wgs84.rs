use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{normalize_deg, GeoError, EARTH_RADIUS_M};

/// A global position in the World Geodetic System 1984.
///
/// This is the technology-independent position format the PerPos
/// *Interpreter* component produces (paper Fig. 1 and Fig. 4).
///
/// Invariants: latitude is within `[-90, 90]`, longitude within
/// `[-180, 180]`, and all fields are finite. Construct through
/// [`Wgs84::new`] which validates them.
///
/// ```
/// use perpos_geo::Wgs84;
/// let p = Wgs84::new(56.17, 10.19, 25.0)?;
/// assert_eq!(p.lat_deg(), 56.17);
/// # Ok::<(), perpos_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wgs84 {
    lat_deg: f64,
    lon_deg: f64,
    alt_m: f64,
}

impl Wgs84 {
    /// Creates a validated WGS-84 position.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError`] if latitude or longitude is out of range or any
    /// component is not finite.
    pub fn new(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Result<Self, GeoError> {
        if !lat_deg.is_finite() {
            return Err(GeoError::NotFinite("latitude"));
        }
        if !lon_deg.is_finite() {
            return Err(GeoError::NotFinite("longitude"));
        }
        if !alt_m.is_finite() {
            return Err(GeoError::NotFinite("altitude"));
        }
        if !(-90.0..=90.0).contains(&lat_deg) {
            return Err(GeoError::LatitudeOutOfRange(lat_deg));
        }
        if !(-180.0..=180.0).contains(&lon_deg) {
            return Err(GeoError::LongitudeOutOfRange(lon_deg));
        }
        Ok(Wgs84 {
            lat_deg,
            lon_deg,
            alt_m,
        })
    }

    /// Latitude in degrees, positive north.
    pub fn lat_deg(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees, positive east.
    pub fn lon_deg(&self) -> f64 {
        self.lon_deg
    }

    /// Altitude above the ellipsoid in metres.
    pub fn alt_m(&self) -> f64 {
        self.alt_m
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat_deg.to_radians()
    }

    /// Longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon_deg.to_radians()
    }

    /// Returns a copy with a different altitude.
    pub fn with_alt(&self, alt_m: f64) -> Self {
        Wgs84 { alt_m, ..*self }
    }

    /// Great-circle (haversine) distance to `other` in metres, ignoring
    /// altitude.
    ///
    /// ```
    /// use perpos_geo::Wgs84;
    /// let a = Wgs84::new(0.0, 0.0, 0.0)?;
    /// let b = Wgs84::new(0.0, 1.0, 0.0)?;
    /// let d = a.distance_m(&b);
    /// assert!((d - 111_195.0).abs() < 100.0); // one degree of longitude at the equator
    /// # Ok::<(), perpos_geo::GeoError>(())
    /// ```
    pub fn distance_m(&self, other: &Wgs84) -> f64 {
        let (lat1, lon1) = (self.lat_rad(), self.lon_rad());
        let (lat2, lon2) = (other.lat_rad(), other.lon_rad());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// 3-D distance to `other` in metres, including the altitude difference.
    pub fn distance_3d_m(&self, other: &Wgs84) -> f64 {
        let horiz = self.distance_m(other);
        let dz = self.alt_m - other.alt_m;
        (horiz * horiz + dz * dz).sqrt()
    }

    /// Initial great-circle bearing towards `other`, degrees clockwise from
    /// north, in `[0, 360)`.
    pub fn bearing_deg(&self, other: &Wgs84) -> f64 {
        let (lat1, lon1) = (self.lat_rad(), self.lon_rad());
        let (lat2, lon2) = (other.lat_rad(), other.lon_rad());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        normalize_deg(y.atan2(x).to_degrees())
    }

    /// The position reached by travelling `distance_m` metres from this
    /// position on the initial bearing `bearing_deg` (degrees clockwise from
    /// north) along a great circle. Altitude is preserved.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> Wgs84 {
        let delta = distance_m / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat_rad();
        let lon1 = self.lon_rad();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        let lon2_deg = {
            let d = normalize_deg(lon2.to_degrees());
            if d > 180.0 {
                d - 360.0
            } else {
                d
            }
        };
        Wgs84 {
            lat_deg: lat2.to_degrees().clamp(-90.0, 90.0),
            lon_deg: lon2_deg,
            alt_m: self.alt_m,
        }
    }
}

impl fmt::Display for Wgs84 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.6}°, {:.6}°, {:.1} m)",
            self.lat_deg, self.lon_deg, self.alt_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Wgs84::new(91.0, 0.0, 0.0),
            Err(GeoError::LatitudeOutOfRange(_))
        ));
        assert!(matches!(
            Wgs84::new(0.0, 181.0, 0.0),
            Err(GeoError::LongitudeOutOfRange(_))
        ));
        assert!(matches!(
            Wgs84::new(f64::NAN, 0.0, 0.0),
            Err(GeoError::NotFinite(_))
        ));
        assert!(matches!(
            Wgs84::new(0.0, 0.0, f64::INFINITY),
            Err(GeoError::NotFinite(_))
        ));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Wgs84::new(56.16, 10.2, 30.0).unwrap();
        assert_eq!(p.distance_m(&p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Wgs84::new(56.16, 10.2, 0.0).unwrap();
        let b = Wgs84::new(55.67, 12.56, 0.0).unwrap();
        assert!((a.distance_m(&b) - b.distance_m(&a)).abs() < 1e-9);
    }

    #[test]
    fn aarhus_to_copenhagen_distance() {
        // Known reference distance ~157 km.
        let aarhus = Wgs84::new(56.1629, 10.2039, 0.0).unwrap();
        let cph = Wgs84::new(55.6761, 12.5683, 0.0).unwrap();
        let d = aarhus.distance_m(&cph);
        assert!(d > 150_000.0 && d < 165_000.0, "got {d}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = Wgs84::new(0.0, 0.0, 0.0).unwrap();
        let north = Wgs84::new(1.0, 0.0, 0.0).unwrap();
        let east = Wgs84::new(0.0, 1.0, 0.0).unwrap();
        assert!((origin.bearing_deg(&north) - 0.0).abs() < 1e-6);
        assert!((origin.bearing_deg(&east) - 90.0).abs() < 1e-6);
    }

    #[test]
    fn destination_3d_distance_includes_altitude() {
        let a = Wgs84::new(10.0, 10.0, 0.0).unwrap();
        let b = a.with_alt(100.0);
        assert!((a.distance_3d_m(&b) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        let p = Wgs84::new(1.0, 2.0, 3.0).unwrap();
        assert!(!format!("{p}").is_empty());
    }

    proptest! {
        #[test]
        fn destination_round_trip(
            lat in -80.0f64..80.0,
            lon in -179.0f64..179.0,
            bearing in 0.0f64..360.0,
            dist in 0.1f64..50_000.0,
        ) {
            let start = Wgs84::new(lat, lon, 0.0).unwrap();
            let end = start.destination(bearing, dist);
            // Travelling the measured distance must agree with the requested one.
            let measured = start.distance_m(&end);
            prop_assert!((measured - dist).abs() < dist * 1e-6 + 1e-3,
                "requested {dist}, measured {measured}");
        }

        #[test]
        fn triangle_inequality(
            lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
            lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
            lat3 in -80.0f64..80.0, lon3 in -179.0f64..179.0,
        ) {
            let a = Wgs84::new(lat1, lon1, 0.0).unwrap();
            let b = Wgs84::new(lat2, lon2, 0.0).unwrap();
            let c = Wgs84::new(lat3, lon3, 0.0).unwrap();
            prop_assert!(a.distance_m(&c) <= a.distance_m(&b) + b.distance_m(&c) + 1e-6);
        }
    }
}
