//! Steady-state allocation discipline of the block-ingest hot path:
//! once the arena's free list, the level rings and the engine scratch
//! have warmed up, ingesting a block must not allocate per line — slot
//! `String`s are recycled with their capacity, generation buckets come
//! from the spare pool, and the routing queue never touches the heap in
//! a linear pipeline.
//!
//! This file holds exactly one test: the counting allocator is
//! process-global, so it gets an integration-test binary of its own and
//! no parallel test threads that would pollute the counters.

#![allow(clippy::unwrap_used)]
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use perpos::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_ingest_allocates_independent_of_batch_size() {
    let mut mw = Middleware::new();
    let src = mw.add_component(FnSource::new("trace", kinds::RAW_STRING, |_| None));
    let mut prev = src;
    for d in 0..4 {
        let node = mw.add_component(FnRelay::new(
            format!("stage{d}"),
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
        ));
        mw.connect(prev, node, 0).unwrap();
        prev = node;
    }
    let app = mw.application_sink();
    mw.connect(prev, app, 0).unwrap();

    let line = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,0042";
    let tick = SimDuration::from_micros(1);
    let batch = |n: usize| vec![line; n];

    // Warm-up: fill the arena free list, grow the level rings to their
    // steady depth, and settle every engine-side buffer.
    let warm = batch(20_000);
    mw.ingest_batch(src, kinds::RAW_STRING, &warm, tick).unwrap();

    // Two measured batches whose sizes differ by 30k lines. Absolute
    // zero is not the claim — a handful of setup allocations per
    // `ingest_batch` call is fine — the claim is that the *per-line*
    // path is allocation-free, so the counts must not scale with the
    // batch size.
    let small = batch(10_000);
    let big = batch(40_000);

    let before_small = ALLOCS.load(Ordering::Relaxed);
    mw.ingest_batch(src, kinds::RAW_STRING, &small, tick).unwrap();
    let small_allocs = ALLOCS.load(Ordering::Relaxed) - before_small;

    let before_big = ALLOCS.load(Ordering::Relaxed);
    mw.ingest_batch(src, kinds::RAW_STRING, &big, tick).unwrap();
    let big_allocs = ALLOCS.load(Ordering::Relaxed) - before_big;

    assert!(
        big_allocs <= small_allocs.saturating_add(8),
        "ingest allocates per line: {small_allocs} allocs for 10k lines, \
         {big_allocs} for 40k"
    );
    eprintln!("ingest allocs: small(10k)={small_allocs} big(40k)={big_allocs}");
}
