//! Dynamic, registry-driven assembly of processing graphs.
//!
//! The paper realizes PerPos on OSGi: Processing Components are service
//! components, and "the dynamic composition mechanisms of OSGi is used for
//! connecting the components" (§3). Custom components declare
//! requirements and capabilities; "as custom components are added to the
//! PerPos middleware the dependencies are resolved and when satisfied the
//! components are added to the processing graph appropriately" (§2.1).
//!
//! [`Assembler`] reproduces that mechanism on top of
//! [`perpos_registry::Registry`]: component *factories* are registered
//! with a service descriptor whose capability/requirement namespaces are
//! data kinds; when the registry resolves a factory, the assembler
//! instantiates the component, adds it to a [`Middleware`]'s graph and
//! connects each requirement wire to the node instantiated for its
//! provider.
//!
//! # Examples
//!
//! ```
//! use perpos_core::assembly::Assembler;
//! use perpos_core::prelude::*;
//!
//! let mut mw = Middleware::new();
//! let mut asm = Assembler::new();
//! // Register a consumer before its producer: nothing happens yet.
//! asm.register_factory(
//!     "parser",
//!     &[kinds::NMEA_SENTENCE],
//!     &[kinds::RAW_STRING],
//!     || {
//!         Box::new(FnProcessor::new(
//!             "parser",
//!             vec![kinds::RAW_STRING],
//!             kinds::NMEA_SENTENCE,
//!             |i| Some(i.payload.clone()),
//!         ))
//!     },
//! );
//! asm.register_factory("gps", &[kinds::RAW_STRING], &[], || {
//!     Box::new(FnSource::new("gps", kinds::RAW_STRING, |_| Some(Value::from("$GP"))))
//! });
//! // Both resolve once the producer exists; the graph now has the edge.
//! let added = asm.sync(&mut mw)?;
//! assert_eq!(added, 2);
//! # Ok::<(), perpos_core::CoreError>(())
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use perpos_registry::{
    Capability, Registry, Requirement, ServiceDescriptor, ServiceEvent, ServiceId,
};

use crate::component::Component;
use crate::data::DataKind;
use crate::graph::NodeId;
use crate::{CoreError, Middleware};

/// A boxed constructor for one component type; graph configurations and
/// the assembler instantiate components exclusively through these, so
/// tooling (e.g. `perpos-analysis`'s catalog probe) can introspect the
/// descriptors a configuration will produce.
pub type ComponentFactory = Box<dyn Fn() -> Box<dyn Component> + Send + Sync>;

type Factory = ComponentFactory;

/// One component instance in a declarative graph configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentConfig {
    /// Instance name, unique within the configuration.
    pub name: String,
    /// Factory type to instantiate, or the reserved `"application"` for
    /// the middleware's application sink.
    pub kind: String,
    /// Declarative fault policy for the instance: `"propagate"`,
    /// `"drop_item"`, `"restart"` or `"quarantine"` (breaker defaults,
    /// see [`crate::supervision::FaultPolicy::quarantine_default`]).
    /// Absent means [`crate::supervision::FaultPolicy::Propagate`].
    pub fault_policy: Option<String>,
    /// Per-instance override of the component type's dataflow transfer
    /// metadata ([`crate::component::TransferSpec`]); fields declared
    /// here replace the corresponding type-level fields during
    /// whole-graph analysis. Absent means "use the type's spec".
    pub transfer: Option<crate::component::TransferSpec>,
    /// Per-instance override of the component type's effect metadata
    /// ([`crate::component::EffectSpec`]); fields declared here replace
    /// the corresponding type-level fields during whole-graph analysis.
    /// Absent means "use the type's spec".
    pub effects: Option<crate::component::EffectSpec>,
}

/// One edge in a declarative graph configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionConfig {
    /// Producing instance name.
    pub from: String,
    /// Consuming instance name.
    pub to: String,
    /// Input port on the consumer.
    pub port: usize,
}

/// Declarative fleet deployment for a configuration: how many replicas
/// of the described process a [`crate::fleet::FleetPool`] should run and
/// how its supervision ladder is provisioned. The spec is deployment
/// advice — [`GraphConfig::instantiate`] ignores it (it always builds
/// one instance); [`GraphConfig::fleet_pool`] and fleet-aware tooling
/// (`perpos-lint`'s P016 pass) consume it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Total middleware instances the pool replicates the process into.
    pub instances: usize,
    /// Shards to spread the instances over; absent lets the pool derive
    /// a shard count from the instance count.
    pub shards: Option<usize>,
    /// Checkpoint cadence in shard rounds; absent uses the
    /// [`crate::fleet::FleetConfig`] default.
    pub checkpoint_every: Option<u64>,
    /// Fleet scheduler name (`"serial"`, `"work_stealing"` or
    /// `"permuted"`); absent defaults to serial unless
    /// [`FleetSpec::workers`] asks for more than one worker, which
    /// implies work stealing. Unknown names resolve to serial (the
    /// lint layer flags them; the runtime never guesses at
    /// parallelism). See [`crate::fleet::FleetScheduler`].
    pub scheduler: Option<String>,
    /// Worker-thread cap for the work-stealing scheduler; `0` (or
    /// absent under `"work_stealing"`) means machine-sized. Ignored by
    /// the serial-execution schedulers.
    pub workers: Option<usize>,
}

impl FleetSpec {
    /// Resolves the spec into a concrete [`crate::fleet::FleetConfig`],
    /// filling unspecified knobs from the fleet defaults (one shard per
    /// ~320 instances, default watchdog thresholds and seed).
    pub fn to_fleet_config(&self) -> crate::fleet::FleetConfig {
        let defaults = crate::fleet::FleetConfig::default();
        crate::fleet::FleetConfig {
            shards: self.shards.unwrap_or_else(|| (self.instances / 320).max(1)),
            instances: self.instances,
            checkpoint_every: self.checkpoint_every.unwrap_or(defaults.checkpoint_every),
            scheduler: self.resolved_scheduler(),
            ..defaults
        }
    }

    /// The [`crate::fleet::FleetScheduler`] this spec requests. An
    /// explicit `scheduler` name wins; with no name, `workers` other
    /// than 1 implies work stealing (that is what asking for workers
    /// means), and everything else is serial. The `permuted` scheduler
    /// takes its shuffle seed from the fleet default seed so declarative
    /// configurations stay reproducible.
    pub fn resolved_scheduler(&self) -> crate::fleet::FleetScheduler {
        use crate::fleet::FleetScheduler;
        match self.scheduler.as_deref() {
            Some(name) => match FleetScheduler::from_name(name) {
                Some(FleetScheduler::WorkStealing { .. }) => FleetScheduler::WorkStealing {
                    workers: self.workers.unwrap_or(0),
                },
                Some(FleetScheduler::Permuted { .. }) => FleetScheduler::Permuted {
                    seed: crate::fleet::FleetConfig::default().seed,
                },
                Some(FleetScheduler::Serial) | None => FleetScheduler::Serial,
            },
            None => match self.workers {
                Some(workers) if workers != 1 => FleetScheduler::WorkStealing { workers },
                _ => FleetScheduler::Serial,
            },
        }
    }
}

/// A declarative, serializable description of a positioning process —
/// the paper's third composition path: "connections are established
/// either by direct calls to the graph manipulation API, based on
/// **explicitly defined system level configurations** or through dynamic
/// resolution of dependencies" (§2.1).
///
/// The configuration references component *types* by name; the caller
/// supplies a factory per type, so configurations can be stored as data
/// (JSON via serde) and applied to any middleware instance.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Component instances to create.
    pub components: Vec<ComponentConfig>,
    /// Edges between them.
    pub connections: Vec<ConnectionConfig>,
    /// Execution mode for the middleware's engine (`"sequential"` or
    /// `"level-parallel"`); absent keeps the current (default:
    /// sequential) executor. See [`crate::executor::ExecMode`].
    pub executor: Option<String>,
    /// Tree materialization policy for the channel layer (`"lazy"` or
    /// `"eager"`); absent keeps the current (default: lazy) policy. See
    /// [`crate::channel::TreePolicy`].
    pub tree_policy: Option<String>,
    /// Fleet deployment for the process; absent means a single
    /// unsupervised instance. See [`FleetSpec`].
    pub fleet: Option<FleetSpec>,
}

impl GraphConfig {
    /// Instantiates the configuration into `mw`, using `factories` to
    /// build each component type. Returns the instance-name → node map.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ComponentFailure`] for unknown types or
    /// instance names, and propagates connection validation errors (the
    /// same checks as the direct manipulation API).
    pub fn instantiate(
        &self,
        mw: &mut Middleware,
        factories: &BTreeMap<String, Factory>,
    ) -> Result<BTreeMap<String, NodeId>, CoreError> {
        if let Some(name) = &self.executor {
            let mode = crate::executor::ExecMode::from_name(name).ok_or_else(|| {
                CoreError::ComponentFailure {
                    component: "executor".into(),
                    reason: format!("unknown executor mode {name:?}"),
                }
            })?;
            mw.set_executor(mode);
        }
        if let Some(name) = &self.tree_policy {
            let policy = crate::channel::TreePolicy::from_name(name).ok_or_else(|| {
                CoreError::ComponentFailure {
                    component: "tree_policy".into(),
                    reason: format!("unknown tree policy {name:?}"),
                }
            })?;
            mw.set_tree_policy(policy);
        }
        let mut nodes = BTreeMap::new();
        for c in &self.components {
            let node = if c.kind == "application" {
                mw.application_sink()
            } else {
                let factory =
                    factories
                        .get(&c.kind)
                        .ok_or_else(|| CoreError::ComponentFailure {
                            component: c.name.clone(),
                            reason: format!("no factory registered for type {:?}", c.kind),
                        })?;
                mw.add_boxed_component(factory())
            };
            if let Some(policy_name) = &c.fault_policy {
                let policy =
                    crate::supervision::FaultPolicy::from_name(policy_name).ok_or_else(|| {
                        CoreError::ComponentFailure {
                            component: c.name.clone(),
                            reason: format!("unknown fault policy {policy_name:?}"),
                        }
                    })?;
                mw.set_fault_policy(node, policy)?;
            }
            if nodes.insert(c.name.clone(), node).is_some() {
                return Err(CoreError::ComponentFailure {
                    component: c.name.clone(),
                    reason: "duplicate instance name in configuration".into(),
                });
            }
        }
        for edge in &self.connections {
            let from = *nodes
                .get(&edge.from)
                .ok_or_else(|| CoreError::ComponentFailure {
                    component: edge.from.clone(),
                    reason: "connection references unknown instance".into(),
                })?;
            let to = *nodes
                .get(&edge.to)
                .ok_or_else(|| CoreError::ComponentFailure {
                    component: edge.to.clone(),
                    reason: "connection references unknown instance".into(),
                })?;
            mw.connect(from, to, edge.port)?;
        }
        Ok(nodes)
    }

    /// Like [`GraphConfig::instantiate`], but runs `check` over the
    /// configuration first and instantiates nothing unless it passes —
    /// the opt-in static-analysis gate (`perpos-analysis` provides a
    /// ready-made check via its `gate` module).
    ///
    /// # Errors
    ///
    /// Propagates `check`'s error without touching `mw`, then behaves
    /// like [`GraphConfig::instantiate`].
    pub fn instantiate_checked(
        &self,
        mw: &mut Middleware,
        factories: &BTreeMap<String, Factory>,
        check: &dyn Fn(&GraphConfig) -> Result<(), CoreError>,
    ) -> Result<BTreeMap<String, NodeId>, CoreError> {
        check(self)?;
        self.instantiate(mw, factories)
    }

    /// Stands the configuration up as a supervised
    /// [`crate::fleet::FleetPool`], replicating the process per its
    /// [`FleetSpec`] (one single-instance pool when the `fleet` block is
    /// absent). The configuration is validated by instantiating it once
    /// up front, so the pool's per-instance factory — also used by the
    /// checkpoint-restart path — cannot fail later.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`GraphConfig::instantiate`], before
    /// any pool is built.
    pub fn fleet_pool(
        &self,
        factories: BTreeMap<String, Factory>,
    ) -> Result<crate::fleet::FleetPool, CoreError> {
        let spec = self.fleet.clone().unwrap_or(FleetSpec {
            instances: 1,
            shards: Some(1),
            checkpoint_every: None,
            scheduler: None,
            workers: None,
        });
        let mut probe = Middleware::new();
        self.instantiate(&mut probe, &factories)?;
        let template = self.clone();
        Ok(crate::fleet::FleetPool::new(
            spec.to_fleet_config(),
            move |_index| {
                let mut mw = Middleware::new();
                template
                    .instantiate(&mut mw, &factories)
                    .expect("template validated at pool construction");
                mw
            },
        ))
    }
}

/// A [`GraphConfig`] produced by a pipeline synthesizer (e.g.
/// `perpos-analysis`'s `synth` module) rather than written by hand,
/// together with the goal it was synthesized for.
///
/// Synthesized configurations are only ever stood up through
/// [`Middleware::instantiate_synthesized`], which re-runs the caller's
/// acceptance gate before touching the graph — a synthesizer bug (or a
/// stale serialized artifact) can therefore never instantiate a pipeline
/// that no longer passes analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesizedConfig {
    /// The synthesized processing graph.
    pub config: GraphConfig,
    /// Human-readable summary of the goal the pipeline satisfies, e.g.
    /// `"accuracy<=5m, no-identifiable-at-sink"`.
    pub goal: String,
    /// Rank among the synthesizer's candidates (0 = best).
    pub rank: u64,
}

/// Connects a [`perpos_registry::Registry`] of component factories to a
/// [`Middleware`] instance, instantiating and wiring components as their
/// declared dependencies resolve.
pub struct Assembler {
    registry: Registry<Factory>,
    events: crossbeam_channel::Receiver<ServiceEvent>,
    instantiated: BTreeMap<ServiceId, NodeId>,
}

impl Default for Assembler {
    fn default() -> Self {
        Assembler::new()
    }
}

impl std::fmt::Debug for Assembler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Assembler")
            .field("instantiated", &self.instantiated.len())
            .finish()
    }
}

impl Assembler {
    /// Creates an assembler with an empty factory registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let events = registry.subscribe();
        Assembler {
            registry,
            events,
            instantiated: BTreeMap::new(),
        }
    }

    /// Registers a component factory declaring the data kinds it provides
    /// and requires. Returns the underlying service id.
    ///
    /// Each required kind becomes one input port wire: the i-th
    /// requirement connects the provider's node to input port i of the
    /// instantiated component.
    pub fn register_factory(
        &mut self,
        name: &str,
        provides: &[DataKind],
        requires: &[DataKind],
        factory: impl Fn() -> Box<dyn Component> + Send + Sync + 'static,
    ) -> ServiceId {
        let mut descriptor = ServiceDescriptor::new(name);
        for p in provides {
            descriptor = descriptor.provides(Capability::new(p.as_str()));
        }
        for r in requires {
            descriptor = descriptor.requires(Requirement::new(r.as_str()));
        }
        self.registry.register(descriptor, Box::new(factory))
    }

    /// Unregisters a factory and removes its instantiated component (and,
    /// transitively via unresolution events processed by the next
    /// [`Assembler::sync`], its dependents' wires).
    ///
    /// # Errors
    ///
    /// Propagates registry and graph errors.
    pub fn unregister_factory(
        &mut self,
        id: ServiceId,
        mw: &mut Middleware,
    ) -> Result<(), CoreError> {
        let _ = self.registry.unregister(id);
        if let Some(node) = self.instantiated.remove(&id) {
            mw.remove_component(node)?;
        }
        Ok(())
    }

    /// The node a resolved service was instantiated as, if any.
    pub fn node_for(&self, id: ServiceId) -> Option<NodeId> {
        self.instantiated.get(&id).copied()
    }

    /// Processes pending registry events, instantiating newly resolved
    /// components into `mw` and wiring their dependencies. Returns the
    /// number of components instantiated.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (e.g. incompatible wires).
    pub fn sync(&mut self, mw: &mut Middleware) -> Result<usize, CoreError> {
        let mut added = 0;
        let events: Vec<ServiceEvent> = self.events.try_iter().collect();
        for event in events {
            match event {
                ServiceEvent::Resolved(sid) => {
                    if self.instantiated.contains_key(&sid) {
                        continue;
                    }
                    let Some(component) = self.registry.with_payload(sid, |f| f()) else {
                        continue;
                    };
                    let node = mw.add_boxed_component(component);
                    self.instantiated.insert(sid, node);
                    added += 1;
                    // Wire each requirement to its provider's node.
                    for (port, wire) in self.registry.wires(sid).iter().enumerate() {
                        if let Some(&provider_node) = self.instantiated.get(&wire.provider) {
                            mw.connect(provider_node, node, port)?;
                        }
                    }
                    // Wire dependents that resolved before this provider
                    // was instantiated (possible when events interleave).
                    let dependents: Vec<(ServiceId, usize)> = self
                        .registry
                        .service_ids()
                        .into_iter()
                        .flat_map(|other| {
                            self.registry
                                .wires(other)
                                .into_iter()
                                .enumerate()
                                .filter(move |(_, w)| w.provider == sid)
                                .map(move |(port, _)| (other, port))
                        })
                        .collect();
                    for (dependent, port) in dependents {
                        if let Some(&dep_node) = self.instantiated.get(&dependent) {
                            if mw.node_info(dep_node)?.inputs[port].is_none() {
                                mw.connect(node, dep_node, port)?;
                            }
                        }
                    }
                }
                ServiceEvent::Unresolved(sid) | ServiceEvent::Unregistered(sid) => {
                    if let Some(node) = self.instantiated.remove(&sid) {
                        mw.remove_component(node)?;
                    }
                }
                ServiceEvent::Registered(_) => {}
            }
        }
        Ok(added)
    }

    /// Like [`Assembler::sync`], but runs `check` over the resulting
    /// process structure afterwards — the opt-in analysis gate for the
    /// dynamic-resolution composition path.
    ///
    /// The structural changes have already been applied when `check`
    /// runs (dynamic assembly is incremental and has no transaction to
    /// roll back); a failed check therefore reports the unsound state
    /// rather than preventing it. Callers that need an untouched
    /// middleware on failure should sync into a scratch instance first.
    ///
    /// # Errors
    ///
    /// Propagates [`Assembler::sync`] errors, then `check`'s error.
    pub fn sync_checked(
        &mut self,
        mw: &mut Middleware,
        check: &dyn Fn(&[crate::graph::NodeInfo]) -> Result<(), CoreError>,
    ) -> Result<usize, CoreError> {
        let added = self.sync(mw)?;
        check(&mw.structure())?;
        Ok(added)
    }

    /// The underlying registry (for inspection or direct manipulation).
    pub fn registry(&self) -> &Registry<Factory> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{FnProcessor, FnSource};
    use crate::data::{kinds, Value};
    use crate::positioning::Criteria;
    use crate::SimDuration;

    fn gps_factory() -> Box<dyn Component> {
        Box::new(FnSource::new("gps", kinds::RAW_STRING, |_| {
            Some(Value::from("$GPGGA"))
        }))
    }

    fn parser_factory() -> Box<dyn Component> {
        Box::new(FnProcessor::new(
            "parser",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |i| Some(i.payload.clone()),
        ))
    }

    #[test]
    fn graph_config_instantiates_a_pipeline() {
        let mut factories: BTreeMap<String, Factory> = BTreeMap::new();
        factories.insert("gps".into(), Box::new(gps_factory));
        factories.insert("parser".into(), Box::new(parser_factory));
        let config = GraphConfig {
            components: vec![
                ComponentConfig {
                    name: "gps0".into(),
                    kind: "gps".into(),
                    fault_policy: None,
                    transfer: None,
                    effects: None,
                },
                ComponentConfig {
                    name: "parse0".into(),
                    kind: "parser".into(),
                    fault_policy: None,
                    transfer: None,
                    effects: None,
                },
                ComponentConfig {
                    name: "app".into(),
                    kind: "application".into(),
                    fault_policy: None,
                    transfer: None,
                    effects: None,
                },
            ],
            connections: vec![
                ConnectionConfig {
                    from: "gps0".into(),
                    to: "parse0".into(),
                    port: 0,
                },
                ConnectionConfig {
                    from: "parse0".into(),
                    to: "app".into(),
                    port: 0,
                },
            ],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        let mut mw = Middleware::new();
        let nodes = config.instantiate(&mut mw, &factories).unwrap();
        assert_eq!(nodes.len(), 3);
        mw.run_for(SimDuration::from_millis(100), SimDuration::from_millis(100))
            .unwrap();
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.last_item().unwrap().kind, kinds::NMEA_SENTENCE);
    }

    #[test]
    fn graph_config_stands_up_a_fleet_pool() {
        let mut factories: BTreeMap<String, Factory> = BTreeMap::new();
        factories.insert("gps".into(), Box::new(gps_factory));
        factories.insert("parser".into(), Box::new(parser_factory));
        let config = GraphConfig {
            components: vec![
                ComponentConfig {
                    name: "gps0".into(),
                    kind: "gps".into(),
                    fault_policy: Some("drop_item".into()),
                    transfer: None,
                    effects: None,
                },
                ComponentConfig {
                    name: "parse0".into(),
                    kind: "parser".into(),
                    fault_policy: None,
                    transfer: None,
                    effects: None,
                },
                ComponentConfig {
                    name: "app".into(),
                    kind: "application".into(),
                    fault_policy: None,
                    transfer: None,
                    effects: None,
                },
            ],
            connections: vec![
                ConnectionConfig {
                    from: "gps0".into(),
                    to: "parse0".into(),
                    port: 0,
                },
                ConnectionConfig {
                    from: "parse0".into(),
                    to: "app".into(),
                    port: 0,
                },
            ],
            executor: None,
            tree_policy: None,
            fleet: Some(FleetSpec {
                instances: 12,
                shards: Some(3),
                checkpoint_every: Some(4),
                scheduler: Some("work_stealing".into()),
                workers: Some(2),
            }),
        };
        let mut pool = config.fleet_pool(factories).unwrap();
        assert_eq!(pool.instances(), 12);
        assert_eq!(pool.shards().len(), 3);
        pool.run(8, SimDuration::from_millis(100));
        let stats = pool.stats();
        assert_eq!(stats.live_steps(), 12 * 8);
        assert!((pool.availability() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn fleet_spec_resolves_defaults() {
        let spec = FleetSpec {
            instances: 1000,
            shards: None,
            checkpoint_every: None,
            scheduler: None,
            workers: None,
        };
        let resolved = spec.to_fleet_config();
        assert_eq!(resolved.instances, 1000);
        assert_eq!(resolved.shards, 3);
        assert_eq!(
            resolved.checkpoint_every,
            crate::fleet::FleetConfig::default().checkpoint_every
        );
    }

    #[test]
    fn fleet_pool_rejects_invalid_templates_up_front() {
        let factories: BTreeMap<String, Factory> = BTreeMap::new();
        let config = GraphConfig {
            components: vec![ComponentConfig {
                name: "x".into(),
                kind: "nope".into(),
                fault_policy: None,
                transfer: None,
                effects: None,
            }],
            connections: vec![],
            executor: None,
            tree_policy: None,
            fleet: Some(FleetSpec {
                instances: 4,
                shards: None,
                checkpoint_every: None,
                scheduler: None,
                workers: None,
            }),
        };
        assert!(config.fleet_pool(factories).is_err());
    }

    #[test]
    fn graph_config_rejects_bad_references() {
        let factories: BTreeMap<String, Factory> = BTreeMap::new();
        let mut mw = Middleware::new();
        // Unknown type.
        let bad_type = GraphConfig {
            components: vec![ComponentConfig {
                name: "x".into(),
                kind: "nope".into(),
                fault_policy: None,
                transfer: None,
                effects: None,
            }],
            connections: vec![],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        assert!(bad_type.instantiate(&mut mw, &factories).is_err());
        // Unknown instance in a connection.
        let bad_edge = GraphConfig {
            components: vec![ComponentConfig {
                name: "app".into(),
                kind: "application".into(),
                fault_policy: None,
                transfer: None,
                effects: None,
            }],
            connections: vec![ConnectionConfig {
                from: "ghost".into(),
                to: "app".into(),
                port: 0,
            }],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        assert!(bad_edge.instantiate(&mut mw, &factories).is_err());
        // Duplicate instance names.
        let dup = GraphConfig {
            components: vec![
                ComponentConfig {
                    name: "app".into(),
                    kind: "application".into(),
                    fault_policy: None,
                    transfer: None,
                    effects: None,
                },
                ComponentConfig {
                    name: "app".into(),
                    kind: "application".into(),
                    fault_policy: None,
                    transfer: None,
                    effects: None,
                },
            ],
            connections: vec![],
            executor: None,
            tree_policy: None,
            fleet: None,
        };
        assert!(dup.instantiate(&mut mw, &factories).is_err());
    }

    #[test]
    fn graph_config_selects_executor() {
        let factories: BTreeMap<String, Factory> = BTreeMap::new();
        let mut mw = Middleware::new();
        let config = GraphConfig {
            components: vec![],
            connections: vec![],
            executor: Some("level-parallel".into()),
            tree_policy: None,
            fleet: None,
        };
        config.instantiate(&mut mw, &factories).unwrap();
        assert_eq!(mw.executor_mode(), crate::executor::ExecMode::LevelParallel);
        // Unknown executor names are rejected before any component is built.
        let bad = GraphConfig {
            components: vec![],
            connections: vec![],
            executor: Some("round-robin".into()),
            tree_policy: None,
            fleet: None,
        };
        assert!(bad.instantiate(&mut mw, &factories).is_err());
    }

    #[test]
    fn components_assemble_when_dependencies_resolve() {
        let mut mw = Middleware::new();
        let mut asm = Assembler::new();
        let parser_id = asm.register_factory(
            "parser",
            &[kinds::NMEA_SENTENCE],
            &[kinds::RAW_STRING],
            parser_factory,
        );
        assert_eq!(
            asm.sync(&mut mw).unwrap(),
            0,
            "unresolved: no instantiation"
        );
        let gps_id = asm.register_factory("gps", &[kinds::RAW_STRING], &[], gps_factory);
        assert_eq!(asm.sync(&mut mw).unwrap(), 2);
        let gps_node = asm.node_for(gps_id).unwrap();
        let parser_node = asm.node_for(parser_id).unwrap();
        assert_eq!(mw.graph().downstream(gps_node), vec![(parser_node, 0)]);
    }

    #[test]
    fn assembled_pipeline_flows_data() {
        let mut mw = Middleware::new();
        let mut asm = Assembler::new();
        let parser_id = asm.register_factory(
            "parser",
            &[kinds::NMEA_SENTENCE],
            &[kinds::RAW_STRING],
            parser_factory,
        );
        asm.register_factory("gps", &[kinds::RAW_STRING], &[], gps_factory);
        asm.sync(&mut mw).unwrap();
        let parser_node = asm.node_for(parser_id).unwrap();
        let app = mw.application_sink();
        mw.connect(parser_node, app, 0).unwrap();
        mw.run_for(SimDuration::from_millis(100), SimDuration::from_millis(100))
            .unwrap();
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.last_item().unwrap().kind, kinds::NMEA_SENTENCE);
    }

    #[test]
    fn unregister_removes_node_and_dependents_unwire() {
        let mut mw = Middleware::new();
        let mut asm = Assembler::new();
        let parser_id = asm.register_factory(
            "parser",
            &[kinds::NMEA_SENTENCE],
            &[kinds::RAW_STRING],
            parser_factory,
        );
        let gps_id = asm.register_factory("gps", &[kinds::RAW_STRING], &[], gps_factory);
        asm.sync(&mut mw).unwrap();
        let parser_node = asm.node_for(parser_id).unwrap();
        asm.unregister_factory(gps_id, &mut mw).unwrap();
        asm.sync(&mut mw).unwrap();
        // Parser lost resolution and is removed from the graph too.
        assert!(!mw.graph().contains(parser_node));
        assert_eq!(asm.node_for(parser_id), None);
    }

    #[test]
    fn alternative_provider_rewires_after_unregister() {
        let mut mw = Middleware::new();
        let mut asm = Assembler::new();
        let parser_id = asm.register_factory(
            "parser",
            &[kinds::NMEA_SENTENCE],
            &[kinds::RAW_STRING],
            parser_factory,
        );
        let gps1 = asm.register_factory("gps1", &[kinds::RAW_STRING], &[], gps_factory);
        let _gps2 = asm.register_factory("gps2", &[kinds::RAW_STRING], &[], gps_factory);
        asm.sync(&mut mw).unwrap();
        asm.unregister_factory(gps1, &mut mw).unwrap();
        // Registry re-resolves parser onto gps2; sync re-instantiates it.
        asm.sync(&mut mw).unwrap();
        let parser_node = asm.node_for(parser_id).expect("parser re-instantiated");
        let producers = mw.graph().upstream(parser_node);
        assert!(producers[0].is_some(), "parser rewired to gps2");
    }
}
