//! Simulated distribution of the processing graph across hosts.
//!
//! The paper deploys PerPos on OSGi and notes that "because OSGi supports
//! transparent distribution of services through the D-OSGi specification
//! the processing graph can span several hosts with little added
//! configuration overhead" (§3.3) — in the EnTracked reimplementation the
//! Sensor Wrapper runs on the mobile device while Parser and Interpreter
//! run on a server (Fig. 7).
//!
//! This module reproduces that capability over the simulation: nodes are
//! assigned to named [`Host`]s through a [`Deployment`]; items crossing a
//! host boundary travel over a [`LinkModel`] with latency and loss, and
//! the engine delivers them when due. Link traffic is counted so
//! energy/cost models can observe it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::data::DataItem;
use crate::graph::NodeId;
use crate::{SimDuration, SimTime};

/// A named host in the deployment (e.g. `"mobile"`, `"server"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Host(String);

impl Host {
    /// Creates a host name.
    pub fn new(name: impl Into<String>) -> Self {
        Host(name.into())
    }

    /// The host name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Host {
    fn from(s: &str) -> Self {
        Host::new(s)
    }
}

/// Network characteristics of the link between two hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way delivery latency.
    pub latency: SimDuration,
    /// Probability that a message is lost.
    pub loss_prob: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            latency: SimDuration::from_millis(40),
            loss_prob: 0.0,
        }
    }
}

/// Counters for one host pair, in deployment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Messages handed to the link.
    pub sent: u64,
    /// Messages delivered to the remote node.
    pub delivered: u64,
    /// Messages dropped by loss.
    pub lost: u64,
}

#[derive(Debug)]
struct InFlight {
    due: SimTime,
    pair: (Host, Host),
    target: NodeId,
    port: usize,
    item: DataItem,
}

/// Assignment of graph nodes to hosts plus the link model — the
/// "configuration overhead" of distributing the graph, kept deliberately
/// small as the paper promises.
///
/// ```
/// use perpos_core::distribution::{Deployment, LinkModel};
/// use perpos_core::prelude::*;
///
/// let mut mw = Middleware::new();
/// let gps = mw.add_component(FnSource::new("gps", kinds::RAW_STRING, |_| {
///     Some(Value::from("$GP"))
/// }));
/// let app = mw.application_sink();
/// mw.connect(gps, app, 0)?;
/// mw.set_deployment(
///     Deployment::new("server")
///         .assign(gps, "mobile")
///         .default_link(LinkModel {
///             latency: SimDuration::from_millis(80),
///             loss_prob: 0.0,
///         }),
/// );
/// mw.step()?; // the item is now in flight, not delivered
/// assert_eq!(mw.deployment().unwrap().in_flight(), 1);
/// # Ok::<(), perpos_core::CoreError>(())
/// ```
pub struct Deployment {
    assignments: BTreeMap<NodeId, Host>,
    default_host: Host,
    links: BTreeMap<(Host, Host), LinkModel>,
    default_link: LinkModel,
    stats: BTreeMap<(Host, Host), LinkStats>,
    in_flight: Vec<InFlight>,
    rng: StdRng,
}

impl fmt::Debug for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deployment")
            .field("assignments", &self.assignments.len())
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

impl Deployment {
    /// Creates a deployment where unassigned nodes live on `default_host`.
    pub fn new(default_host: impl Into<Host>) -> Self {
        Deployment {
            assignments: BTreeMap::new(),
            default_host: default_host.into(),
            links: BTreeMap::new(),
            default_link: LinkModel::default(),
            stats: BTreeMap::new(),
            in_flight: Vec::new(),
            rng: StdRng::seed_from_u64(0xd057),
        }
    }

    /// Assigns a node to a host (builder style).
    pub fn assign(mut self, node: NodeId, host: impl Into<Host>) -> Self {
        self.assignments.insert(node, host.into());
        self
    }

    /// Configures the link between two hosts, in both directions
    /// (builder style).
    pub fn link(mut self, a: impl Into<Host>, b: impl Into<Host>, model: LinkModel) -> Self {
        let (a, b) = (a.into(), b.into());
        self.links.insert((a.clone(), b.clone()), model);
        self.links.insert((b, a), model);
        self
    }

    /// Sets the link model used for host pairs without an explicit link
    /// (builder style).
    pub fn default_link(mut self, model: LinkModel) -> Self {
        self.default_link = model;
        self
    }

    /// Seeds the loss randomness (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// The host a node runs on.
    pub fn host_of(&self, node: NodeId) -> &Host {
        self.assignments.get(&node).unwrap_or(&self.default_host)
    }

    /// Traffic counters per (from, to) host pair.
    pub fn stats(&self) -> &BTreeMap<(Host, Host), LinkStats> {
        &self.stats
    }

    /// Total messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the edge `from -> to` crosses hosts.
    pub(crate) fn crosses_hosts(&self, from: NodeId, to: NodeId) -> bool {
        self.host_of(from) != self.host_of(to)
    }

    /// Hands an item to the link; it will surface from
    /// [`Deployment::take_due`] when delivered (or never, when lost).
    pub(crate) fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        target: NodeId,
        port: usize,
        item: DataItem,
    ) {
        let key = (self.host_of(from).clone(), self.host_of(target).clone());
        let model = self.links.get(&key).copied().unwrap_or(self.default_link);
        let entry = self.stats.entry(key).or_default();
        entry.sent += 1;
        if model.loss_prob > 0.0 && self.rng.gen::<f64>() < model.loss_prob {
            entry.lost += 1;
            return;
        }
        self.in_flight.push(InFlight {
            due: now + model.latency,
            pair: (self.host_of(from).clone(), self.host_of(target).clone()),
            target,
            port,
            item,
        });
    }

    /// Removes and returns every in-flight item due at or before `now`.
    pub(crate) fn take_due(&mut self, now: SimTime) -> Vec<(NodeId, usize, DataItem)> {
        let mut due = Vec::new();
        let mut remaining = Vec::with_capacity(self.in_flight.len());
        for msg in self.in_flight.drain(..) {
            if msg.due <= now {
                self.stats.entry(msg.pair).or_default().delivered += 1;
                due.push((msg.target, msg.port, msg.item));
            } else {
                remaining.push(msg);
            }
        }
        self.in_flight = remaining;
        // Deterministic delivery order.
        due.sort_by_key(|(n, p, _)| (*n, *p));
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{kinds, Value};

    fn item() -> DataItem {
        DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Int(1))
    }

    #[test]
    fn host_defaults_and_assignment() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let d = Deployment::new("server").assign(a, "mobile");
        assert_eq!(d.host_of(a).as_str(), "mobile");
        let b = g.add(Box::new(crate::component::FnSource::new(
            "b",
            kinds::RAW_STRING,
            |_| None,
        )));
        assert_eq!(d.host_of(b).as_str(), "server");
        assert!(d.crosses_hosts(a, b));
        assert!(!d.crosses_hosts(b, b));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(100),
                loss_prob: 0.0,
            });
        d.send(SimTime::ZERO, a, a, 0, item());
        assert_eq!(d.in_flight(), 1);
        assert!(d.take_due(SimTime::from_secs_f64(0.05)).is_empty());
        let due = d.take_due(SimTime::from_secs_f64(0.2));
        assert_eq!(due.len(), 1);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn loss_drops_messages() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(1),
                loss_prob: 1.0,
            })
            .with_seed(1);
        for _ in 0..10 {
            d.send(SimTime::ZERO, a, a, 0, item());
        }
        assert_eq!(d.in_flight(), 0);
        let stats = d.stats().values().next().unwrap();
        assert_eq!(stats.sent, 10);
        assert_eq!(stats.lost, 10);
    }

    #[test]
    fn per_pair_link_overrides_default() {
        let mut g = crate::graph::ProcessingGraph::new();
        let a = g.add(Box::new(crate::component::FnSource::new(
            "a",
            kinds::RAW_STRING,
            |_| None,
        )));
        let b = g.add(Box::new(crate::component::FnSource::new(
            "b",
            kinds::RAW_STRING,
            |_| None,
        )));
        let mut d = Deployment::new("server")
            .assign(a, "mobile")
            .assign(b, "server")
            .link(
                "mobile",
                "server",
                LinkModel {
                    latency: SimDuration::from_secs(5),
                    loss_prob: 0.0,
                },
            );
        d.send(SimTime::ZERO, a, b, 0, item());
        assert!(d.take_due(SimTime::from_secs_f64(4.0)).is_empty());
        assert_eq!(d.take_due(SimTime::from_secs_f64(5.0)).len(), 1);
    }
}
