//! The type catalog: what the analyzer knows about component *types*.
//!
//! A [`crate::GraphConfig`] references component types by name and says
//! nothing about their ports, so config-level analysis needs a side
//! channel describing each type. A [`TypeCatalog`] provides it, either
//! [probed](TypeCatalog::probe) from the same factories the configuration
//! will be instantiated with (always in sync) or loaded from JSON (for
//! offline linting with `perpos-lint --catalog`).

use std::collections::BTreeMap;

use perpos_core::assembly::ComponentFactory;
use perpos_core::component::{EffectSpec, TransferSpec};
use serde::{Deserialize, Serialize};

/// The reserved configuration kind for the middleware's application sink.
pub const APPLICATION_KIND: &str = "application";

/// Number of any-kind input ports the application sink exposes (mirrors
/// the core's `SINK_PORTS`).
const APPLICATION_PORTS: usize = 16;

/// Declaration of one input port of a component type.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PortSpec {
    /// Port name, for diagnostics.
    pub name: String,
    /// Data kinds the port accepts; empty means *any*.
    pub accepts: Vec<String>,
    /// Component Features the connected producer must carry.
    pub required_features: Vec<String>,
}

/// Static description of one component type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentTypeSpec {
    /// Type name, as referenced by `ComponentConfig::kind`.
    pub kind: String,
    /// Role: `"source"`, `"processor"`, `"merge"` or `"sink"`.
    pub role: String,
    /// Input ports in port-index order.
    pub inputs: Vec<PortSpec>,
    /// Data kinds the output port provides; empty for sinks.
    pub provides: Vec<String>,
    /// Dataflow transfer metadata declared by the component type
    /// (mirrored from its descriptor by [`TypeCatalog::probe`]); absent
    /// means no declared semantics.
    pub transfer: Option<TransferSpec>,
    /// Effect metadata declared by the component type (mirrored from
    /// its descriptor by [`TypeCatalog::probe`]); absent means no
    /// declared effects (pure, snapshot-safe, deterministic).
    pub effects: Option<EffectSpec>,
}

impl ComponentTypeSpec {
    /// Whether instances of this type consume data (sink role).
    pub fn is_sink(&self) -> bool {
        self.role == "sink"
    }

    /// Whether instances of this type have an output port.
    pub fn has_output(&self) -> bool {
        !self.is_sink()
    }
}

/// A collection of component type descriptions keyed by type name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TypeCatalog {
    /// The known types.
    pub types: Vec<ComponentTypeSpec>,
}

impl TypeCatalog {
    /// An empty catalog (knows only the built-in `"application"` type).
    pub fn new() -> Self {
        TypeCatalog::default()
    }

    /// Builds a catalog by instantiating each factory once and reading the
    /// produced component's declared descriptor. This is the translucency
    /// principle applied to tooling: the same declarations the graph
    /// validates at connect time feed the ahead-of-time analysis.
    pub fn probe(factories: &BTreeMap<String, ComponentFactory>) -> Self {
        let mut types = Vec::new();
        for (kind, factory) in factories {
            let component = factory();
            let d = component.descriptor();
            types.push(ComponentTypeSpec {
                kind: kind.clone(),
                role: d.role.to_string(),
                inputs: d
                    .inputs
                    .iter()
                    .map(|i| PortSpec {
                        name: i.name.clone(),
                        accepts: i.accepts.iter().map(|k| k.as_str().to_string()).collect(),
                        required_features: i.required_features.clone(),
                    })
                    .collect(),
                provides: d
                    .output
                    .as_ref()
                    .map(|o| o.provides.iter().map(|k| k.as_str().to_string()).collect())
                    .unwrap_or_default(),
                transfer: if d.transfer.is_empty() {
                    None
                } else {
                    Some(d.transfer.clone())
                },
                effects: if d.effects.is_empty() {
                    None
                } else {
                    Some(d.effects.clone())
                },
            });
        }
        TypeCatalog { types }
    }

    /// Adds (or replaces) a type description.
    pub fn insert(&mut self, spec: ComponentTypeSpec) {
        self.types.retain(|t| t.kind != spec.kind);
        self.types.push(spec);
    }

    /// Looks up a type by name. The reserved `"application"` kind is
    /// always known and resolves to the middleware's 16-port any-kind
    /// application sink.
    pub fn get(&self, kind: &str) -> Option<ComponentTypeSpec> {
        if let Some(t) = self.types.iter().find(|t| t.kind == kind) {
            return Some(t.clone());
        }
        if kind == APPLICATION_KIND {
            return Some(application_spec());
        }
        None
    }
}

/// The built-in description of the application sink.
pub fn application_spec() -> ComponentTypeSpec {
    ComponentTypeSpec {
        kind: APPLICATION_KIND.to_string(),
        role: "sink".to_string(),
        inputs: (0..APPLICATION_PORTS)
            .map(|i| PortSpec {
                name: format!("in{i}"),
                accepts: Vec::new(),
                required_features: Vec::new(),
            })
            .collect(),
        provides: Vec::new(),
        transfer: None,
        effects: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::prelude::*;

    fn factories() -> BTreeMap<String, ComponentFactory> {
        let mut f: BTreeMap<String, ComponentFactory> = BTreeMap::new();
        f.insert(
            "gps".into(),
            Box::new(|| {
                Box::new(FnSource::new("gps", kinds::RAW_STRING, |_| {
                    Some(Value::from("$GPGGA"))
                }))
            }),
        );
        f.insert(
            "parser".into(),
            Box::new(|| {
                Box::new(FnProcessor::new(
                    "parser",
                    vec![kinds::RAW_STRING],
                    kinds::NMEA_SENTENCE,
                    |i| Some(i.payload.clone()),
                ))
            }),
        );
        f
    }

    #[test]
    fn probe_reads_declared_descriptors() {
        let catalog = TypeCatalog::probe(&factories());
        let gps = catalog.get("gps").expect("gps probed");
        assert_eq!(gps.role, "source");
        assert!(gps.inputs.is_empty());
        assert_eq!(gps.provides, vec!["raw.string".to_string()]);
        let parser = catalog.get("parser").expect("parser probed");
        assert_eq!(parser.role, "processor");
        assert_eq!(parser.inputs.len(), 1);
        assert_eq!(parser.inputs[0].accepts, vec!["raw.string".to_string()]);
    }

    #[test]
    fn application_is_always_known() {
        let catalog = TypeCatalog::new();
        let app = catalog.get("application").expect("built-in");
        assert!(app.is_sink());
        assert!(!app.has_output());
        assert_eq!(app.inputs.len(), 16);
        assert!(app.inputs.iter().all(|p| p.accepts.is_empty()));
    }

    #[test]
    fn catalog_round_trips_through_json() {
        let catalog = TypeCatalog::probe(&factories());
        let json = serde_json::to_string_pretty(&catalog).expect("serializes");
        let back: TypeCatalog = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, catalog);
    }
}
