//! Baseline positioning middlewares for the paper's §3 comparison.
//!
//! Each example in the paper (§3.1–3.3) ends by analysing what the same
//! adaptation would cost in other middleware. To *execute* that analysis
//! rather than argue it, this crate provides minimal but faithful
//! skeletons of the two architecture styles the paper compares against:
//!
//! * [`location_stack`] — a **Location Stack / ULF style** layered
//!   middleware: sensor adapters normalize everything into one fixed
//!   `Measurement` format, a fixed fusion layer merges them, and nothing
//!   below the public position API is inspectable. Low-level seams like
//!   HDOP exist only inside the adapters and are *discarded* at the layer
//!   boundary — extending the format means changing the middleware source
//!   (exactly the §3.1 finding).
//! * [`middlewhere`] — a **MiddleWhere style** world-model middleware:
//!   all position information lives in a central store with spatial
//!   queries; sensors and their configuration are invisible by design
//!   (the §3.3 "this scenario does not apply to their domain" finding).
//! * [`posim`] — a **PoSIM style** translucent middleware: sensor
//!   wrappers may expose custom *info* values and accept *control*
//!   commands, and declarative policies (a small `if <info> <op> <value>
//!   then set <control> <value>` language) mediate between them. What it
//!   cannot do — and what the comparison measures — is reach into the
//!   positioning *process*: info reads are latest-value-only, with no
//!   timing connection to the positions they refer to (§3.2), and
//!   positions already produced cannot be retracted (§3.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod location_stack;
pub mod middlewhere;
pub mod posim;

pub use location_stack::{LocationStack, LsGpsAdapter, LsMeasurement, LsSensor, LsWifiAdapter};
pub use middlewhere::{WorldEntry, WorldModel};
pub use posim::{PoSim, Policy, PolicyError, PosimGpsWrapper, SensorWrapper};
