//! Criterion bench: processing-graph throughput as pipeline depth and
//! merge fan-in grow.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpos_core::prelude::*;

/// Builds a linear pipeline of `depth` pass-through processors.
fn pipeline(depth: usize) -> Middleware {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        Some(Value::Int(i))
    }));
    let mut prev = src;
    for d in 0..depth {
        let node = mw.add_component(FnProcessor::new(
            format!("stage{d}"),
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |item| Some(item.payload.clone()),
        ));
        mw.connect(prev, node, 0).unwrap();
        prev = node;
    }
    let app = mw.application_sink();
    mw.connect(prev, app, 0).unwrap();
    mw
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_step_by_depth");
    for depth in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let mut mw = pipeline(d);
            b.iter(|| {
                mw.step().unwrap();
                mw.advance_clock(SimDuration::from_micros(1));
            });
        });
    }
    group.finish();
}

fn bench_fanin(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_step_by_fanin");
    for sources in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(sources), &sources, |b, &n| {
            let mut mw = Middleware::new();
            let app = mw.application_sink();
            for s in 0..n {
                let mut i = 0i64;
                let src = mw.add_component(FnSource::new(
                    format!("src{s}"),
                    kinds::RAW_STRING,
                    move |_| {
                        i += 1;
                        Some(Value::Int(i))
                    },
                ));
                mw.connect_to_sink(src, app).unwrap();
            }
            b.iter(|| {
                mw.step().unwrap();
                mw.advance_clock(SimDuration::from_micros(1));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth, bench_fanin);
criterion_main!(benches);
