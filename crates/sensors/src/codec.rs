//! Codecs between domain types and the middleware's dynamic [`Value`]
//! representation.
//!
//! NMEA sentences travel the processing graph as `nmea.sentence` items;
//! the payload is the sentence serialized to JSON text, which keeps the
//! middleware core independent of the NMEA model while letting any
//! component or feature recover the full structure.

use perpos_core::prelude::*;
use perpos_nmea::Sentence;

/// Encodes a parsed NMEA sentence as an item payload.
pub fn sentence_to_value(s: &Sentence) -> Value {
    Value::Text(serde_json::to_string(s).expect("sentence serialization is infallible"))
}

/// Decodes an item payload produced by [`sentence_to_value`].
pub fn value_to_sentence(v: &Value) -> Option<Sentence> {
    let text = v.as_text()?;
    serde_json::from_str(text).ok()
}

/// Convenience: decodes the sentence carried by an `nmea.sentence` item.
pub fn sentence_of(item: &DataItem) -> Option<Sentence> {
    if item.kind != kinds::NMEA_SENTENCE {
        return None;
    }
    value_to_sentence(&item.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::SimTime;
    use perpos_nmea::{parse_sentence, Gga};

    #[test]
    fn sentence_round_trip() {
        let line = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";
        let sentence = parse_sentence(line).unwrap();
        let v = sentence_to_value(&sentence);
        assert_eq!(value_to_sentence(&v), Some(sentence));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let v = sentence_to_value(&Sentence::Gga(Gga::default()));
        let item = DataItem::new(kinds::RAW_STRING, SimTime::ZERO, v);
        assert_eq!(sentence_of(&item), None);
    }

    #[test]
    fn all_sentence_types_round_trip() {
        for line in [
            "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47",
            "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A",
            "$GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1*39",
            "$GPGSV,2,1,08,01,40,083,46,02,17,308,41,12,07,344,39,14,22,228,45*75",
            "$GPVTG,054.7,T,034.4,M,005.5,N,010.2,K*48",
        ] {
            let s = parse_sentence(line).unwrap();
            assert_eq!(value_to_sentence(&sentence_to_value(&s)), Some(s), "{line}");
        }
    }

    #[test]
    fn malformed_payload_is_none() {
        assert_eq!(value_to_sentence(&Value::Text("not json".into())), None);
        assert_eq!(value_to_sentence(&Value::Int(1)), None);
    }
}
