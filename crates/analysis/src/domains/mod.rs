//! Concrete abstract domains for the dataflow framework, and the
//! diagnostics (P010–P014) computed from their fixpoints.
//!
//! Each submodule is one lattice with its transfer function:
//!
//! - [`frame`] — coordinate-frame inference (P010): which reference
//!   frame(s) a channel's position data lives in.
//! - [`accuracy`] — achievable-accuracy intervals in metres (P011).
//! - [`taint`] — provenance of raw identifiable sensor data (P012).
//! - [`rate`] — sustained item-rate bounds in items/second (P013) and
//!   predicted channel-buffer overruns (P014).
//!
//! [`infer_facts`] solves all four over one [`FlowGraph`];
//! [`dataflow_diagnostics`] turns the solved facts into a [`Report`];
//! [`facts_json`] renders them as the versioned machine-readable
//! document behind `perpos-lint --facts json`.

pub mod accuracy;
pub mod frame;
pub mod rate;
pub mod taint;

use std::collections::BTreeSet;

use serde::Serialize;

use crate::dataflow::{solve, FlowGraph};
use crate::diagnostic::{canonical_sort, Report, JSON_SCHEMA_VERSION};

/// The solved facts of all four domains over one graph, indexed like
/// [`FlowGraph::nodes`]. Each entry describes the component's *output*
/// (for sinks: what the sink observes).
#[derive(Debug, Clone)]
pub struct GraphFacts {
    /// Coordinate frames the output may carry.
    pub frames: Vec<BTreeSet<String>>,
    /// Achievable accuracy interval `(best, worst)` in metres; `None`
    /// when nothing upstream declares accuracy.
    pub accuracy: Vec<Option<(f64, f64)>>,
    /// Identifiable-data taint: `(kind, origin label)` pairs.
    pub taint: Vec<BTreeSet<(String, String)>>,
    /// Sustained item-rate interval `(lo, hi)` in items/second; `None`
    /// when nothing upstream declares an emit rate.
    pub rate: Vec<Option<(f64, f64)>>,
    /// Whether every solver run reached its fixpoint.
    pub converged: bool,
}

/// Solves all four domains over `graph`.
pub fn infer_facts(graph: &FlowGraph) -> GraphFacts {
    let frames = solve(graph, &frame::FrameDomain);
    let accuracy = solve(graph, &accuracy::AccuracyDomain);
    let taint = solve(graph, &taint::TaintDomain);
    let rate = solve(graph, &rate::RateDomain);
    GraphFacts {
        converged: frames.converged && accuracy.converged && taint.converged && rate.converged,
        frames: frames.facts,
        accuracy: accuracy.facts,
        taint: taint.facts,
        rate: rate.facts,
    }
}

/// Runs the P010–P014 checks over already-solved facts.
pub fn dataflow_diagnostics(graph: &FlowGraph, facts: &GraphFacts) -> Report {
    let mut report = Report::new();
    frame::diagnostics(graph, &facts.frames, &mut report);
    accuracy::diagnostics(graph, &facts.accuracy, &mut report);
    taint::diagnostics(graph, &facts.taint, &mut report);
    rate::diagnostics(graph, &facts.rate, &mut report);
    report
}

/// Convenience: build facts and diagnostics in one call.
pub fn analyze_dataflow(graph: &FlowGraph) -> (GraphFacts, Report) {
    let facts = infer_facts(graph);
    let report = dataflow_diagnostics(graph, &facts);
    (facts, report)
}

/// A finite or right-unbounded interval in the JSON facts document;
/// `hi: null` means unbounded/unknown upper end.
#[derive(Serialize)]
struct JsonInterval {
    lo: f64,
    hi: Option<f64>,
}

impl JsonInterval {
    fn from_pair(pair: (f64, f64)) -> JsonInterval {
        JsonInterval {
            lo: pair.0,
            hi: pair.1.is_finite().then_some(pair.1),
        }
    }
}

#[derive(Serialize)]
struct JsonTaint {
    kind: String,
    origin: String,
}

#[derive(Serialize)]
struct JsonNodeFacts {
    label: String,
    role: String,
    frames: Vec<String>,
    accuracy_m: Option<JsonInterval>,
    taint: Vec<JsonTaint>,
    rate_hz: Option<JsonInterval>,
    /// Predicted seconds until the channel layer's bounded level buffer
    /// first evicts at this node (P014); `null` when no overrun is
    /// predicted.
    overflow_s: Option<f64>,
}

#[derive(Serialize)]
struct JsonEdgeFacts {
    from: String,
    to: String,
    port: u64,
    kinds: Vec<String>,
    frames: Vec<String>,
    taint: Vec<JsonTaint>,
}

#[derive(Serialize)]
struct JsonFleetFacts {
    instances: u64,
    shards: u64,
    checkpoint_every: u64,
    /// Resolved fleet scheduler name (`"serial"`, `"work_stealing"`,
    /// `"permuted"`).
    scheduler: String,
    /// The *requested* worker cap — `0` means machine-sized under
    /// `work_stealing`, `1` for the serial-execution schedulers. The
    /// machine-resolved count is deliberately not recorded: the facts
    /// document must be byte-reproducible across hosts.
    workers: u64,
}

/// One node's declared effects, with the `Option` defaults resolved
/// (absent = pure/deterministic/snapshot-safe). Only nodes declaring
/// *some* effect appear in the document.
#[derive(Serialize)]
struct JsonNodeEffects {
    label: String,
    reads: Vec<String>,
    writes: Vec<String>,
    wall_clock: bool,
    io: bool,
    unseeded: bool,
    stateful: bool,
    snapshot_capable: bool,
}

#[derive(Serialize)]
struct JsonWaveConflict {
    wave: u64,
    resource: String,
    kind: String,
    a: String,
    b: String,
}

/// The schema-v6 `effects` block: declared per-node effects plus the
/// wave-interference conflicts (P017 material) found over the
/// level-parallel schedule — reported whatever executor the
/// configuration selects, so tooling can see latent interference.
#[derive(Serialize)]
struct JsonEffectsFacts {
    nodes: Vec<JsonNodeEffects>,
    conflicts: Vec<JsonWaveConflict>,
}

#[derive(Serialize)]
struct JsonFactsDoc {
    schema_version: u64,
    converged: bool,
    executor: String,
    /// The channel layer's per-level pending-buffer bound the
    /// `overflow_s` node predictions are computed against.
    level_buffer_cap: u64,
    /// The resolved fleet deployment when the configuration declares
    /// one (`null` = a single unsupervised instance).
    fleet: Option<JsonFleetFacts>,
    effects: JsonEffectsFacts,
    levels: Vec<Vec<String>>,
    nodes: Vec<JsonNodeFacts>,
    edges: Vec<JsonEdgeFacts>,
}

/// Renders the solved facts as the versioned JSON document served by
/// `perpos-lint --facts json`: per-node output facts plus per-edge views
/// (the producer's facts filtered by what the edge can carry), the
/// executor mode the configuration requests, and the longest-path level
/// structure the level-parallel executor would schedule by.
///
/// Arrays are emitted in canonical order — nodes by label, edges by
/// `(from, to, port)`, each level's members by label — so the document
/// is byte-reproducible across runs regardless of declaration order.
pub fn facts_json(graph: &FlowGraph, facts: &GraphFacts) -> String {
    let mut nodes: Vec<JsonNodeFacts> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| JsonNodeFacts {
            label: n.label.clone(),
            role: n.role.to_string(),
            frames: facts.frames[i].iter().cloned().collect(),
            accuracy_m: facts.accuracy[i].map(JsonInterval::from_pair),
            taint: facts.taint[i]
                .iter()
                .map(|(kind, origin)| JsonTaint {
                    kind: kind.clone(),
                    origin: origin.clone(),
                })
                .collect(),
            rate_hz: facts.rate[i].map(JsonInterval::from_pair),
            overflow_s: rate::node_overflow_s(graph, &facts.rate, i),
        })
        .collect();
    canonical_sort(&mut nodes, |n| n.label.clone());
    let mut edges: Vec<JsonEdgeFacts> = graph
        .edges
        .iter()
        .enumerate()
        .map(|(e, edge)| {
            let kinds = graph.edge_kinds(e);
            JsonEdgeFacts {
                from: graph.nodes[edge.from].label.clone(),
                to: graph.nodes[edge.to].label.clone(),
                port: edge.port as u64,
                frames: facts.frames[edge.from].iter().cloned().collect(),
                taint: facts.taint[edge.from]
                    .iter()
                    .filter(|(kind, _)| kinds.contains(kind))
                    .map(|(kind, origin)| JsonTaint {
                        kind: kind.clone(),
                        origin: origin.clone(),
                    })
                    .collect(),
                kinds,
            }
        })
        .collect();
    canonical_sort(&mut edges, |e| (e.from.clone(), e.to.clone(), e.port));
    let mut effect_nodes: Vec<JsonNodeEffects> = graph
        .nodes
        .iter()
        .filter(|n| !n.effects.is_empty())
        .map(|n| JsonNodeEffects {
            label: n.label.clone(),
            reads: n.effects.reads.clone().unwrap_or_default(),
            writes: n.effects.writes.clone().unwrap_or_default(),
            wall_clock: n.effects.wall_clock.unwrap_or(false),
            io: n.effects.io.unwrap_or(false),
            unseeded: n.effects.unseeded.unwrap_or(false),
            stateful: n.effects.stateful.unwrap_or(false),
            snapshot_capable: n.effects.snapshot_capable.unwrap_or(false),
        })
        .collect();
    canonical_sort(&mut effect_nodes, |n| n.label.clone());
    let conflicts = crate::effects::wave_conflicts(graph)
        .into_iter()
        .map(|c| JsonWaveConflict {
            wave: c.wave as u64,
            resource: c.resource,
            kind: c.kind.as_str().to_string(),
            a: c.a,
            b: c.b,
        })
        .collect();
    let doc = JsonFactsDoc {
        schema_version: u64::from(JSON_SCHEMA_VERSION),
        converged: facts.converged,
        executor: graph
            .executor
            .clone()
            .unwrap_or_else(|| "sequential".into()),
        level_buffer_cap: perpos_core::channel::LEVEL_BUFFER_CAP as u64,
        fleet: graph.fleet.as_ref().map(|spec| {
            let resolved = spec.to_fleet_config();
            JsonFleetFacts {
                instances: resolved.instances as u64,
                shards: resolved.shards as u64,
                checkpoint_every: resolved.checkpoint_every,
                scheduler: resolved.scheduler.as_str().to_string(),
                workers: resolved.scheduler.requested_workers() as u64,
            }
        }),
        effects: JsonEffectsFacts {
            nodes: effect_nodes,
            conflicts,
        },
        levels: graph
            .topo_levels()
            .into_iter()
            .map(|lvl| {
                let mut labels: Vec<String> = lvl
                    .into_iter()
                    .map(|i| graph.nodes[i].label.clone())
                    .collect();
                canonical_sort(&mut labels, Clone::clone);
                labels
            })
            .collect(),
        nodes,
        edges,
    };
    serde_json::to_string_pretty(&doc).expect("facts document is plain data and always serializes")
}
