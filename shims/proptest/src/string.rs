//! Regex-literal string generation for the proptest shim.
//!
//! Supports the subset the workspace's properties use: literal characters,
//! `.`, character classes `[...]` with ranges, groups `(...)`, escapes, and
//! the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+`. Alternation (`|`) and
//! anchors are not supported and panic at sample time — a loud failure is
//! better than silently generating non-matching inputs.

use crate::rng::SampleRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A single fixed character.
    Literal(char),
    /// `.` — any printable character (no newline, like regex `.`).
    AnyChar,
    /// `[...]` — one character from a set of inclusive ranges.
    Class(Vec<(char, char)>),
    /// `(...)` — a nested pattern, re-sampled per repetition.
    Group(Vec<Quantified>),
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on regex constructs outside the supported subset.
pub fn sample_regex(pattern: &str, rng: &mut SampleRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (seq, consumed) = parse_sequence(&chars, 0, pattern);
    assert!(
        consumed == chars.len(),
        "unsupported regex construct at offset {consumed} in {pattern:?}"
    );
    let mut out = String::new();
    emit_sequence(&seq, rng, &mut out);
    out
}

fn parse_sequence(chars: &[char], mut i: usize, pattern: &str) -> (Vec<Quantified>, usize) {
    let mut seq = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            ')' => break,
            '(' => {
                let (inner, next) = parse_sequence(chars, i + 1, pattern);
                assert!(
                    next < chars.len() && chars[next] == ')',
                    "unclosed group in regex {pattern:?}"
                );
                i = next + 1;
                Atom::Group(inner)
            }
            '[' => {
                let (class, next) = parse_class(chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "trailing backslash in regex {pattern:?}"
                );
                let c = chars[i + 1];
                i += 2;
                match c {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('0', '9'), ('A', 'Z'), ('a', 'z'), ('_', '_')]),
                    's' => Atom::Class(vec![(' ', ' '), ('\t', '\t')]),
                    _ => Atom::Literal(c),
                }
            }
            '|' | '^' | '$' => {
                panic!("unsupported regex construct {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(chars, i, pattern);
        i = next;
        seq.push(Quantified { atom, min, max });
    }
    (seq, i)
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    assert!(
        i < chars.len() && chars[i] != '^',
        "negated classes unsupported in regex {pattern:?}"
    );
    let mut ranges = Vec::new();
    let start = i;
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // '-' is a literal at the start of the class.
        if chars[i] == '-' && i == start {
            ranges.push(('-', '-'));
            i += 1;
            continue;
        }
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in regex {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(i < chars.len(), "unclosed class in regex {pattern:?}");
    (ranges, i + 1)
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    if i >= chars.len() {
        return (1, 1, i);
    }
    match chars[i] {
        '?' => (0, 1, i + 1),
        '*' => (0, 8, i + 1),
        '+' => (1, 8, i + 1),
        '{' => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}"));
                    (n, n)
                }
                Some((lo, hi)) => {
                    let min = lo
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}"));
                    let max = if hi.is_empty() {
                        min + 8
                    } else {
                        hi.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}"))
                    };
                    (min, max)
                }
            };
            assert!(min <= max, "inverted quantifier in regex {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn emit_sequence(seq: &[Quantified], rng: &mut SampleRng, out: &mut String) {
    for q in seq {
        let n = q.min + rng.below(q.max - q.min + 1);
        for _ in 0..n {
            emit_atom(&q.atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut SampleRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::AnyChar => {
            // Mostly printable ASCII; occasionally a non-ASCII BMP char so
            // UTF-8 paths get exercised.
            if rng.below(16) == 0 {
                let c = char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('¿');
                out.push(c);
            } else {
                out.push((0x20 + rng.below(0x5F)) as u8 as char);
            }
        }
        Atom::Class(ranges) => {
            let total: usize = ranges
                .iter()
                .map(|(lo, hi)| (*hi as usize) - (*lo as usize) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as usize) - (*lo as usize) + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                    break;
                }
                pick -= span;
            }
        }
        Atom::Group(inner) => emit_sequence(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::sample_regex;
    use crate::rng::SampleRng;

    #[test]
    fn literals_pass_through() {
        let mut rng = SampleRng::seeded(1);
        assert_eq!(sample_regex("abc", &mut rng), "abc");
    }

    #[test]
    fn quantifiers_bound_length() {
        let mut rng = SampleRng::seeded(2);
        for _ in 0..100 {
            let s = sample_regex("a{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b == b'a'));
        }
    }

    #[test]
    fn classes_respect_ranges_and_leading_dash() {
        let mut rng = SampleRng::seeded(3);
        for _ in 0..200 {
            let s = sample_regex("[-0-9A-Za-z.]", &mut rng);
            let c = s.chars().next().unwrap();
            assert!(c == '-' || c == '.' || c.is_ascii_alphanumeric(), "{c:?}");
        }
    }

    #[test]
    fn groups_resample_per_repetition() {
        let mut rng = SampleRng::seeded(4);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let s = sample_regex("(ab){0,3}", &mut rng);
            assert_eq!(s.len() % 2, 0);
            assert!(s.len() <= 6);
            lens.insert(s.len());
        }
        assert!(lens.len() > 1, "quantifier never varied");
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_is_loudly_rejected() {
        let mut rng = SampleRng::seeded(5);
        sample_regex("a|b", &mut rng);
    }
}
