//! The Process Structure Layer: the positioning process reified as a
//! graph of Processing Components (paper §2.1).
//!
//! The [`ProcessingGraph`] is the most detailed of the three PerPos views.
//! It supports the manipulation API the paper names — *insert*, *delete*
//! and *connect* — validates every connection against declared port
//! requirements and capabilities (including Component Feature
//! dependencies), keeps the process acyclic, and exposes full reflective
//! inspection of components and their attached features.

use std::collections::BTreeMap;
use std::fmt;

use crate::component::{Component, ComponentDescriptor, ComponentRole, MethodSpec};
use crate::data::DataItem;
use crate::data::{DataKind, Value};
use crate::feature::{ComponentFeature, FeatureDescriptor, FeatureHost};
use crate::CoreError;

/// Identifier of a node in the processing graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Dense small-integer view of the id (ids are allocated
    /// sequentially), used for O(1) side tables like the channel layer's
    /// membership index.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

pub(crate) struct FeatureSlot {
    pub descriptor: FeatureDescriptor,
    pub feature: Box<dyn ComponentFeature>,
}

pub(crate) struct Node {
    pub component: Box<dyn Component>,
    pub descriptor: ComponentDescriptor,
    pub features: Vec<FeatureSlot>,
    /// Producer wired to each input port.
    pub inputs: Vec<Option<NodeId>>,
    /// Consumers of the output port as `(node, port)`.
    pub outputs: Vec<(NodeId, usize)>,
    /// Cached effective output kinds (declared plus feature-added);
    /// recomputed only when a feature is attached or detached, so the
    /// per-item connect/accepts checks on the hot path stay
    /// allocation-free.
    provides: Vec<DataKind>,
    /// Per input port, the accepted kinds as dense ids into the graph's
    /// kind table (`None` = the port accepts any kind). Rebuilt by
    /// [`ProcessingGraph::refresh_kind_table`] on every structural
    /// mutation, so edge routing compares `u16`s instead of strings.
    pub(crate) accept_ids: Vec<Option<Box<[u16]>>>,
}

impl Node {
    fn new(component: Box<dyn Component>) -> Self {
        let descriptor = component.descriptor();
        let inputs = vec![None; descriptor.inputs.len()];
        let mut node = Node {
            component,
            descriptor,
            features: Vec::new(),
            inputs,
            outputs: Vec::new(),
            provides: Vec::new(),
            accept_ids: Vec::new(),
        };
        node.refresh_provides();
        node
    }

    /// The kinds this node can produce: declared output capabilities plus
    /// everything its attached features may add (paper §2.1: "When adding
    /// data the capabilities of the output port is changed").
    pub(crate) fn effective_provides(&self) -> &[DataKind] {
        &self.provides
    }

    /// Rebuilds the cached `provides` set; called whenever the feature
    /// set changes.
    fn refresh_provides(&mut self) {
        let mut kinds: Vec<DataKind> = self
            .descriptor
            .output
            .as_ref()
            .map(|o| o.provides.clone())
            .unwrap_or_default();
        for slot in &self.features {
            for k in &slot.descriptor.adds_kinds {
                if !kinds.contains(k) {
                    kinds.push(k.clone());
                }
            }
        }
        self.provides = kinds;
    }

    fn feature_names(&self) -> Vec<String> {
        self.features
            .iter()
            .map(|s| s.descriptor.name.clone())
            .collect()
    }
}

/// Read-only summary of a node, returned by the inspection API.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// The node id.
    pub id: NodeId,
    /// The component's declaration.
    pub descriptor: ComponentDescriptor,
    /// Descriptors of attached features, in attachment order.
    pub features: Vec<FeatureDescriptor>,
    /// Producer connected to each input port.
    pub inputs: Vec<Option<NodeId>>,
    /// Consumers of the output port as `(node, port)` pairs.
    pub outputs: Vec<(NodeId, usize)>,
}

/// Dense node storage: a vector slotted by [`NodeId::index`]. Node ids
/// are allocated sequentially and never reused, so the id doubles as the
/// slot index — the engine's per-item node lookups are two array reads
/// instead of a `BTreeMap` descent. The API mirrors the `BTreeMap` the
/// graph used before (iteration stays ordered by id: slot order *is* id
/// order); removed nodes leave a `None` slot behind.
#[derive(Default)]
struct NodeStore {
    slots: Vec<Option<(NodeId, Node)>>,
    len: usize,
}

impl NodeStore {
    fn insert(&mut self, id: NodeId, node: Node) {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        if self.slots[idx].replace((id, node)).is_none() {
            self.len += 1;
        }
    }

    fn remove(&mut self, id: &NodeId) -> Option<Node> {
        let taken = self.slots.get_mut(id.index())?.take()?;
        self.len -= 1;
        Some(taken.1)
    }

    fn get(&self, id: &NodeId) -> Option<&Node> {
        self.slots.get(id.index())?.as_ref().map(|(_, n)| n)
    }

    fn get_mut(&mut self, id: &NodeId) -> Option<&mut Node> {
        self.slots.get_mut(id.index())?.as_mut().map(|(_, n)| n)
    }

    fn contains_key(&self, id: &NodeId) -> bool {
        self.get(id).is_some()
    }

    fn keys(&self) -> impl Iterator<Item = &NodeId> {
        self.slots.iter().flatten().map(|(id, _)| id)
    }

    fn values_mut(&mut self) -> impl Iterator<Item = &mut Node> {
        self.slots.iter_mut().flatten().map(|(_, n)| n)
    }

    fn iter(&self) -> impl Iterator<Item = (&NodeId, &Node)> {
        self.slots.iter().flatten().map(|(id, n)| (id, n))
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (&NodeId, &mut Node)> {
        self.slots.iter_mut().flatten().map(|(id, n)| (&*id, n))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Index<&NodeId> for NodeStore {
    type Output = Node;
    fn index(&self, id: &NodeId) -> &Node {
        self.get(id).expect("indexed node exists")
    }
}

impl<'a> IntoIterator for &'a NodeStore {
    type Item = (&'a NodeId, &'a Node);
    type IntoIter = Box<dyn Iterator<Item = (&'a NodeId, &'a Node)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// The reified positioning process: a DAG of Processing Components with
/// data flowing from source leaves towards application sinks.
///
/// ```
/// use perpos_core::prelude::*;
///
/// let mut g = ProcessingGraph::new();
/// let gps = g.add(Box::new(FnSource::new("gps", kinds::RAW_STRING, |_| {
///     Some(Value::from("$GPGGA,..."))
/// })));
/// let parser = g.add(Box::new(FnProcessor::new(
///     "parser",
///     vec![kinds::RAW_STRING],
///     kinds::NMEA_SENTENCE,
///     |item| Some(item.payload.clone()),
/// )));
/// g.connect(gps, parser, 0)?;
/// assert_eq!(g.downstream(gps), vec![(parser, 0)]);
/// # Ok::<(), perpos_core::CoreError>(())
/// ```
#[derive(Default)]
pub struct ProcessingGraph {
    nodes: NodeStore,
    next_id: u64,
    /// Cached topological levels (see [`ProcessingGraph::topo_levels`]);
    /// invalidated by every structural mutation (add / remove / connect /
    /// disconnect) and recomputed lazily on next access.
    levels: Option<Vec<Vec<NodeId>>>,
    /// The interned kind namespace: every kind string any input port
    /// accepts, sorted, so `id = sorted index`. Rebuilt eagerly with
    /// each structural mutation; per-item routing then resolves an
    /// item's kind to an id once and compares `u16`s per edge.
    kind_names: Vec<Box<str>>,
}

impl fmt::Debug for ProcessingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessingGraph")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl ProcessingGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ProcessingGraph::default()
    }

    /// Adds a component as a new, unconnected node.
    pub fn add(&mut self, component: Box<dyn Component>) -> NodeId {
        self.next_id += 1;
        let id = NodeId(self.next_id);
        self.nodes.insert(id, Node::new(component));
        self.levels = None;
        self.refresh_kind_table();
        id
    }

    /// Removes a node, disconnecting all its edges, and returns the
    /// component.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] when the node does not exist.
    pub fn remove(&mut self, id: NodeId) -> Result<Box<dyn Component>, CoreError> {
        let node = self.nodes.remove(&id).ok_or(CoreError::UnknownNode(id))?;
        for other in self.nodes.values_mut() {
            other.outputs.retain(|(t, _)| *t != id);
            for slot in other.inputs.iter_mut() {
                if *slot == Some(id) {
                    *slot = None;
                }
            }
        }
        self.levels = None;
        self.refresh_kind_table();
        Ok(node.component)
    }

    /// Connects `from`'s output port to input port `port` of `to`.
    ///
    /// Validates, in order: node existence, port existence and vacancy,
    /// producer output existence, kind compatibility (the port must accept
    /// at least one kind the producer — including its features — can
    /// provide), Component Feature dependencies declared by the port, and
    /// acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`CoreError`] variant for each violated
    /// check.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) -> Result<(), CoreError> {
        if !self.nodes.contains_key(&from) {
            return Err(CoreError::UnknownNode(from));
        }
        let to_node = self.nodes.get(&to).ok_or(CoreError::UnknownNode(to))?;
        let spec = to_node
            .descriptor
            .inputs
            .get(port)
            .ok_or(CoreError::UnknownPort { node: to, port })?
            .clone();
        if to_node.inputs[port].is_some() {
            return Err(CoreError::PortOccupied { node: to, port });
        }
        let from_node = &self.nodes[&from];
        if from_node.descriptor.output.is_none() {
            return Err(CoreError::NoOutput(from));
        }
        let provides = from_node.effective_provides();
        if !spec.accepts.is_empty() && !provides.iter().any(|k| spec.accepts.contains(k)) {
            return Err(CoreError::IncompatibleConnection {
                from,
                to,
                accepts: spec.accepts.clone(),
                provides: provides.to_vec(),
            });
        }
        let feature_names = from_node.feature_names();
        for required in &spec.required_features {
            if !feature_names.iter().any(|n| n == required) {
                return Err(CoreError::MissingFeature {
                    node: to,
                    feature: required.clone(),
                });
            }
        }
        if from == to || self.reaches(to, from) {
            return Err(CoreError::CycleDetected { from, to });
        }
        self.nodes
            .get_mut(&from)
            .ok_or(CoreError::UnknownNode(from))?
            .outputs
            .push((to, port));
        self.nodes
            .get_mut(&to)
            .ok_or(CoreError::UnknownNode(to))?
            .inputs[port] = Some(from);
        self.levels = None;
        self.refresh_kind_table();
        Ok(())
    }

    /// Disconnects input port `port` of `to`, returning the producer that
    /// was connected.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] / [`CoreError::UnknownPort`] for
    /// bad coordinates; disconnecting an unconnected port is a no-op
    /// returning `None`.
    pub fn disconnect(&mut self, to: NodeId, port: usize) -> Result<Option<NodeId>, CoreError> {
        let to_node = self.nodes.get_mut(&to).ok_or(CoreError::UnknownNode(to))?;
        if port >= to_node.inputs.len() {
            return Err(CoreError::UnknownPort { node: to, port });
        }
        let producer = to_node.inputs[port].take();
        if let Some(p) = producer {
            if let Some(pn) = self.nodes.get_mut(&p) {
                pn.outputs.retain(|(t, pt)| !(*t == to && *pt == port));
            }
        }
        self.levels = None;
        self.refresh_kind_table();
        Ok(producer)
    }

    /// Inserts `new` between `from` and `(to, port)`: the existing edge is
    /// replaced by `from -> new(0)` and `new -> to(port)`.
    ///
    /// This is the primitive behind the paper's §3.1 example, where a
    /// satellite-count filter is inserted after the Parser component.
    ///
    /// # Errors
    ///
    /// Fails (leaving the graph unchanged) when the edge does not exist
    /// or either new connection would be invalid; on a mid-way failure the
    /// original edge is restored.
    pub fn insert_between(
        &mut self,
        new: NodeId,
        from: NodeId,
        to: NodeId,
        port: usize,
    ) -> Result<(), CoreError> {
        let producer = self
            .nodes
            .get(&to)
            .ok_or(CoreError::UnknownNode(to))?
            .inputs
            .get(port)
            .copied()
            .flatten();
        if producer != Some(from) {
            return Err(CoreError::IncompatibleConnection {
                from,
                to,
                accepts: vec![],
                provides: vec![],
            });
        }
        self.disconnect(to, port)?;
        // Rollbacks re-create the edge that was just removed; they can
        // only fail if graph invariants are already broken, in which case
        // the error propagates instead of panicking.
        if let Err(e) = self.connect(from, new, 0) {
            self.connect(from, to, port)?;
            return Err(e);
        }
        if let Err(e) = self.connect(new, to, port) {
            self.disconnect(new, 0)?;
            self.connect(from, to, port)?;
            return Err(e);
        }
        Ok(())
    }

    /// Attaches a Component Feature to a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] when the node does not exist.
    pub fn attach_feature(
        &mut self,
        id: NodeId,
        feature: Box<dyn ComponentFeature>,
    ) -> Result<(), CoreError> {
        let node = self.nodes.get_mut(&id).ok_or(CoreError::UnknownNode(id))?;
        node.features.push(FeatureSlot {
            descriptor: feature.descriptor(),
            feature,
        });
        node.refresh_provides();
        Ok(())
    }

    /// Detaches a feature by name, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when no such feature is
    /// attached.
    pub fn detach_feature(
        &mut self,
        id: NodeId,
        name: &str,
    ) -> Result<Box<dyn ComponentFeature>, CoreError> {
        let node = self.nodes.get_mut(&id).ok_or(CoreError::UnknownNode(id))?;
        let idx = node
            .features
            .iter()
            .position(|s| s.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: node.descriptor.name.clone(),
                feature: name.to_string(),
            })?;
        let feature = node.features.remove(idx).feature;
        node.refresh_provides();
        Ok(feature)
    }

    /// Rebuilds the dense kind-id table: collects every kind string any
    /// input port accepts, sorts it, and stores each port's accepted set
    /// as ids into that table. Runs on structural mutation (the kind
    /// namespace is closed between mutations), so per-item routing pays
    /// one id resolution per item and a `u16` comparison per edge.
    fn refresh_kind_table(&mut self) {
        let mut names: Vec<Box<str>> = Vec::new();
        for (_, node) in self.nodes.iter() {
            for spec in &node.descriptor.inputs {
                for kind in &spec.accepts {
                    if !names.iter().any(|n| n.as_ref() == kind.as_str()) {
                        names.push(kind.as_str().into());
                    }
                }
            }
        }
        names.sort_unstable();
        debug_assert!(
            names.len() <= u16::MAX as usize,
            "kind namespace exceeds the dense u16 id space"
        );
        for node in self.nodes.values_mut() {
            node.accept_ids = node
                .descriptor
                .inputs
                .iter()
                .map(|spec| {
                    if spec.accepts.is_empty() {
                        None // accepts any kind
                    } else {
                        Some(
                            spec.accepts
                                .iter()
                                .filter_map(|k| {
                                    names
                                        .binary_search_by(|n| n.as_ref().cmp(k.as_str()))
                                        .ok()
                                        .map(|i| i as u16)
                                })
                                .collect(),
                        )
                    }
                })
                .collect();
        }
        self.kind_names = names;
    }

    /// Resolves a kind to its dense id, if any input port in the graph
    /// accepts it by name. Kinds outside the table can only be consumed
    /// by accepts-any ports.
    pub fn kind_id(&self, kind: &DataKind) -> Option<u16> {
        self.kind_names
            .binary_search_by(|n| n.as_ref().cmp(kind.as_str()))
            .ok()
            .map(|i| i as u16)
    }

    /// The interned kind namespace as `(name, id)` pairs, for
    /// diagnostics.
    pub fn kind_table(&self) -> impl Iterator<Item = (&str, u16)> {
        self.kind_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_ref(), i as u16))
    }

    /// Whether `target` declares an input at `port` accepting the kind
    /// with dense id `kind_id` — the routing-hot-path equivalent of the
    /// string-comparing `InputSpec::accepts_kind`.
    pub(crate) fn accepts_by_id(
        &self,
        target: NodeId,
        port: usize,
        kind_id: Option<u16>,
    ) -> bool {
        match self.nodes.get(&target).and_then(|n| n.accept_ids.get(port)) {
            Some(None) => true,
            Some(Some(ids)) => kind_id.is_some_and(|k| ids.contains(&k)),
            None => false,
        }
    }

    /// All node ids in insertion order, without allocating.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the node exists.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Full inspection record for a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] when the node does not exist.
    pub fn info(&self, id: NodeId) -> Result<NodeInfo, CoreError> {
        let node = self.nodes.get(&id).ok_or(CoreError::UnknownNode(id))?;
        Ok(NodeInfo {
            id,
            descriptor: node.descriptor.clone(),
            features: node.features.iter().map(|s| s.descriptor.clone()).collect(),
            inputs: node.inputs.clone(),
            outputs: node.outputs.clone(),
        })
    }

    /// The `(consumer, port)` edges leaving a node's output. Borrowed —
    /// the step loop consults this per routed item, so no allocation.
    pub fn downstream(&self, id: NodeId) -> &[(NodeId, usize)] {
        self.nodes
            .get(&id)
            .map(|n| n.outputs.as_slice())
            .unwrap_or(&[])
    }

    /// The producers wired to each input port of a node. Borrowed; an
    /// unknown node yields the empty slice.
    pub fn upstream(&self, id: NodeId) -> &[Option<NodeId>] {
        self.nodes
            .get(&id)
            .map(|n| n.inputs.as_slice())
            .unwrap_or(&[])
    }

    /// Ids of all source nodes (role [`ComponentRole::Source`]).
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.descriptor.role == ComponentRole::Source)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of all sink nodes (role [`ComponentRole::Sink`]).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.descriptor.role == ComponentRole::Sink)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Reflectively invokes a method on a node. The call is dispatched to
    /// the component first; if it does not know the method, the attached
    /// features are tried in attachment order — so "the component will to
    /// its surroundings appear to implement the functionality provided by
    /// the feature" (paper §2.1).
    ///
    /// Returns the method result plus any data the features emitted while
    /// handling the call (data a feature adds "as if produced by the
    /// component" — the caller is responsible for routing it, which
    /// [`crate::Middleware`] does automatically).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] when neither the component nor
    /// any feature handles the method.
    pub fn invoke(
        &mut self,
        id: NodeId,
        method: &str,
        args: &[Value],
        now: crate::SimTime,
    ) -> Result<(Value, Vec<DataItem>), CoreError> {
        let node = self.nodes.get_mut(&id).ok_or(CoreError::UnknownNode(id))?;
        match node.component.invoke(method, args) {
            Err(CoreError::NoSuchMethod { .. }) => {}
            other => return other.map(|v| (v, Vec::new())),
        }
        let target = node.descriptor.name.clone();
        let component = &mut node.component;
        let features = &mut node.features;
        let mut emitted = Vec::new();
        for slot in features.iter_mut() {
            let mut host = FeatureHost::new(component.as_mut(), now);
            let result = slot.feature.invoke(method, args, &mut host);
            emitted.extend(host.take_emitted());
            match result {
                Err(CoreError::NoSuchMethod { .. }) => continue,
                other => return other.map(|v| (v, emitted)),
            }
        }
        Err(CoreError::NoSuchMethod {
            target,
            method: method.to_string(),
        })
    }

    /// Reflectively invokes a method on a specific attached feature,
    /// returning the result plus any data the feature emitted.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when the feature is not
    /// attached, or the feature's own error.
    pub fn invoke_feature(
        &mut self,
        id: NodeId,
        feature: &str,
        method: &str,
        args: &[Value],
        now: crate::SimTime,
    ) -> Result<(Value, Vec<DataItem>), CoreError> {
        let node = self.nodes.get_mut(&id).ok_or(CoreError::UnknownNode(id))?;
        let target = node.descriptor.name.clone();
        let component = &mut node.component;
        let features = &mut node.features;
        let slot = features
            .iter_mut()
            .find(|s| s.descriptor.name == feature)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target,
                feature: feature.to_string(),
            })?;
        let mut host = FeatureHost::new(component.as_mut(), now);
        let result = slot.feature.invoke(method, args, &mut host);
        let emitted = host.take_emitted();
        result.map(|v| (v, emitted))
    }

    /// All methods a node appears to implement: the component's own plus
    /// every attached feature's.
    pub fn methods(&self, id: NodeId) -> Result<Vec<MethodSpec>, CoreError> {
        let node = self.nodes.get(&id).ok_or(CoreError::UnknownNode(id))?;
        let mut out = node.component.methods();
        for slot in &node.features {
            out.extend(slot.descriptor.methods.iter().cloned());
        }
        Ok(out)
    }

    /// Typed access to an attached feature (mirrors the paper's Java
    /// `component.getFeature(HDOP.class)` idiom).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when no feature named
    /// `name` of type `T` is attached.
    pub fn with_feature_mut<T: 'static, R>(
        &mut self,
        id: NodeId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, CoreError> {
        let node = self.nodes.get_mut(&id).ok_or(CoreError::UnknownNode(id))?;
        let target = node.descriptor.name.clone();
        let slot = node
            .features
            .iter_mut()
            .find(|s| s.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: target.clone(),
                feature: name.to_string(),
            })?;
        let typed =
            slot.feature
                .as_any_mut()
                .downcast_mut::<T>()
                .ok_or(CoreError::UnknownFeatureName {
                    target,
                    feature: name.to_string(),
                })?;
        Ok(f(typed))
    }

    /// The kinds a node can currently provide (declared plus
    /// feature-added). Borrowed from the node's cache; an unknown node
    /// yields the empty slice.
    pub fn effective_provides(&self, id: NodeId) -> &[DataKind] {
        self.nodes
            .get(&id)
            .map(|n| n.effective_provides())
            .unwrap_or(&[])
    }

    /// Topological levels of the graph: level 0 holds the nodes with no
    /// wired producers, and every other node sits one level below its
    /// deepest producer (longest-path layering). Within a level, nodes
    /// are in id order.
    ///
    /// All nodes of one level are mutually independent — none is
    /// (transitively) upstream of another — which is exactly the
    /// property the level-parallel executor relies on. The result is
    /// computed once and cached; any structural mutation (add, remove,
    /// connect, disconnect) invalidates the cache.
    pub fn topo_levels(&mut self) -> &[Vec<NodeId>] {
        if self.levels.is_none() {
            self.levels = Some(self.compute_levels());
        }
        self.levels.as_deref().unwrap_or(&[])
    }

    /// Node ids in a topological order (levels flattened); cached like
    /// [`ProcessingGraph::topo_levels`].
    pub fn topo_order(&mut self) -> impl Iterator<Item = NodeId> + '_ {
        self.topo_levels().iter().flatten().copied()
    }

    /// The maximum number of nodes in any one topological level — the
    /// graph's parallelism width. 1 means a purely linear process.
    pub fn level_width(&mut self) -> usize {
        self.topo_levels().iter().map(Vec::len).max().unwrap_or(0)
    }

    fn compute_levels(&self) -> Vec<Vec<NodeId>> {
        let mut level: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut pending: Vec<NodeId> = self.nodes.keys().copied().collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|id| {
                let node = &self.nodes[id];
                let mut lvl = 0usize;
                for producer in node.inputs.iter().flatten() {
                    if !self.nodes.contains_key(producer) {
                        continue;
                    }
                    match level.get(producer) {
                        Some(l) => lvl = lvl.max(l + 1),
                        None => return true, // producer not layered yet
                    }
                }
                level.insert(*id, lvl);
                false
            });
            if pending.len() == before {
                // Unreachable for a live graph (acyclic by construction);
                // keep the layering total rather than panicking.
                for id in pending.drain(..) {
                    level.insert(id, 0);
                }
            }
        }
        let depth = level.values().copied().max().map(|m| m + 1).unwrap_or(0);
        let mut levels = vec![Vec::new(); depth];
        for (id, l) in level {
            levels[l].push(id);
        }
        levels
    }

    /// Whether `to` is reachable from `from` following output edges.
    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let mut stack = vec![from];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(node) = self.nodes.get(&n) {
                    stack.extend(node.outputs.iter().map(|(t, _)| *t));
                }
            }
        }
        false
    }

    pub(crate) fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(&id)
    }

    /// Disjoint mutable access to every node at once — the parallel
    /// executor hands each worker its own `&mut Node`. Does not permit
    /// structural mutation, so the level cache stays valid.
    pub(crate) fn nodes_iter_mut(&mut self) -> impl Iterator<Item = (&NodeId, &mut Node)> {
        self.nodes.iter_mut()
    }

    /// Renders the graph as an indented ASCII tree rooted at the sinks —
    /// the developer-facing "seamful" visualization of the process.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for sink in self.sinks() {
            self.render_node(sink, 0, &mut out);
        }
        out
    }

    /// Renders the graph in Graphviz DOT format — the machine-readable
    /// counterpart of [`ProcessingGraph::render_tree`] for authoring
    /// tools (paper intro ref. \[2\]).
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph perpos {\n  rankdir=LR;\n");
        for (id, node) in &self.nodes {
            let shape = match node.descriptor.role {
                ComponentRole::Source => "ellipse",
                ComponentRole::Processor => "box",
                ComponentRole::Merge => "diamond",
                ComponentRole::Sink => "doubleoctagon",
            };
            let features = if node.features.is_empty() {
                String::new()
            } else {
                format!("\\n+{}", node.feature_names().join(", "))
            };
            out.push_str(&format!(
                "  n{id} [label=\"{}{features}\", shape={shape}];\n",
                node.descriptor.name,
                id = id.0,
            ));
        }
        for (id, node) in &self.nodes {
            for (target, port) in &node.outputs {
                out.push_str(&format!(
                    "  n{} -> n{} [label=\"p{port}\"];\n",
                    id.0, target.0
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        let Some(node) = self.nodes.get(&id) else {
            return;
        };
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} [{}] ({})",
            node.descriptor.name, node.descriptor.role, id
        ));
        if !node.features.is_empty() {
            out.push_str(&format!(" +features {:?}", node.feature_names()));
        }
        out.push('\n');
        for producer in node.inputs.iter().flatten() {
            self.render_node(*producer, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCtx, FnProcessor, FnSource, InputSpec, MethodSpec};
    use crate::data::{kinds, DataItem};
    use crate::feature::{FeatureAction, FeatureHost, TagFeature};
    use std::any::Any;

    fn source(g: &mut ProcessingGraph, name: &str, kind: DataKind) -> NodeId {
        g.add(Box::new(FnSource::new(name, kind, |_| None)))
    }

    fn processor(
        g: &mut ProcessingGraph,
        name: &str,
        accepts: DataKind,
        provides: DataKind,
    ) -> NodeId {
        g.add(Box::new(FnProcessor::new(
            name,
            vec![accepts],
            provides,
            |_| None,
        )))
    }

    struct Sink;
    impl crate::component::Component for Sink {
        fn descriptor(&self) -> ComponentDescriptor {
            ComponentDescriptor::sink("app", InputSpec::new("in", vec![]))
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
    }

    #[test]
    fn connect_validates_kinds() {
        let mut g = ProcessingGraph::new();
        let gps = source(&mut g, "gps", kinds::RAW_STRING);
        let parser = processor(&mut g, "parser", kinds::RAW_STRING, kinds::NMEA_SENTENCE);
        let interp = processor(
            &mut g,
            "interp",
            kinds::NMEA_SENTENCE,
            kinds::POSITION_WGS84,
        );
        g.connect(gps, parser, 0).unwrap();
        // gps provides raw.string, interp accepts nmea.sentence only.
        assert!(matches!(
            g.connect(gps, interp, 0),
            Err(CoreError::IncompatibleConnection { .. })
        ));
        g.connect(parser, interp, 0).unwrap();
    }

    #[test]
    fn port_occupancy_and_bounds() {
        let mut g = ProcessingGraph::new();
        let a = source(&mut g, "a", kinds::RAW_STRING);
        let b = source(&mut g, "b", kinds::RAW_STRING);
        let p = processor(&mut g, "p", kinds::RAW_STRING, kinds::NMEA_SENTENCE);
        g.connect(a, p, 0).unwrap();
        assert!(matches!(
            g.connect(b, p, 0),
            Err(CoreError::PortOccupied { .. })
        ));
        assert!(matches!(
            g.connect(b, p, 1),
            Err(CoreError::UnknownPort { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = ProcessingGraph::new();
        let p1 = processor(&mut g, "p1", kinds::RAW_STRING, kinds::RAW_STRING);
        let p2 = processor(&mut g, "p2", kinds::RAW_STRING, kinds::RAW_STRING);
        g.connect(p1, p2, 0).unwrap();
        assert!(matches!(
            g.connect(p2, p1, 0),
            Err(CoreError::CycleDetected { .. })
        ));
        assert!(matches!(
            g.connect(p1, p1, 0),
            Err(CoreError::PortOccupied { .. }) | Err(CoreError::CycleDetected { .. })
        ));
    }

    #[test]
    fn remove_disconnects_edges() {
        let mut g = ProcessingGraph::new();
        let a = source(&mut g, "a", kinds::RAW_STRING);
        let p = processor(&mut g, "p", kinds::RAW_STRING, kinds::NMEA_SENTENCE);
        g.connect(a, p, 0).unwrap();
        g.remove(a).unwrap();
        assert_eq!(g.upstream(p), vec![None]);
        assert!(matches!(g.remove(a), Err(CoreError::UnknownNode(_))));
    }

    #[test]
    fn insert_between_rewires() {
        let mut g = ProcessingGraph::new();
        let a = source(&mut g, "a", kinds::RAW_STRING);
        let b = processor(&mut g, "b", kinds::RAW_STRING, kinds::NMEA_SENTENCE);
        g.connect(a, b, 0).unwrap();
        let filter = processor(&mut g, "filter", kinds::RAW_STRING, kinds::RAW_STRING);
        g.insert_between(filter, a, b, 0).unwrap();
        assert_eq!(g.downstream(a), vec![(filter, 0)]);
        assert_eq!(g.downstream(filter), vec![(b, 0)]);
        assert_eq!(g.upstream(b), vec![Some(filter)]);
    }

    #[test]
    fn insert_between_restores_on_failure() {
        let mut g = ProcessingGraph::new();
        let a = source(&mut g, "a", kinds::RAW_STRING);
        let b = processor(&mut g, "b", kinds::RAW_STRING, kinds::NMEA_SENTENCE);
        g.connect(a, b, 0).unwrap();
        // Incompatible intermediate: accepts positions only.
        let bad = processor(&mut g, "bad", kinds::POSITION_WGS84, kinds::POSITION_WGS84);
        assert!(g.insert_between(bad, a, b, 0).is_err());
        // Original edge restored.
        assert_eq!(g.downstream(a), vec![(b, 0)]);
    }

    #[test]
    fn feature_dependency_enforced() {
        let mut g = ProcessingGraph::new();
        let parser = source(&mut g, "parser", kinds::NMEA_SENTENCE);
        let filter = g.add(Box::new(FnProcessor::new(
            "satfilter",
            vec![kinds::NMEA_SENTENCE],
            kinds::NMEA_SENTENCE,
            |_| None,
        )));
        // Manually craft a consumer requiring the feature.
        struct Needy;
        impl crate::component::Component for Needy {
            fn descriptor(&self) -> ComponentDescriptor {
                ComponentDescriptor::processor(
                    "needy",
                    InputSpec::new("in", vec![kinds::NMEA_SENTENCE])
                        .requiring_feature("NumberOfSatellites"),
                    vec![kinds::POSITION_WGS84],
                )
            }
            fn on_input(
                &mut self,
                _p: usize,
                _i: DataItem,
                _c: &mut ComponentCtx<'_>,
            ) -> Result<(), CoreError> {
                Ok(())
            }
        }
        let needy = g.add(Box::new(Needy));
        assert!(matches!(
            g.connect(parser, needy, 0),
            Err(CoreError::MissingFeature { .. })
        ));
        g.attach_feature(
            parser,
            Box::new(TagFeature::new(
                "NumberOfSatellites",
                "satellites",
                Value::Int(9),
            )),
        )
        .unwrap();
        g.connect(parser, needy, 0).unwrap();
        let _ = filter;
    }

    #[test]
    fn feature_added_kinds_extend_capabilities() {
        struct Adder;
        impl crate::feature::ComponentFeature for Adder {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Adder").adds(kinds::POSITION_ROOM)
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut g = ProcessingGraph::new();
        let src = source(&mut g, "src", kinds::RAW_STRING);
        let consumer = processor(&mut g, "c", kinds::POSITION_ROOM, kinds::POSITION_ROOM);
        assert!(g.connect(src, consumer, 0).is_err());
        g.attach_feature(src, Box::new(Adder)).unwrap();
        assert!(g.effective_provides(src).contains(&kinds::POSITION_ROOM));
        g.connect(src, consumer, 0).unwrap();
    }

    #[test]
    fn invoke_falls_back_to_features() {
        struct Counting {
            calls: i64,
        }
        impl crate::feature::ComponentFeature for Counting {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Counting").method(MethodSpec::new("calls", "() -> int"))
            }
            fn on_produce(
                &mut self,
                item: DataItem,
                _h: &mut FeatureHost<'_>,
            ) -> Result<FeatureAction, CoreError> {
                Ok(FeatureAction::Continue(item))
            }
            fn invoke(
                &mut self,
                method: &str,
                _args: &[Value],
                _host: &mut FeatureHost<'_>,
            ) -> Result<Value, CoreError> {
                if method == "calls" {
                    self.calls += 1;
                    Ok(Value::Int(self.calls))
                } else {
                    Err(CoreError::NoSuchMethod {
                        target: "Counting".into(),
                        method: method.into(),
                    })
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut g = ProcessingGraph::new();
        let src = source(&mut g, "src", kinds::RAW_STRING);
        g.attach_feature(src, Box::new(Counting { calls: 0 }))
            .unwrap();
        // The component does not know "calls"; the feature answers.
        let t0 = crate::SimTime::ZERO;
        assert_eq!(g.invoke(src, "calls", &[], t0).unwrap().0, Value::Int(1));
        assert_eq!(
            g.invoke_feature(src, "Counting", "calls", &[], t0)
                .unwrap()
                .0,
            Value::Int(2)
        );
        assert!(g.invoke(src, "nope", &[], t0).is_err());
        assert_eq!(g.methods(src).unwrap().len(), 1);
        // Typed access.
        let calls = g
            .with_feature_mut::<Counting, i64>(src, "Counting", |f| f.calls)
            .unwrap();
        assert_eq!(calls, 2);
    }

    #[test]
    fn detach_feature_removes_it() {
        let mut g = ProcessingGraph::new();
        let src = source(&mut g, "src", kinds::RAW_STRING);
        g.attach_feature(src, Box::new(TagFeature::new("T", "k", Value::Null)))
            .unwrap();
        assert_eq!(g.info(src).unwrap().features.len(), 1);
        g.detach_feature(src, "T").unwrap();
        assert!(g.info(src).unwrap().features.is_empty());
        assert!(matches!(
            g.detach_feature(src, "T"),
            Err(CoreError::UnknownFeatureName { .. })
        ));
    }

    #[test]
    fn sources_and_sinks_listed() {
        let mut g = ProcessingGraph::new();
        let s = source(&mut g, "s", kinds::RAW_STRING);
        let sink = g.add(Box::new(Sink));
        g.connect(s, sink, 0).unwrap();
        assert_eq!(g.sources(), vec![s]);
        assert_eq!(g.sinks(), vec![sink]);
        let tree = g.render_tree();
        assert!(tree.contains("app"));
        assert!(tree.contains("s [source]"));
        let dot = g.render_dot();
        assert!(dot.starts_with("digraph perpos {"));
        assert!(dot.contains("shape=ellipse"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
    }
}
