//! # perpos-analysis — whole-graph static analysis for PerPos
//!
//! The PerPos middleware is *translucent*: the positioning process is
//! reified as a graph of Processing Components whose ports declare the
//! data kinds they accept and provide, and applications may adapt that
//! graph at runtime. Per-edge validation at connect time cannot see
//! whole-graph problems — a merge input nobody drives, a subgraph whose
//! output nothing consumes, a feature requirement lost by a later
//! detach. This crate closes that gap with a lint pass over the same
//! declarations the graph already validates locally.
//!
//! Three surfaces:
//!
//! - **Config analysis** ([`analyze_config`]): lints a declarative
//!   [`GraphConfig`](perpos_core::assembly::GraphConfig) against a
//!   [`TypeCatalog`] *before* instantiation. The `perpos-lint` binary
//!   exposes this on the command line.
//! - **Live analysis** ([`analyze_structure`]): lints an instantiated
//!   graph via `Middleware::structure()`, and — through
//!   [`check_adaptation`] — a *hypothetical* structure produced by
//!   simulating an [`AdaptationPlan`], answering "is this adaptation
//!   safe?" without touching the live process.
//! - **Runtime probing** ([`MonotonicityProbe`]): a Channel Feature
//!   asserting logical-time monotonicity on every delivery (P008).
//!
//! Beyond the structural lints, a forward-dataflow framework
//! ([`dataflow`], [`domains`]) infers whole-graph *semantic* facts —
//! coordinate frames, achievable accuracy, privacy taint and item rates
//! — as lattice fixpoints of per-component transfer functions, and
//! reports frame conflicts (P010), unreachable accuracy claims (P011),
//! identifiable data leaking to the application (P012) and statically
//! overloaded components (P013, with P014 predicting when the overload will hit the channel ring cap). The same analyses run on configurations
//! and live structures, so config-time and adaptation-time findings
//! agree.
//!
//! An effect layer ([`effects`]) checks declared
//! [`EffectSpec`](perpos_core::component::EffectSpec) metadata against
//! the deployment the graph requests: shared-resource races between
//! same-wave components under the level-parallel executor (P017),
//! stateful-but-unsnapshotable components inside fleet deployments
//! (P018) and exogenous/unseeded effects where deterministic replay is
//! assumed (P019).
//!
//! Every finding is a [`Diagnostic`] with a stable code (P001–P019), a
//! severity, the offending node/edge path and, where possible, a fix-it
//! hint; a [`Report`] renders human-readable or JSON. The [`gate`]
//! module adapts reports to the core's opt-in `*_checked` entry points.
//!
//! ```
//! use perpos_analysis::{analyze_config, Code, ComponentTypeSpec, PortSpec, TypeCatalog};
//! use perpos_core::assembly::{ComponentConfig, ConnectionConfig, GraphConfig};
//!
//! let mut catalog = TypeCatalog::new();
//! catalog.insert(ComponentTypeSpec {
//!     kind: "smooth".into(),
//!     role: "processor".into(),
//!     inputs: vec![PortSpec { name: "in".into(), accepts: vec![], required_features: vec![] }],
//!     provides: vec!["position.wgs84".into()],
//!     transfer: None,
//!     effects: None,
//! });
//! // A config wiring an instance to itself: cycle, caught before any
//! // component is built.
//! let config = GraphConfig {
//!     components: vec![ComponentConfig {
//!         name: "p".into(),
//!         kind: "smooth".into(),
//!         fault_policy: None,
//!         transfer: None,
//!         effects: None,
//!     }],
//!     connections: vec![ConnectionConfig { from: "p".into(), to: "p".into(), port: 0 }],
//!     executor: None,
//!     tree_policy: None,
//!     fleet: None,
//! };
//! let report = analyze_config(&config, &catalog);
//! assert_eq!(report.with_code(Code::P005).len(), 1);
//! ```

pub mod adaptation;
pub mod catalog;
pub mod config;
pub mod dataflow;
pub mod diagnostic;
pub mod domains;
pub mod effects;
pub mod gate;
pub mod live;
pub mod probe;
pub mod synth;

pub use adaptation::{
    check_adaptation, check_adaptation_with_facts, AdaptationOp, AdaptationOutcome, AdaptationPlan,
};
pub use catalog::{ComponentTypeSpec, PortSpec, TypeCatalog};
pub use config::analyze_config;
pub use dataflow::{solve, Domain, FlowGraph, Solution};
pub use diagnostic::{Code, Diagnostic, Report, Severity, JSON_SCHEMA_VERSION};
pub use domains::{analyze_dataflow, dataflow_diagnostics, facts_json, infer_facts, GraphFacts};
pub use effects::{
    determinism_diagnostics, effect_diagnostics, wave_conflicts, ConflictKind, WaveConflict,
};
pub use live::{analyze_structure, analyze_structure_in, structure_levels, StructureContext};
pub use probe::MonotonicityProbe;
pub use synth::{synthesize, Infeasibility, RankedPipeline, Synthesis, SynthesisGoal};
