//! Criterion bench: channel layer costs — logical-time bookkeeping and
//! data-tree assembly (the Fig. 4 machinery) at varying pipeline depth.

#![allow(clippy::unwrap_used)]
use std::any::Any;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree, TreePolicy};
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::*;

struct Consume(&'static str);
impl ChannelFeature for Consume {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(self.0)
    }
    fn apply(&mut self, tree: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        std::hint::black_box(tree.len());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const FEATURE_NAMES: [&str; 4] = ["Consume0", "Consume1", "Consume2", "Consume3"];

fn setup(depth: usize, features: usize) -> Middleware {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        Some(Value::Int(i))
    }));
    let mut prev = src;
    for d in 0..depth {
        let node = mw.add_component(FnProcessor::new(
            format!("stage{d}"),
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |item| Some(item.payload.clone()),
        ));
        mw.connect(prev, node, 0).unwrap();
        prev = node;
    }
    let app = mw.application_sink();
    mw.connect(prev, app, 0).unwrap();
    let channel = mw.channel_into(app, 0).unwrap();
    for name in FEATURE_NAMES.iter().take(features) {
        mw.attach_channel_feature(channel, Consume(name)).unwrap();
    }
    mw
}

fn bench_tree_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_tree_by_depth");
    for depth in [1usize, 3, 6, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let mut mw = setup(d, 1);
            b.iter(|| {
                mw.step().unwrap();
                mw.advance_clock(SimDuration::from_micros(1));
            });
        });
    }
    group.finish();
}

/// Per-step cost at a fixed depth as the number of attached observing
/// features grows — 0 features exercises the lazy fast path (bookkeeping
/// only), 1 measures tree assembly + one dispatch, 4 the dispatch
/// scaling. Paired with `channel_features_eager`, which pins the same
/// sweep under [`TreePolicy::Eager`] where 0 features still assembles
/// every tree.
fn bench_feature_counts(c: &mut Criterion) {
    for policy in [TreePolicy::Lazy, TreePolicy::Eager] {
        let mut group = c.benchmark_group(format!("channel_features_{policy}"));
        for features in [0usize, 1, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(features), &features, |b, &f| {
                let mut mw = setup(8, f);
                mw.set_tree_policy(policy);
                b.iter(|| {
                    mw.step().unwrap();
                    mw.advance_clock(SimDuration::from_micros(1));
                });
            });
        }
        group.finish();
    }
}

fn bench_recompute(c: &mut Criterion) {
    // Channel derivation cost after a structural change.
    let mut group = c.benchmark_group("channel_recompute");
    for depth in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter_with_setup(
                || setup(d, 0),
                |mut mw| {
                    // attach_feature triggers a recompute.
                    let src = mw.graph().sources()[0];
                    mw.attach_feature(
                        src,
                        perpos_core::feature::TagFeature::new("T", "k", Value::Null),
                    )
                    .unwrap();
                    mw
                },
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_assembly,
    bench_feature_counts,
    bench_recompute
);
criterion_main!(benches);
