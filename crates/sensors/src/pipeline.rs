//! The standard positioning pipeline components of the paper's Fig. 1 —
//! Parser, Interpreter, Resolver, Sensor Wrapper — and the Component
//! Features of the §3.1/§3.2 examples.

use std::any::Any;
use std::sync::Arc;

use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, InputSpec, MethodSpec};
use perpos_core::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
use perpos_core::prelude::*;
use perpos_model::Building;
use perpos_nmea::{parse_sentence, Sentence};

use crate::codec;

/// The Parser component: raw NMEA strings in, structured sentences out
/// (Fig. 1/4).
///
/// Malformed sentences are counted and dropped — reproducing the Fig. 4
/// behaviour where several strings may be needed per sentence.
/// Reflective methods: `parsedCount() -> int`, `errorCount() -> int`.
#[derive(Debug, Default)]
pub struct Parser {
    parsed: i64,
    errors: i64,
}

impl Parser {
    /// Creates a parser.
    pub fn new() -> Self {
        Parser::default()
    }
}

impl Component for Parser {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            "Parser",
            InputSpec::new("raw", vec![kinds::RAW_STRING]),
            vec![kinds::NMEA_SENTENCE],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let Some(text) = item.payload.as_text() else {
            self.errors += 1;
            return Ok(());
        };
        match parse_sentence(text) {
            Ok(sentence) => {
                self.parsed += 1;
                ctx.emit_value(kinds::NMEA_SENTENCE, codec::sentence_to_value(&sentence));
            }
            Err(_) => self.errors += 1,
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "parsedCount" => Ok(Value::Int(self.parsed)),
            "errorCount" => Ok(Value::Int(self.errors)),
            other => Err(CoreError::NoSuchMethod {
                target: "Parser".into(),
                method: other.into(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("parsedCount", "() -> int"),
            MethodSpec::new("errorCount", "() -> int"),
        ]
    }
}

/// Estimated user-equivalent range error multiplier turning HDOP into a
/// 1-sigma horizontal accuracy in metres.
const UERE_M: f64 = 5.0;

/// The Interpreter component: NMEA sentences in, WGS-84 positions out.
///
/// As in the paper (§2.2), it "only returns a value when a valid position
/// is produced" — invalid sentences are absorbed, which is what makes the
/// Fig. 4 data trees interesting. Produced positions carry a `source =
/// "gps"` attribute and an accuracy estimate derived from HDOP.
/// Reflective method: `positionsProduced() -> int`.
#[derive(Debug, Default)]
pub struct Interpreter {
    produced: i64,
}

impl Interpreter {
    /// Creates an interpreter.
    pub fn new() -> Self {
        Interpreter::default()
    }
}

impl Component for Interpreter {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            "Interpreter",
            InputSpec::new("nmea", vec![kinds::NMEA_SENTENCE]),
            vec![kinds::POSITION_WGS84],
        )
        .with_transfer(TransferSpec::new().with_frame("wgs84"))
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let Some(Sentence::Gga(gga)) = codec::sentence_of(&item) else {
            return Ok(());
        };
        let (Some(lat), Some(lon)) = (gga.lat_deg, gga.lon_deg) else {
            return Ok(());
        };
        if !gga.quality.has_fix() {
            return Ok(());
        }
        let Ok(coord) = perpos_geo::Wgs84::new(lat, lon, gga.altitude_m) else {
            return Ok(());
        };
        self.produced += 1;
        let position = Position::new(coord, Some(gga.hdop * UERE_M));
        let out = DataItem::new(kinds::POSITION_WGS84, ctx.now(), Value::from(position))
            .with_attr("source", Value::from("gps"));
        ctx.emit(out);
        Ok(())
    }

    fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "positionsProduced" => Ok(Value::Int(self.produced)),
            other => Err(CoreError::NoSuchMethod {
                target: "Interpreter".into(),
                method: other.into(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![MethodSpec::new("positionsProduced", "() -> int")]
    }
}

/// The Resolver component: WGS-84 positions in, symbolic room positions
/// out — the location model service of the Room Number Application
/// (Fig. 1).
///
/// Positions outside the building produce nothing. Reflective methods:
/// `setFloor(level: int)`, `getFloor() -> int`.
pub struct Resolver {
    building: Arc<Building>,
    floor: i32,
}

impl Resolver {
    /// Creates a resolver against a building model, resolving on floor 0.
    pub fn new(building: Arc<Building>) -> Self {
        Resolver { building, floor: 0 }
    }
}

impl std::fmt::Debug for Resolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resolver")
            .field("building", &self.building.name())
            .field("floor", &self.floor)
            .finish()
    }
}

impl Component for Resolver {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            "Resolver",
            InputSpec::new("position", vec![kinds::POSITION_WGS84]),
            vec![kinds::POSITION_ROOM],
        )
        .with_transfer(TransferSpec::new().transforms_frames().with_frame("room"))
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let position = item.position()?;
        if let Some(room) = self.building.resolve_wgs84(position.coord(), self.floor) {
            let out = DataItem::new(
                kinds::POSITION_ROOM,
                ctx.now(),
                Value::from(room.id().as_str()),
            )
            .with_attr("wgs84", item.payload.to_value())
            .with_attr("floor", Value::Int(i64::from(self.floor)));
            ctx.emit(out);
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setFloor" => {
                let level = args.first().and_then(Value::as_i64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one int".into(),
                    }
                })?;
                self.floor = level as i32;
                Ok(Value::Null)
            }
            "getFloor" => Ok(Value::Int(i64::from(self.floor))),
            other => Err(CoreError::NoSuchMethod {
                target: "Resolver".into(),
                method: other.into(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setFloor", "(level: int) -> null"),
            MethodSpec::new("getFloor", "() -> int"),
        ]
    }
}

/// A pass-through Sensor Wrapper (Fig. 7): tags items with the host they
/// were sensed on, can be suspended, and rate-limits forwarding.
///
/// In the paper's EnTracked reimplementation the wrapper "is running on
/// the mobile device"; the Power Strategy Component Feature attaches here
/// or directly to the sensor. Reflective methods: `setActive(bool)`,
/// `isActive() -> bool`, `setMinInterval(seconds: float)`,
/// `forwardedCount() -> int`, `droppedCount() -> int`.
#[derive(Debug)]
pub struct SensorWrapper {
    name: String,
    host: String,
    active: bool,
    min_interval: SimDuration,
    last_forward: Option<SimTime>,
    forwarded: i64,
    dropped: i64,
}

impl SensorWrapper {
    /// Creates a wrapper named `name`, tagging items with `host`.
    pub fn new(name: impl Into<String>, host: impl Into<String>) -> Self {
        SensorWrapper {
            name: name.into(),
            host: host.into(),
            active: true,
            min_interval: SimDuration::ZERO,
            last_forward: None,
            forwarded: 0,
            dropped: 0,
        }
    }
}

impl Component for SensorWrapper {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            self.name.clone(),
            InputSpec::new("in", vec![]),
            vec![
                kinds::RAW_STRING,
                kinds::NMEA_SENTENCE,
                kinds::POSITION_WGS84,
                kinds::WIFI_SCAN,
                kinds::MOTION_SAMPLE,
            ],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        if !self.active {
            self.dropped += 1;
            return Ok(());
        }
        if let Some(last) = self.last_forward {
            if ctx.now().since(last) < self.min_interval {
                self.dropped += 1;
                return Ok(());
            }
        }
        self.last_forward = Some(ctx.now());
        self.forwarded += 1;
        ctx.emit(item.with_attr("host", Value::from(self.host.clone())));
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setActive" => {
                let on = args.first().and_then(Value::as_bool).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one bool".into(),
                    }
                })?;
                self.active = on;
                Ok(Value::Null)
            }
            "isActive" => Ok(Value::Bool(self.active)),
            "setMinInterval" => {
                let secs = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float".into(),
                    }
                })?;
                if !(secs.is_finite() && secs >= 0.0) {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("interval must be >= 0, got {secs}"),
                    });
                }
                self.min_interval = SimDuration::from_secs_f64(secs);
                Ok(Value::Null)
            }
            "forwardedCount" => Ok(Value::Int(self.forwarded)),
            "droppedCount" => Ok(Value::Int(self.dropped)),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setActive", "(on: bool) -> null"),
            MethodSpec::new("isActive", "() -> bool"),
            MethodSpec::new("setMinInterval", "(seconds: float) -> null"),
            MethodSpec::new("forwardedCount", "() -> int"),
            MethodSpec::new("droppedCount", "() -> int"),
        ]
    }
}

/// The HDOP Component Feature of the paper's Fig. 5 (artifact 3): attaches
/// the horizontal dilution of precision of each GGA sentence to the
/// sentence item and remembers the latest value.
///
/// Attach to the Parser node. Reflective method: `getHDOP() -> float`.
#[derive(Debug, Default)]
pub struct HdopFeature {
    last_hdop: Option<f64>,
}

impl HdopFeature {
    /// The feature name used for lookups and dependencies.
    pub const NAME: &'static str = "HDOP";

    /// Creates the feature.
    pub fn new() -> Self {
        HdopFeature::default()
    }
}

impl ComponentFeature for HdopFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME).method(MethodSpec::new("getHDOP", "() -> float"))
    }

    fn on_produce(
        &mut self,
        mut item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        if let Some(Sentence::Gga(gga)) = codec::sentence_of(&item) {
            if gga.quality.has_fix() {
                self.last_hdop = Some(gga.hdop);
                item.attrs.insert("hdop", Value::Float(gga.hdop));
            }
        }
        Ok(FeatureAction::Continue(item))
    }

    fn invoke(
        &mut self,
        method: &str,
        _args: &[Value],
        _host: &mut FeatureHost<'_>,
    ) -> Result<Value, CoreError> {
        match method {
            "getHDOP" => Ok(self.last_hdop.map(Value::Float).unwrap_or(Value::Null)),
            other => Err(CoreError::NoSuchMethod {
                target: Self::NAME.into(),
                method: other.into(),
            }),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The `NumberOfSatellites` Component Feature of §3.1: "provides access
/// to the concrete number of satellites available in each measurement" by
/// adding a `satellites` attribute to GGA sentence items.
///
/// Attach to the Parser node. Reflective method:
/// `getNumberOfSatellites() -> int`.
#[derive(Debug, Default)]
pub struct NumberOfSatellitesFeature {
    last: Option<i64>,
}

impl NumberOfSatellitesFeature {
    /// The feature name used for lookups and dependencies.
    pub const NAME: &'static str = "NumberOfSatellites";

    /// Creates the feature.
    pub fn new() -> Self {
        NumberOfSatellitesFeature::default()
    }
}

impl ComponentFeature for NumberOfSatellitesFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
            .method(MethodSpec::new("getNumberOfSatellites", "() -> int"))
    }

    fn on_produce(
        &mut self,
        mut item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        if let Some(Sentence::Gga(gga)) = codec::sentence_of(&item) {
            let n = i64::from(gga.num_satellites);
            self.last = Some(n);
            item.attrs.insert("satellites", Value::Int(n));
        }
        Ok(FeatureAction::Continue(item))
    }

    fn invoke(
        &mut self,
        method: &str,
        _args: &[Value],
        _host: &mut FeatureHost<'_>,
    ) -> Result<Value, CoreError> {
        match method {
            "getNumberOfSatellites" => Ok(self.last.map(Value::Int).unwrap_or(Value::Null)),
            other => Err(CoreError::NoSuchMethod {
                target: Self::NAME.into(),
                method: other.into(),
            }),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The filtering Processing Component of §3.1: inserted after the Parser,
/// it "extracts the number of satellites and forwards only measurements
/// based on a satisfactory number".
///
/// Its input port declares the dependency on the `NumberOfSatellites`
/// Component Feature, so connecting it to a Parser without that feature
/// fails validation. Reflective methods: `setThreshold(min: int)`,
/// `getThreshold() -> int`, `filteredCount() -> int`.
#[derive(Debug)]
pub struct SatelliteFilter {
    threshold: i64,
    filtered: i64,
}

impl SatelliteFilter {
    /// Creates a filter requiring at least `threshold` satellites.
    pub fn new(threshold: i64) -> Self {
        SatelliteFilter {
            threshold,
            filtered: 0,
        }
    }
}

impl Component for SatelliteFilter {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            "SatelliteFilter",
            InputSpec::new("nmea", vec![kinds::NMEA_SENTENCE])
                .requiring_feature(NumberOfSatellitesFeature::NAME),
            vec![kinds::NMEA_SENTENCE],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        match item.attr("satellites").and_then(Value::as_i64) {
            Some(n) if n < self.threshold => {
                self.filtered += 1;
            }
            _ => ctx.emit(item),
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setThreshold" => {
                let t = args.first().and_then(Value::as_i64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one int".into(),
                    }
                })?;
                self.threshold = t;
                Ok(Value::Null)
            }
            "getThreshold" => Ok(Value::Int(self.threshold)),
            "filteredCount" => Ok(Value::Int(self.filtered)),
            other => Err(CoreError::NoSuchMethod {
                target: "SatelliteFilter".into(),
                method: other.into(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setThreshold", "(min: int) -> null"),
            MethodSpec::new("getThreshold", "() -> int"),
            MethodSpec::new("filteredCount", "() -> int"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_model::demo_building;
    use perpos_nmea::checksum;

    fn raw_item(line: &str) -> DataItem {
        DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::from(line))
    }

    const GGA: &str = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";

    #[test]
    fn parser_parses_and_counts_errors() {
        let mut p = Parser::new();
        let out = ComponentCtxProbe::run_input(&mut p, raw_item(GGA)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, kinds::NMEA_SENTENCE);
        let out = ComponentCtxProbe::run_input(&mut p, raw_item("$GARBAGE")).unwrap();
        assert!(out.is_empty());
        assert_eq!(p.invoke("parsedCount", &[]).unwrap(), Value::Int(1));
        assert_eq!(p.invoke("errorCount", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn parser_rejects_non_text_payload() {
        let mut p = Parser::new();
        let item = DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Int(5));
        let out = ComponentCtxProbe::run_input(&mut p, item).unwrap();
        assert!(out.is_empty());
        assert_eq!(p.invoke("errorCount", &[]).unwrap(), Value::Int(1));
    }

    fn parsed(line: &str) -> DataItem {
        let sentence = parse_sentence(line).unwrap();
        DataItem::new(
            kinds::NMEA_SENTENCE,
            SimTime::ZERO,
            codec::sentence_to_value(&sentence),
        )
    }

    #[test]
    fn interpreter_emits_positions_with_accuracy() {
        let mut i = Interpreter::new();
        let out = ComponentCtxProbe::run_input(&mut i, parsed(GGA)).unwrap();
        assert_eq!(out.len(), 1);
        let pos = out[0].position().unwrap();
        assert!((pos.coord().lat_deg() - 48.1173).abs() < 1e-3);
        assert!((pos.accuracy_m().unwrap() - 0.9 * UERE_M).abs() < 1e-9);
        assert_eq!(out[0].attr("source").and_then(Value::as_text), Some("gps"));
        assert_eq!(i.invoke("positionsProduced", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn interpreter_absorbs_invalid_sentences() {
        let body = "GPGGA,123519,,,,,0,00,,,M,,M,,";
        let line = format!("${body}*{:02X}", checksum(body));
        let mut i = Interpreter::new();
        let out = ComponentCtxProbe::run_input(&mut i, parsed(&line)).unwrap();
        assert!(out.is_empty());
        // RMC sentences are also ignored (only GGA carries fixes here).
        let rmc = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";
        let out = ComponentCtxProbe::run_input(&mut i, parsed(rmc)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn resolver_maps_positions_to_rooms() {
        let building = Arc::new(demo_building());
        // A point inside room R0 (2.5, 2.0).
        let coord = building
            .frame()
            .from_local(&perpos_geo::Point2::new(2.5, 2.0));
        let item = DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::ZERO,
            Value::from(Position::new(coord, Some(3.0))),
        );
        let mut r = Resolver::new(building.clone());
        let out = ComponentCtxProbe::run_input(&mut r, item).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.as_text(), Some("R0"));
        assert!(out[0].attr("wgs84").is_some());

        // Outside the building: silent.
        let outside = building
            .frame()
            .from_local(&perpos_geo::Point2::new(-50.0, 0.0));
        let item = DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::ZERO,
            Value::from(Position::new(outside, None)),
        );
        assert!(ComponentCtxProbe::run_input(&mut r, item)
            .unwrap()
            .is_empty());

        // Wrong floor: silent.
        r.invoke("setFloor", &[Value::Int(5)]).unwrap();
        let inside = building
            .frame()
            .from_local(&perpos_geo::Point2::new(2.5, 2.0));
        let item = DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::ZERO,
            Value::from(Position::new(inside, None)),
        );
        assert!(ComponentCtxProbe::run_input(&mut r, item)
            .unwrap()
            .is_empty());
        assert_eq!(r.invoke("getFloor", &[]).unwrap(), Value::Int(5));
    }

    #[test]
    fn wrapper_gates_and_tags() {
        let mut w = SensorWrapper::new("wrapper", "mobile");
        let out = ComponentCtxProbe::run_input(&mut w, raw_item("x")).unwrap();
        assert_eq!(out[0].attr("host").and_then(Value::as_text), Some("mobile"));
        w.invoke("setActive", &[Value::Bool(false)]).unwrap();
        assert!(ComponentCtxProbe::run_input(&mut w, raw_item("y"))
            .unwrap()
            .is_empty());
        assert_eq!(w.invoke("forwardedCount", &[]).unwrap(), Value::Int(1));
        assert_eq!(w.invoke("droppedCount", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn wrapper_rate_limits() {
        let mut w = SensorWrapper::new("wrapper", "mobile");
        w.invoke("setMinInterval", &[Value::Float(1.0)]).unwrap();
        let at = |t: f64, v: &str| {
            DataItem::new(kinds::RAW_STRING, SimTime::from_secs_f64(t), Value::from(v))
        };
        let mut forwarded = 0;
        for (t, v) in [(0.0, "a"), (0.5, "b"), (1.0, "c"), (1.2, "d"), (2.5, "e")] {
            forwarded += ComponentCtxProbe::run_input(&mut w, at(t, v))
                .unwrap()
                .len();
        }
        assert_eq!(forwarded, 3); // a, c, e
    }

    #[test]
    fn hdop_feature_attaches_and_remembers() {
        let mut host_comp = Parser::new();
        let mut host = FeatureHost::new(&mut host_comp, SimTime::ZERO);
        let mut f = HdopFeature::new();
        assert_eq!(f.invoke("getHDOP", &[], &mut host).unwrap(), Value::Null);
        let FeatureAction::Continue(out) = f.on_produce(parsed(GGA), &mut host).unwrap() else {
            panic!("must continue");
        };
        assert_eq!(out.attr("hdop").and_then(Value::as_f64), Some(0.9));
        assert_eq!(
            f.invoke("getHDOP", &[], &mut host).unwrap(),
            Value::Float(0.9)
        );
    }

    #[test]
    fn satellites_feature_attaches() {
        let mut host_comp = Parser::new();
        let mut host = FeatureHost::new(&mut host_comp, SimTime::ZERO);
        let mut f = NumberOfSatellitesFeature::new();
        let FeatureAction::Continue(out) = f.on_produce(parsed(GGA), &mut host).unwrap() else {
            panic!("must continue");
        };
        assert_eq!(out.attr("satellites").and_then(Value::as_i64), Some(8));
        assert_eq!(
            f.invoke("getNumberOfSatellites", &[], &mut host).unwrap(),
            Value::Int(8)
        );
    }

    #[test]
    fn satellite_filter_drops_low_counts() {
        let mut f = SatelliteFilter::new(4);
        let mut item = parsed(GGA);
        item.attrs.insert("satellites", Value::Int(3));
        assert!(ComponentCtxProbe::run_input(&mut f, item.clone())
            .unwrap()
            .is_empty());
        item.attrs.insert("satellites", Value::Int(7));
        assert_eq!(ComponentCtxProbe::run_input(&mut f, item).unwrap().len(), 1);
        // Items without the attribute pass (conservative default).
        assert_eq!(
            ComponentCtxProbe::run_input(&mut f, parsed(GGA))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(f.invoke("filteredCount", &[]).unwrap(), Value::Int(1));
        f.invoke("setThreshold", &[Value::Int(9)]).unwrap();
        assert_eq!(f.invoke("getThreshold", &[]).unwrap(), Value::Int(9));
    }

    #[test]
    fn filter_requires_feature_at_connect_time() {
        let mut mw = Middleware::new();
        let parser = mw.add_component(Parser::new());
        let filter = mw.add_component(SatelliteFilter::new(4));
        assert!(matches!(
            mw.connect(parser, filter, 0),
            Err(CoreError::MissingFeature { .. })
        ));
        mw.attach_feature(parser, NumberOfSatellitesFeature::new())
            .unwrap();
        mw.connect(parser, filter, 0).unwrap();
    }
}
