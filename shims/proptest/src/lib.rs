//! Offline shim for the `proptest` surface the PerPos workspace uses.
//!
//! Supported: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], [`prelude::any`], numeric range
//! strategies, regex-literal string strategies (a practical subset),
//! [`collection::vec`], [`option::of`], tuple strategies, and an explicit
//! [`test_runner::TestRunner`].
//!
//! Differences from real proptest: sampling is driven by a fixed-seed
//! deterministic RNG (runs are reproducible everywhere) and failures are
//! reported without shrinking — the failing input is printed as-is.

use std::fmt;
use std::ops::{Range, RangeInclusive};

mod rng;
mod string;

pub use rng::SampleRng;

/// A generator of test inputs.
///
/// Unlike real proptest there is no value tree: strategies sample directly
/// and failures are reported unshrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SampleRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SampleRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut SampleRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SampleRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A `&str` is interpreted as a regex and generates matching strings.
///
/// Supported subset: literals, `.`, `[...]` classes with ranges, `(...)`
/// groups, and the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+`.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut SampleRng) -> String {
        string::sample_regex(self, rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
}

/// `any::<T>()` support (see [`arbitrary::any`]).
pub mod arbitrary {
    use super::{SampleRng, Strategy};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's whole domain.
        fn arbitrary_sample(rng: &mut SampleRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut SampleRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut SampleRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut SampleRng) -> Self {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut SampleRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SampleRng, Strategy};
    use std::ops::Range;

    /// Accepted sizes for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length lies in `size`, with elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{SampleRng, Strategy};

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut SampleRng) -> Option<S::Value> {
            // ~25% None, matching real proptest's default weighting.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Generates `None` some of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// The execution harness (`proptest::test_runner`).
pub mod test_runner {
    use super::{fmt, SampleRng, Strategy};

    /// A single test case's failure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fails the current case with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        /// Real proptest distinguishes rejects from failures; the shim
        /// treats both as failures.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type returned by a property closure.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Whole-run failure: the input that failed plus the case's message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestError {
        /// `Debug` rendering of the failing input (unshrunk).
        pub input: String,
        /// The failing case's message (assertion text or panic payload).
        pub message: String,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "property failed: {}; failing input (unshrunk): {}",
                self.message, self.input
            )
        }
    }

    impl std::error::Error for TestError {}

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic, non-shrinking property runner.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: SampleRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(ProptestConfig::default())
        }
    }

    impl TestRunner {
        /// Creates a runner with `config`, seeded deterministically.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: SampleRng::seeded(0x5EED_CAFE_F00D_D00D),
            }
        }

        /// Runs `test` against `config.cases` sampled inputs.
        ///
        /// # Errors
        ///
        /// Returns the first failing input (no shrinking) with the case's
        /// message; panics inside the closure are caught and reported the
        /// same way.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            S::Value: fmt::Debug,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            for _ in 0..self.config.cases {
                let input = strategy.sample(&mut self.rng);
                let rendered = format!("{input:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(input)));
                let message = match outcome {
                    Ok(Ok(())) => continue,
                    Ok(Err(e)) => e.0,
                    // `&*` so the Box's contents (not the Box itself)
                    // become the `dyn Any` we downcast.
                    Err(panic) => panic_message(&*panic),
                };
                return Err(TestError {
                    input: rendered,
                    message,
                });
            }
            Ok(())
        }
    }

    fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "test case panicked".to_string()
        }
    }
}

/// The usual imports (`use proptest::prelude::*;`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares `#[test]` functions whose arguments are sampled from
/// strategies: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let result = runner.run(&($($strat,)+), |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(e) = result {
                panic!("{}", e);
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{collection, option};

    #[test]
    fn ranges_sample_in_bounds() {
        let mut runner = TestRunner::default();
        runner
            .run(&(-5.0f64..5.0, 1u8..9), |(f, i)| {
                prop_assert!((-5.0..5.0).contains(&f), "{f}");
                prop_assert!((1..9).contains(&i), "{i}");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(50));
        let err = runner
            .run(&(0u32..100,), |(v,)| {
                prop_assert!(v < 10, "too big: {v}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.starts_with("too big"), "{err}");
    }

    #[test]
    fn panics_are_reported_not_propagated() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5));
        let err = runner
            .run(&(0u32..10,), |(_v,)| {
                panic!("boom");
            })
            .unwrap_err();
        assert_eq!(err.message, "boom");
    }

    #[test]
    fn vec_and_option_strategies_compose() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(100));
        let mut saw_none = false;
        let mut saw_some = false;
        runner
            .run(
                &(
                    collection::vec(collection::vec(any::<u8>(), 0..4), 0..6),
                    option::of(0i64..5),
                ),
                |(vv, _opt)| {
                    prop_assert!(vv.len() < 6);
                    prop_assert!(vv.iter().all(|v| v.len() < 4));
                    Ok(())
                },
            )
            .unwrap();
        let mut rng = crate::SampleRng::seeded(42);
        for _ in 0..64 {
            use crate::Strategy;
            match option::of(0i64..5).sample(&mut rng) {
                None => saw_none = true,
                Some(v) => {
                    assert!((0..5).contains(&v));
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn regex_strategies_match_shape() {
        use crate::Strategy;
        let mut rng = crate::SampleRng::seeded(7);
        for _ in 0..200 {
            let s = "[A-Z]{5}".sample(&mut rng);
            assert_eq!(s.chars().count(), 5, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase()), "{s:?}");

            let s = ".{0,20}".sample(&mut rng);
            assert!(s.chars().count() <= 20, "{s:?}");

            let s = "[ -)+-~]{0,60}".sample(&mut rng);
            assert!(
                s.chars()
                    .all(|c| (' '..=')').contains(&c) || ('+'..='~').contains(&c)),
                "{s:?}"
            );

            let s = "[A-Z]{2}(,[-0-9A-Za-z.]{0,3}){0,4}".sample(&mut rng);
            let mut parts = s.split(',');
            let head = parts.next().unwrap();
            assert_eq!(head.len(), 2, "{s:?}");
            for p in parts {
                assert!(p.len() <= 3, "{s:?}");
                assert!(
                    p.chars()
                        .all(|c| c == '-' || c == '.' || c.is_ascii_alphanumeric()),
                    "{s:?}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// The macro form compiles, samples, and threads doc attributes.
        fn macro_form_works(a in 0usize..8, b in 0usize..8) {
            prop_assert!(a < 8 && b < 8);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
