//! Effect & determinism analysis (P017–P020).
//!
//! The executor layer and the fleet runtime both lean on properties no
//! earlier pass verified: `LevelParallel` assumes same-wave components
//! never touch shared state (its determinism proof is exactly that wave
//! members commute), and fleet checkpoint-restart assumes a snapshot
//! captures *all* component state and that replaying a trace reproduces
//! the run byte-for-byte. Components declare the effects that could
//! break those assumptions in [`EffectSpec`] metadata; this module
//! checks the declarations against the deployment the graph requests:
//!
//! - **P017** (error) — two components scheduled into the same
//!   level-parallel wave declare a write-write or read-write conflict on
//!   a named shared resource, so worker schedule order is observable.
//! - **P018** (error) — a component declared stateful but not
//!   snapshot-capable runs inside a fleet deployment; checkpoint-restart
//!   silently resets its state.
//! - **P019** (warning) — exogenous inputs (wall clock, live I/O) or
//!   unseeded randomness in a graph whose deployment (fleet replay) or
//!   origin (the synthesis gate) assumes deterministic re-execution.
//! - **P020** (warning) — the fleet block requests parallel shard
//!   stepping while a template component declares shared-resource
//!   writes: the component's replicas in concurrently stepped shards
//!   race on the named resource (the cross-instance analogue of P017).
//!
//! The conflict computation layers the graph with
//! [`FlowGraph::topo_levels`] — the same longest-path layering the
//! `LevelParallel` executor schedules by — so a P017 finding names the
//! exact wave whose members would race. `tests/schedule_permutation.rs`
//! in the workspace root validates the analysis dynamically: P017-clean
//! graphs stay byte-identical under permuted wave schedules, while the
//! committed interfering fixture both trips P017 and observably
//! diverges.

use perpos_core::component::EffectSpec;
use perpos_core::executor::ExecMode;

use crate::dataflow::FlowGraph;
use crate::diagnostic::{canonical_sort, Code, Diagnostic, Report, Severity};

/// How two same-wave components interfere on a shared resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConflictKind {
    /// Both components write the resource; final state depends on
    /// schedule order.
    WriteWrite,
    /// One writes while the other reads; the reader observes the
    /// schedule.
    ReadWrite,
}

impl ConflictKind {
    /// Stable name used in messages and the facts document.
    pub fn as_str(&self) -> &'static str {
        match self {
            ConflictKind::WriteWrite => "write-write",
            ConflictKind::ReadWrite => "read-write",
        }
    }
}

/// A P017 finding in structured form: which wave, which resource, and
/// the two interfering components (`a` is the writer for read-write
/// conflicts; for write-write conflicts the pair is ordered by label).
#[derive(Debug, Clone, PartialEq)]
pub struct WaveConflict {
    /// Zero-based index of the wave in [`FlowGraph::topo_levels`].
    pub wave: usize,
    /// The shared resource both effects name.
    pub resource: String,
    /// Write-write or read-write.
    pub kind: ConflictKind,
    /// First interfering component's label (the writer when `kind` is
    /// read-write).
    pub a: String,
    /// Second interfering component's label (the reader when `kind` is
    /// read-write).
    pub b: String,
}

fn resources(list: Option<&Vec<String>>) -> &[String] {
    list.map(Vec::as_slice).unwrap_or(&[])
}

fn writes(e: &EffectSpec) -> &[String] {
    resources(e.writes.as_ref())
}

fn reads(e: &EffectSpec) -> &[String] {
    resources(e.reads.as_ref())
}

/// Computes every same-wave shared-resource conflict over the
/// level-parallel schedule, in canonical order (wave, resource, kind,
/// labels). The conflicts exist whatever executor the configuration
/// selects — they only become *observable* under `LevelParallel` — so
/// this runs unconditionally and callers decide what the result means:
/// [`effect_diagnostics`] turns it into P017 only when the graph
/// requests the level-parallel executor, while the facts document always
/// reports it.
pub fn wave_conflicts(graph: &FlowGraph) -> Vec<WaveConflict> {
    let mut out = Vec::new();
    for (wave, level) in graph.topo_levels().into_iter().enumerate() {
        // Order wave members by label so pair enumeration (and with it
        // the a/b assignment of write-write conflicts) is deterministic.
        let mut members: Vec<usize> = level;
        canonical_sort(&mut members, |&i| graph.nodes[i].label.clone());
        for (pos, &i) in members.iter().enumerate() {
            for &j in &members[pos + 1..] {
                let (ea, eb) = (&graph.nodes[i].effects, &graph.nodes[j].effects);
                for resource in writes(ea) {
                    if writes(eb).contains(resource) {
                        out.push(WaveConflict {
                            wave,
                            resource: resource.clone(),
                            kind: ConflictKind::WriteWrite,
                            a: graph.nodes[i].label.clone(),
                            b: graph.nodes[j].label.clone(),
                        });
                    } else if reads(eb).contains(resource) {
                        out.push(WaveConflict {
                            wave,
                            resource: resource.clone(),
                            kind: ConflictKind::ReadWrite,
                            a: graph.nodes[i].label.clone(),
                            b: graph.nodes[j].label.clone(),
                        });
                    }
                }
                for resource in writes(eb) {
                    if !writes(ea).contains(resource) && reads(ea).contains(resource) {
                        out.push(WaveConflict {
                            wave,
                            resource: resource.clone(),
                            kind: ConflictKind::ReadWrite,
                            a: graph.nodes[j].label.clone(),
                            b: graph.nodes[i].label.clone(),
                        });
                    }
                }
            }
        }
    }
    canonical_sort(&mut out, |c| {
        (c.wave, c.resource.clone(), c.kind, c.a.clone(), c.b.clone())
    });
    out
}

/// The exogenous/unseeded effect names a node declares, for P019
/// messages and the facts document. Empty when the node is
/// deterministic.
pub fn nondeterministic_effects(e: &EffectSpec) -> Vec<&'static str> {
    let mut names = Vec::new();
    if e.wall_clock == Some(true) {
        names.push("wall-clock");
    }
    if e.io == Some(true) {
        names.push("exogenous-io");
    }
    if e.unseeded == Some(true) {
        names.push("unseeded-randomness");
    }
    names
}

/// Whether the graph's configuration selects the level-parallel
/// executor (any accepted spelling).
fn is_level_parallel(graph: &FlowGraph) -> bool {
    graph
        .executor
        .as_deref()
        .and_then(ExecMode::from_name)
        .is_some_and(|m| m == ExecMode::LevelParallel)
}

/// Runs the effect checks that the graph's *declared deployment* makes
/// relevant: P017 when the level-parallel executor is requested, P018
/// and P019 when a fleet block is present (checkpoint-restart assumes
/// snapshot completeness and deterministic replay).
pub fn effect_diagnostics(graph: &FlowGraph, report: &mut Report) {
    if is_level_parallel(graph) {
        for c in wave_conflicts(graph) {
            report.push(
                Diagnostic::new(
                    Code::P017,
                    Severity::Error,
                    format!(
                        "components {:?} and {:?} run in the same level-parallel wave \
                         (wave {}) with a {} conflict on shared resource {:?}",
                        c.a,
                        c.b,
                        c.wave,
                        c.kind.as_str(),
                        c.resource
                    ),
                    vec![c.a.clone(), c.b.clone()],
                )
                .with_hint(
                    "serialize the pair (wire one downstream of the other), move the shared \
                     state into a component of its own, or select the sequential executor",
                ),
            );
        }
    }
    if graph.fleet.is_some() {
        for n in &graph.nodes {
            if n.effects.stateful == Some(true) && n.effects.snapshot_capable != Some(true) {
                report.push(
                    Diagnostic::new(
                        Code::P018,
                        Severity::Error,
                        format!(
                            "stateful component {:?} declares no snapshot capability; fleet \
                             checkpoint-restart will silently reset its state on every recovery",
                            n.label
                        ),
                        vec![n.label.clone()],
                    )
                    .with_hint(
                        "implement snapshot_state/restore_state and declare snapshot_capable, \
                         make the component stateless, or drop the fleet block",
                    ),
                );
            }
        }
        fleet_parallel_diagnostics(graph, report);
        determinism_diagnostics(graph, report);
    }
}

/// **P020** (warning) — the fleet block requests parallel shard
/// stepping (a `work_stealing` scheduler, or `workers` other than 1)
/// while a template component declares `writes` on a named shared
/// resource. Every fleet instance replicates the template, so the
/// writing component exists once *per instance*; with shards stepped
/// concurrently, replicas in different shards hit the same named
/// resource with no wave to serialize them — the cross-instance
/// analogue of P017, and it does not even need two components: a single
/// writer races with its own replicas. The fleet's byte-equality
/// contract (serial ≡ work-stealing) only covers state the instances
/// actually own.
pub fn fleet_parallel_diagnostics(graph: &FlowGraph, report: &mut Report) {
    let Some(spec) = &graph.fleet else {
        return;
    };
    let workers = match spec.resolved_scheduler() {
        perpos_core::fleet::FleetScheduler::WorkStealing { workers } => workers,
        _ => return,
    };
    if workers == 1 {
        return;
    }
    let workers_txt = if workers == 0 {
        "machine-sized".to_string()
    } else {
        workers.to_string()
    };
    for n in &graph.nodes {
        let written = writes(&n.effects);
        if written.is_empty() {
            continue;
        }
        let resources = written
            .iter()
            .map(|r| format!("{r:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        report.push(
            Diagnostic::new(
                Code::P020,
                Severity::Warning,
                format!(
                    "component {:?} declares writes on shared resource(s) {} while the \
                     fleet block requests {}-worker parallel stepping; its replicas in \
                     concurrently stepped shards race on the shared resource",
                    n.label, resources, workers_txt
                ),
                vec![n.label.clone()],
            )
            .with_hint(
                "set the fleet scheduler to \"serial\" (or workers to 1), move the shared \
                 state into per-instance component state, or drop the shared-resource \
                 write declaration if each replica really owns a private copy",
            ),
        );
    }
}

/// Runs P019 unconditionally — for contexts that assume deterministic
/// re-execution regardless of a declared fleet block. The synthesis
/// acceptance gate uses this so synthesized pipelines are reproducible
/// by construction; [`effect_diagnostics`] calls it when a fleet block
/// makes replay determinism a deployed assumption.
pub fn determinism_diagnostics(graph: &FlowGraph, report: &mut Report) {
    for n in &graph.nodes {
        let names = nondeterministic_effects(&n.effects);
        if !names.is_empty() {
            report.push(
                Diagnostic::new(
                    Code::P019,
                    Severity::Warning,
                    format!(
                        "component {:?} declares nondeterministic effects ({}) in a graph \
                         assumed to replay deterministically",
                        n.label,
                        names.join(", ")
                    ),
                    vec![n.label.clone()],
                )
                .with_hint(
                    "route the exogenous input through the engine clock or a recorded trace, \
                     seed the randomness from configuration, or drop the determinism \
                     assumption (fleet block / synthesis)",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::FlowNode;
    use perpos_core::assembly::FleetSpec;
    use perpos_core::component::{ComponentRole, TransferSpec};

    fn node(label: &str, effects: EffectSpec) -> FlowNode {
        FlowNode {
            label: label.to_string(),
            role: ComponentRole::Source,
            inputs: Vec::new(),
            provides: vec!["position".into()],
            transfer: TransferSpec::default(),
            anonymizes: false,
            effects,
        }
    }

    fn graph_of(nodes: Vec<FlowNode>) -> FlowGraph {
        FlowGraph::finish(nodes, Vec::new())
    }

    fn fleet_spec(instances: usize) -> FleetSpec {
        FleetSpec {
            instances,
            shards: None,
            checkpoint_every: None,
            scheduler: None,
            workers: None,
        }
    }

    #[test]
    fn same_wave_write_write_conflict_found() {
        let g = graph_of(vec![
            node("a", EffectSpec::new().writing("bias")),
            node("b", EffectSpec::new().writing("bias")),
        ]);
        let conflicts = wave_conflicts(&g);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::WriteWrite);
        assert_eq!(conflicts[0].resource, "bias");
        assert_eq!(
            (conflicts[0].a.as_str(), conflicts[0].b.as_str()),
            ("a", "b")
        );
    }

    #[test]
    fn read_write_conflict_names_the_writer_first() {
        let g = graph_of(vec![
            node("reader", EffectSpec::new().reading("map")),
            node("writer", EffectSpec::new().writing("map")),
        ]);
        let conflicts = wave_conflicts(&g);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::ReadWrite);
        assert_eq!(conflicts[0].a, "writer");
        assert_eq!(conflicts[0].b, "reader");
    }

    #[test]
    fn disjoint_resources_and_pure_reads_are_clean() {
        let g = graph_of(vec![
            node("a", EffectSpec::new().writing("left")),
            node("b", EffectSpec::new().writing("right")),
            node("c", EffectSpec::new().reading("shared-map")),
            node("d", EffectSpec::new().reading("shared-map")),
        ]);
        assert!(wave_conflicts(&g).is_empty());
    }

    #[test]
    fn p017_requires_level_parallel_executor() {
        let nodes = vec![
            node("a", EffectSpec::new().writing("bias")),
            node("b", EffectSpec::new().writing("bias")),
        ];
        let mut sequential = graph_of(nodes.clone());
        sequential.executor = Some("sequential".into());
        let mut report = Report::new();
        effect_diagnostics(&sequential, &mut report);
        assert!(report.is_clean());

        let mut parallel = graph_of(nodes);
        parallel.executor = Some("level-parallel".into());
        let mut report = Report::new();
        effect_diagnostics(&parallel, &mut report);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, Code::P017);
        assert!(report.diagnostics[0].message.contains("wave 0"));
        assert!(report.diagnostics[0].message.contains("\"bias\""));
    }

    #[test]
    fn p018_and_p019_require_a_fleet_block() {
        let nodes = vec![
            node("filter", EffectSpec::new().stateful(false)),
            node("clocked", EffectSpec::new().with_wall_clock()),
        ];
        let plain = graph_of(nodes.clone());
        let mut report = Report::new();
        effect_diagnostics(&plain, &mut report);
        assert!(report.is_clean());

        let mut fleet = graph_of(nodes);
        fleet.fleet = Some(fleet_spec(8));
        let mut report = Report::new();
        effect_diagnostics(&fleet, &mut report);
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::P018, Code::P019]);
    }

    #[test]
    fn snapshot_capable_stateful_component_is_fine_in_a_fleet() {
        let mut g = graph_of(vec![node("filter", EffectSpec::new().stateful(true))]);
        g.fleet = Some(fleet_spec(8));
        let mut report = Report::new();
        effect_diagnostics(&g, &mut report);
        assert!(report.is_clean());
    }

    #[test]
    fn p020_fires_only_for_parallel_fleets_with_shared_writes() {
        let nodes = vec![node("calib", EffectSpec::new().writing("bias-table"))];

        // No fleet block: nothing to step in parallel.
        let plain = graph_of(nodes.clone());
        let mut report = Report::new();
        fleet_parallel_diagnostics(&plain, &mut report);
        assert!(report.is_clean());

        // Serial fleet: replicas never step concurrently.
        let mut serial = graph_of(nodes.clone());
        serial.fleet = Some(fleet_spec(512));
        let mut report = Report::new();
        fleet_parallel_diagnostics(&serial, &mut report);
        assert!(report.is_clean());

        // Parallel fleet via explicit workers: the writer's replicas race.
        let mut parallel = graph_of(nodes.clone());
        parallel.fleet = Some(FleetSpec {
            workers: Some(4),
            ..fleet_spec(512)
        });
        let mut report = Report::new();
        effect_diagnostics(&parallel, &mut report);
        let p020: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::P020)
            .collect();
        assert_eq!(p020.len(), 1);
        assert_eq!(p020[0].severity, Severity::Warning);
        assert!(p020[0].message.contains("\"bias-table\""));
        assert!(p020[0].message.contains("4-worker"));

        // Machine-sized work stealing (workers absent) counts as parallel.
        let mut machine = graph_of(nodes.clone());
        machine.fleet = Some(FleetSpec {
            scheduler: Some("work_stealing".into()),
            ..fleet_spec(512)
        });
        let mut report = Report::new();
        fleet_parallel_diagnostics(&machine, &mut report);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].message.contains("machine-sized"));

        // Explicit workers: 1 pins the fleet serial — clean again.
        let mut one = graph_of(nodes);
        one.fleet = Some(FleetSpec {
            scheduler: Some("work_stealing".into()),
            workers: Some(1),
            ..fleet_spec(512)
        });
        let mut report = Report::new();
        fleet_parallel_diagnostics(&one, &mut report);
        assert!(report.is_clean());

        // Pure readers don't trip it: only declared writes race.
        let mut readers = graph_of(vec![node("lookup", EffectSpec::new().reading("map"))]);
        readers.fleet = Some(FleetSpec {
            workers: Some(8),
            ..fleet_spec(512)
        });
        let mut report = Report::new();
        fleet_parallel_diagnostics(&readers, &mut report);
        assert!(report.is_clean());
    }

    #[test]
    fn determinism_diagnostics_fire_without_fleet_context() {
        let g = graph_of(vec![node("rng", EffectSpec::new().with_unseeded())]);
        let mut report = Report::new();
        determinism_diagnostics(&g, &mut report);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, Code::P019);
        assert!(report.diagnostics[0]
            .message
            .contains("unseeded-randomness"));
    }
}
