//! Structured diagnostics: stable codes, severities, offending paths and
//! fix-it hints, with human-readable and JSON renderings.

use std::fmt;

use serde::{Content, Serialize};

/// Version of the machine-readable output formats produced by this crate
/// (the [`Report::render_json`] document and the `perpos-lint --facts
/// json` facts document). Bumped whenever the shape changes so downstream
/// tooling can detect format drift. Version 1 was the unversioned PR 1
/// shape; version 2 adds `schema_version` itself and codes P010–P013;
/// version 3 adds code P014 and the channel-buffer facts
/// (`level_buffer_cap`, per-node `overflow_s`); version 4 adds code
/// P015, the `perpos-lint synth` `synthesis` document (goal, ranked
/// candidates, infeasibility explanation) and canonically sorted
/// diagnostics/facts arrays (byte-reproducible output); version 5 adds
/// code P016 and the facts document's `fleet` field (the resolved fleet
/// deployment, `null` without a `fleet` block); version 6 adds codes
/// P017–P019 and the facts document's `effects` block (per-node declared
/// effects plus the wave-interference conflicts found over the
/// level-parallel schedule); version 7 adds code P020 and the fleet
/// facts' `scheduler`/`workers` fields (the resolved fleet scheduler
/// name and its *requested* worker cap, 0 meaning machine-sized — the
/// requested value is recorded, not the machine-resolved one, so the
/// document stays host-independent).
pub const JSON_SCHEMA_VERSION: u32 = 7;

/// The one canonical-ordering primitive behind every byte-reproducible
/// surface of this crate: sorts `items` by `key`, computing each key
/// exactly once. [`Report::canonical_diagnostics`] and the facts
/// serializer both order their arrays through this helper, so the two
/// surfaces cannot drift apart on ordering semantics (ties keep a single,
/// total ordering as long as the key is total — prefer keys that include
/// every distinguishing field).
pub fn canonical_sort<T, K: Ord>(items: &mut [T], key: impl FnMut(&T) -> K) {
    items.sort_by_cached_key(key);
}

/// Defines [`Code`] from a single list, generating the enum, the
/// [`Code::ALL`] table, [`Code::as_str`], [`Code::parse`] and
/// [`Code::summary`] together. Because every surface is produced from the
/// one invocation below, adding a code without registering it in `ALL`
/// (or vice versa) is impossible, and forgetting its summary is a compile
/// error; [`Code::explain`] is kept as a separate exhaustive `match` so a
/// new code without a long-form explanation also fails to build.
macro_rules! define_codes {
    ($($(#[$meta:meta])* $code:ident => $summary:literal,)+) => {
        /// Stable diagnostic codes. The numeric part never changes
        /// meaning once released; renderers and tests key on these.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Code {
            $($(#[$meta])* $code,)+
        }

        impl Code {
            /// All codes, in numeric order. Generated from the same list
            /// as the enum itself, so it can never fall out of sync.
            pub const ALL: [Code; 0 $(+ { let _ = Code::$code; 1 })+] =
                [$(Code::$code,)+];

            /// The stable textual form, e.g. `"P001"`.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(Code::$code => stringify!($code),)+
                }
            }

            /// Parses the textual form back into a code (`"P001"` →
            /// [`Code::P001`]). Returns `None` for unknown codes.
            pub fn parse(text: &str) -> Option<Code> {
                match text {
                    $(stringify!($code) => Some(Code::$code),)+
                    _ => None,
                }
            }

            /// One-line description of what the code means.
            pub fn summary(&self) -> &'static str {
                match self {
                    $(Code::$code => $summary,)+
                }
            }
        }
    };
}

define_codes! {
    /// Type-flow mismatch: a producer's effective output kinds cannot
    /// satisfy the consuming port's accepted kinds.
    P001 => "type-flow mismatch between producer and consumer port",
    /// Dangling required input: a declared input port is never connected.
    P002 => "declared input port is never connected",
    /// Unsatisfiable feature requirement: a port's `requiring_feature`
    /// declaration cannot be met by the upstream producer.
    P003 => "port feature requirement cannot be satisfied",
    /// Dead component: no directed path to any sink (includes orphan
    /// sources and unconsumed subgraphs).
    P004 => "component has no path to any sink",
    /// Configuration cycle: the declared connections contain a cycle, so
    /// instantiation would be rejected.
    P005 => "configuration connections form a cycle",
    /// Feature conflict: features on one component add the same data kind
    /// or expose colliding method names.
    P006 => "conflicting features on one component",
    /// Configuration reference error: unknown instance/type names,
    /// duplicate instance names, out-of-range or doubly-driven ports.
    P007 => "configuration reference error",
    /// Non-monotonic logical time observed on a channel at runtime.
    P008 => "non-monotonic logical time on a channel",
    /// Source component with no explicit fault policy: the engine's
    /// default `Propagate` aborts the whole run on the first sensor
    /// fault.
    P009 => "source component has no explicit fault policy",
    /// Coordinate-frame conflict: positions in incompatible frames meet
    /// at a component that is not a frame transform.
    P010 => "incompatible coordinate frames meet without a transform",
    /// Declared accuracy unreachable: a component promises an accuracy
    /// better than the statically inferred achievable bound.
    P011 => "declared accuracy is statically unreachable",
    /// Privacy taint: raw identifiable sensor data reaches an application
    /// sink with no anonymizing step on the path.
    P012 => "raw identifiable sensor data reaches the application",
    /// Rate overload: inferred sustained inbound rate exceeds a
    /// component's declared maximum processing rate.
    P013 => "inbound rate exceeds declared processing capacity",
    /// Channel buffer overrun: a sustained rate excess will fill the
    /// channel layer's bounded per-level buffer, after which the oldest
    /// pending entries are evicted and silently missing from data trees.
    P014 => "declared rates will overrun the channel level buffer",
    /// Unsatisfiable synthesis goal: no pipeline over the catalog can
    /// meet the requested criteria; the finding names the binding
    /// constraint (accuracy, rate, power, frame, privacy or a missing
    /// provider).
    P015 => "synthesis goal is unsatisfiable against the catalog",
    /// Under-provisioned fleet fault containment: the configuration
    /// declares a fleet deployment while components still run the
    /// default `Propagate` policy, so every component fault escapes the
    /// instance and is paid for as a fleet-level checkpoint restart.
    P016 => "fleet deployment relies on checkpoint-restart for routine faults",
    /// Wave interference: under a level-parallel executor two components
    /// scheduled into the same wave declare a write-write or read-write
    /// conflict on a named shared resource, so the schedule order is
    /// observable and the executor's determinism contract breaks.
    P017 => "same-wave components race on a shared resource under level-parallel",
    /// Checkpoint blind spot: a component declared stateful but not
    /// snapshot-capable runs inside a fleet deployment, so every
    /// checkpoint restart silently diverges from the uninterrupted run.
    P018 => "stateful fleet component has no snapshot hooks",
    /// Hidden nondeterminism: a component declares exogenous inputs
    /// (wall clock, live I/O) or unseeded randomness in a graph that
    /// fleet checkpointing or synthesis treats as deterministic.
    P019 => "exogenous or unseeded effects undermine assumed determinism",
    /// Fleet-parallel interference: the fleet block requests parallel
    /// shard stepping while a template component declares writes on a
    /// named shared resource, so the component's per-instance replicas
    /// in concurrently stepped shards race on that resource.
    P020 => "parallel fleet replicas race on a declared shared resource",
}

/// Long-form documentation of a diagnostic code, served by
/// `perpos-lint --explain PNNN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeExplanation {
    /// What the analysis checks and why it matters, in a few sentences.
    pub detail: &'static str,
    /// A minimal situation that triggers the finding.
    pub example: &'static str,
    /// How to make the finding go away.
    pub fix: &'static str,
}

impl Code {
    /// The long-form explanation of this code. The `match` is exhaustive
    /// on purpose: adding a code to [`define_codes!`] without an
    /// explanation here is a compile error, which keeps `--explain`
    /// complete by construction.
    pub fn explain(&self) -> CodeExplanation {
        match self {
            Code::P001 => CodeExplanation {
                detail: "Every connection is checked against the port declarations on \
                         both sides: the producer's effective output kinds (its output \
                         spec plus any kinds added by attached features) must overlap \
                         the consumer port's accepted kinds, otherwise no item can ever \
                         legally flow over the edge.",
                example: "A GPS source providing only \"raw.string\" wired directly \
                          into a geodecoder port that accepts \"position.wgs84\".",
                fix: "Insert a converting component (e.g. an NMEA parser) between the \
                      two, or correct the port's accepted kinds.",
            },
            Code::P002 => CodeExplanation {
                detail: "A component declares an input port but nothing is connected \
                         to it. The component will never receive data on that port and \
                         single-input processors will simply never run.",
                example: "A \"parser\" instance is declared in the configuration but no \
                          connection entry drives its port 0.",
                fix: "Connect a producer to the port or remove the unused component.",
            },
            Code::P003 => CodeExplanation {
                detail: "A port declared a Component Feature requirement (paper §2.1: \
                         input requirements) and the connected producer does not carry \
                         a feature with that name, so the consumer's contract is \
                         unsatisfiable.",
                example: "An interpolator port requiring the \"HDOP\" feature is fed by \
                          a GPS source with no HDOP feature attached.",
                fix: "Attach the required feature to the producer or drop the \
                      requirement from the port spec.",
            },
            Code::P004 => CodeExplanation {
                detail: "The component has no directed path to any sink, so whatever it \
                         produces is never observed by an application. This is usually \
                         a leftover from a partial adaptation.",
                example: "A WiFi scanner whose consumer was removed keeps producing \
                          scans that nothing consumes.",
                fix: "Wire the component (transitively) into a sink or remove it.",
            },
            Code::P005 => CodeExplanation {
                detail: "The declared connections contain a directed cycle. PerPos \
                         process graphs are trees/DAGs rooted at the application \
                         (paper §2.2); the assembler rejects cyclic configurations at \
                         instantiation time, so the lint reports them early.",
                example: "a -> b, b -> c, c -> a.",
                fix: "Break the cycle; if feedback is needed, model it as reflective \
                      method calls rather than data-flow edges.",
            },
            Code::P006 => CodeExplanation {
                detail: "Two features attached to one component add the same data kind \
                         or expose the same reflective method name, making dispatch \
                         ambiguous.",
                example: "Two \"HDOP\"-adding features attached to one GPS source.",
                fix: "Remove one of the features or rename the colliding method.",
            },
            Code::P007 => CodeExplanation {
                detail: "The configuration references something that does not exist or \
                         is used twice: unknown type/instance names, duplicate instance \
                         names, out-of-range port indexes, or two producers driving the \
                         same input port. An adaptation plan referencing a missing node \
                         or a quarantined node also reports P007.",
                example: "A connection names instance \"parserX\" but only \"parser0\" \
                          is declared.",
                fix: "Fix the name/index in the configuration or plan.",
            },
            Code::P008 => CodeExplanation {
                detail: "A runtime probe observed an item whose logical timestamp is \
                         older than its predecessor on the same channel. Downstream \
                         filters assuming monotonic time (e.g. dead reckoning) may \
                         misbehave.",
                example: "A replayed trace with an out-of-order fix injected into a \
                          live channel.",
                fix: "Sort or buffer the source, or reset its clock on replay.",
            },
            Code::P009 => CodeExplanation {
                detail: "Sources talk to real hardware and fail the most, but the \
                         engine's default fault policy is Propagate, which aborts the \
                         whole run on the first fault. Production graphs should make \
                         the containment decision explicit.",
                example: "A GPS source with no fault_policy entry in the \
                          configuration.",
                fix: "Set an explicit policy (e.g. \"quarantine\" or \"restart\") on \
                      the source, or \"propagate\" to document the intent.",
            },
            Code::P010 => CodeExplanation {
                detail: "Frame inference propagates the coordinate frame of position \
                         data (wgs84, room, local frames) along every channel: sources \
                         and transforms declare frames, other components inherit them. \
                         When two different frames meet at a component that is not \
                         declared a frame transform, coordinates would be combined \
                         that live in different reference systems.",
                example: "A merge fusing a GPS track (frame wgs84) with a room-level \
                          Bluetooth positioner (frame room) with no map-matching \
                          transform between them.",
                fix: "Insert a frame-transform component before the merge, or declare \
                      frame_transform on the merging component's transfer spec if it \
                      really re-projects its inputs.",
            },
            Code::P011 => CodeExplanation {
                detail: "Accuracy propagation computes an achievable accuracy interval \
                         for every channel from declared source accuracies and \
                         per-component scale/add degradations (merges take the best \
                         input). A component that claims to deliver an accuracy better \
                         than the inferred lower bound can never honour that promise, \
                         no matter the runtime conditions.",
                example: "A provider claiming 1 m accuracy fed only by a GPS source \
                          whose best declared accuracy is 2 m.",
                fix: "Relax the claimed accuracy, or feed the component from a more \
                      accurate source (or a fusion step that improves the bound).",
            },
            Code::P012 => CodeExplanation {
                detail: "Privacy-taint analysis marks raw identifiable sensor kinds \
                         (e.g. raw.string, wifi.scan, motion.sample) at their origin \
                         and tracks them along every channel that keeps the kind \
                         flowing. Reaching an application sink without passing an \
                         anonymizing/aggregating component or feature means \
                         identifiable data leaves the middleware.",
                example: "A WiFi scanner wired straight into the application sink with \
                          no anonymizing feature on the path.",
                fix: "Insert an anonymizing component, attach an anonymizing feature \
                      on the path, or stop delivering the raw kind to the sink.",
            },
            Code::P013 => CodeExplanation {
                detail: "Rate propagation bounds the sustained item rate on every \
                         channel from declared source emit rates and per-component \
                         fan-out factors; fan-in sums its inputs. When a component's \
                         inferred lower-bound inflow exceeds its declared maximum \
                         processing rate, its input queue grows without bound.",
                example: "A 10 Hz GPS source feeding a geodecoder declared to sustain \
                          only 1 item/s.",
                fix: "Downsample upstream, raise the component's capacity, or declare \
                      a rate_factor < 1 on an intermediate component.",
            },
            Code::P014 => CodeExplanation {
                detail: "The channel layer buffers unclaimed intermediate items per \
                         level, bounded by LEVEL_BUFFER_CAP; when the bound is hit the \
                         oldest entries are evicted (counted in channel_stats.dropped) \
                         and are missing from later data trees. A component whose \
                         inferred inflow durably exceeds its declared capacity fills \
                         that buffer at the excess rate, so the lint predicts the time \
                         until the first eviction.",
                example: "A 1 Hz GPS source feeding a throttle declared to consume \
                          only 0.5 item/s: the 0.5 item/s surplus fills the 4096-entry \
                          buffer in ~8192 s of run time.",
                fix: "Resolve the underlying P013 rate overload — downsample upstream \
                      or raise the consumer's declared capacity — so the buffer \
                      drains as fast as it fills.",
            },
            Code::P015 => CodeExplanation {
                detail: "The pipeline synthesizer searched the catalog's capability \
                         space under the dataflow domains (frame unification, accuracy \
                         propagation, privacy taint, rate bounds) and found no pipeline \
                         that satisfies every requested criterion. The finding names \
                         the binding constraint: the single criterion that, when \
                         relaxed, makes the goal satisfiable — or the output kind no \
                         catalog type provides at all.",
                example: "Requesting accuracy <= 0.5 m from a catalog whose most \
                          accurate positioning chain bottoms out at 1 m.",
                fix: "Relax the named constraint to the reported achievable bound, or \
                      extend the catalog with a component type that improves it (e.g. \
                      a more accurate source, an anonymizer, a downsampler).",
            },
            Code::P016 => CodeExplanation {
                detail: "The configuration declares a `fleet` block, so the process \
                         will be replicated under the fleet runtime's escalation \
                         ladder: in-instance fault policies first, checkpoint-restart \
                         second, shard quarantine last. A component left on the \
                         default `Propagate` policy skips the first rung entirely — \
                         each of its faults aborts the whole instance step and is \
                         recovered by rebuilding the instance and restoring its last \
                         checkpoint, losing every step since. At fleet scale that \
                         turns routine, locally containable faults into availability \
                         loss and, when they cluster, shard quarantines.",
                example: "A 10,000-instance fleet whose GPS source has no \
                          fault_policy: every transient sensor fault costs a \
                          checkpoint restore instead of one dropped item.",
                fix: "Give fleet-deployed components an explicit containment policy — \
                      \"drop_item\", \"restart\" or \"quarantine\" — so routine faults \
                      are absorbed inside the instance and the checkpoint-restart rung \
                      is reserved for genuine crashes.",
            },
            Code::P017 => CodeExplanation {
                detail: "The level-parallel executor runs mutually independent nodes \
                         of each wave concurrently, relying on components only \
                         touching their own state. Effect analysis layers the graph \
                         exactly as the executor does (longest-path levels) and \
                         checks every same-wave pair's declared shared-resource \
                         effects: a write-write or read-write overlap on one resource \
                         means the wave's worker schedule becomes observable, and the \
                         executor's byte-identical determinism contract no longer \
                         holds.",
                example: "Two calibration stages in the same wave both declaring \
                          writes on a shared \"bias-table\" resource while the \
                          configuration selects the level-parallel executor.",
                fix: "Serialize the conflicting components into different waves (wire \
                      one downstream of the other), route the shared state through a \
                      component of its own, or drop back to the sequential executor.",
            },
            Code::P018 => CodeExplanation {
                detail: "Fleet checkpoint-restart rebuilds a faulted instance and \
                         restores the last snapshot, which captures exactly the state \
                         components export through snapshot_state/restore_state. A \
                         component declared stateful but not snapshot-capable keeps \
                         state the snapshot cannot carry: every restart silently \
                         resets it, so the restored instance diverges from the \
                         uninterrupted run and the fleet's restore-equivalence \
                         guarantee is void — without any error being raised.",
                example: "A drift-estimating filter that accumulates a bias estimate \
                          but implements no snapshot hooks, deployed in a \
                          10,000-instance fleet block.",
                fix: "Implement snapshot_state/restore_state on the component (and \
                      declare snapshot_capable), make the component stateless, or \
                      remove the fleet block.",
            },
            Code::P019 => CodeExplanation {
                detail: "Replay determinism — the property the fleet's \
                         checkpoint-restart recovery and the synthesizer's candidate \
                         ranking both assume — requires every effect to be a function \
                         of the trace and the seed. A component declaring exogenous \
                         inputs (host wall clock, live I/O) or unseeded randomness \
                         can produce different output on each run of the same trace, \
                         so restored instances drift from their reference and \
                         synthesized pipelines stop being reproducible.",
                example: "A source that timestamps items with the host wall clock \
                          instead of the engine clock, inside a configuration that \
                          declares a fleet deployment.",
                fix: "Route the exogenous input through the simulated clock or a \
                      recorded trace, seed the randomness from configuration, or \
                      document the nondeterminism by dropping the fleet block.",
            },
            Code::P020 => CodeExplanation {
                detail: "The fleet runtime's byte-equality contract — serial and \
                         work-stealing schedulers produce identical stats, checkpoints \
                         and histories — rests on shards sharing nothing. A fleet block \
                         that requests more than one worker replicates the template \
                         into every instance, so a component declaring writes on a \
                         named shared resource exists once per instance; replicas in \
                         concurrently stepped shards then hit the same resource with \
                         no wave ordering to serialize them. This is the \
                         cross-instance analogue of P017, and a single writing \
                         component suffices: it races with its own replicas.",
                example: "A calibration stage declaring writes on a shared \
                          \"bias-table\" resource inside a fleet block with \
                          \"workers\": 4.",
                fix: "Set the fleet scheduler to \"serial\" (or workers to 1), move \
                      the shared state into per-instance component state, or drop the \
                      shared-resource write declaration if each replica actually owns \
                      a private copy.",
            },
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Code {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only.
    Info,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// The graph/configuration is unsound; gates reject on these.
    Error,
}

impl Severity {
    /// Lower-case textual form used in both renderers.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// What is wrong, in one sentence.
    pub message: String,
    /// The offending node/edge path, outermost first — e.g.
    /// `["gps", "parser(port 0)"]` for an edge, `["interp"]` for a node.
    pub path: Vec<String>,
    /// How to fix it, when the analysis can tell.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic; attach a hint with [`Diagnostic::with_hint`].
    pub fn new(
        code: Code,
        severity: Severity,
        message: impl Into<String>,
        path: Vec<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            path,
            hint: None,
        }
    }

    /// Attaches a fix-it hint (builder style).
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity,
            self.code,
            if self.path.is_empty() {
                "<graph>".to_string()
            } else {
                self.path.join(" -> ")
            },
            self.message
        )?;
        if let Some(h) = &self.hint {
            write!(f, "\n    hint: {h}")?;
        }
        Ok(())
    }
}

/// The result of running analysis passes: an ordered list of findings.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Report {
    /// Findings in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is completely clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings carrying `code`.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Findings in canonical order — by code, then offending path, then
    /// message, then severity. Both renderers emit this order, so their
    /// output is byte-reproducible regardless of which pass produced a
    /// finding first (golden files and synthesis ranking rely on it).
    pub fn canonical_diagnostics(&self) -> Vec<Diagnostic> {
        let mut sorted = self.diagnostics.clone();
        canonical_sort(&mut sorted, |d| {
            (d.code, d.path.clone(), d.message.clone(), d.severity)
        });
        sorted
    }

    /// Human-readable multi-line rendering (one finding per line, hint
    /// lines indented), ending with a summary line. Findings appear in
    /// canonical order ([`Report::canonical_diagnostics`]).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in self.canonical_diagnostics() {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "{} finding(s): {} error(s), {} warning(s)\n",
            self.diagnostics.len(),
            errors,
            warnings
        ));
        out
    }

    /// Machine-readable JSON rendering. Findings appear in canonical
    /// order ([`Report::canonical_diagnostics`]).
    pub fn render_json(&self) -> String {
        #[derive(Serialize)]
        struct JsonReport {
            schema_version: u64,
            errors: u64,
            warnings: u64,
            diagnostics: Vec<Diagnostic>,
        }
        let body = JsonReport {
            schema_version: u64::from(JSON_SCHEMA_VERSION),
            errors: self.errors().count() as u64,
            warnings: self
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .count() as u64,
            diagnostics: self.canonical_diagnostics(),
        };
        serde_json::to_string_pretty(&body)
            .expect("diagnostic report is plain data and always serializes")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(
                Code::P001,
                Severity::Error,
                "producer provides [\"raw\"] but port accepts [\"nmea\"]",
                vec!["gps".into(), "parser(port 0)".into()],
            )
            .with_hint("insert a converting component or fix the port spec"),
        );
        r.push(Diagnostic::new(
            Code::P004,
            Severity::Warning,
            "no path to any sink",
            vec!["orphan".into()],
        ));
        r
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_classifies_findings() {
        let r = sample();
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.with_code(Code::P001).len(), 1);
        assert_eq!(r.with_code(Code::P008).len(), 0);
    }

    #[test]
    fn human_rendering_carries_code_path_and_hint() {
        let text = sample().render_human();
        assert!(
            text.contains("error [P001] at gps -> parser(port 0)"),
            "{text}"
        );
        assert!(
            text.contains("hint: insert a converting component"),
            "{text}"
        );
        assert!(
            text.contains("2 finding(s): 1 error(s), 1 warning(s)"),
            "{text}"
        );
    }

    #[test]
    fn json_rendering_is_machine_readable() {
        let json = sample().render_json();
        let v = serde_json::parse_value_str(&json).expect("report JSON parses");
        let map = v.as_map().expect("top-level object");
        let diags = map
            .iter()
            .find(|(k, _)| k == "diagnostics")
            .and_then(|(_, v)| v.as_list())
            .expect("diagnostics array");
        assert_eq!(diags.len(), 2);
        let first = diags[0].as_map().expect("diagnostic object");
        let get = |k: &str| {
            first
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("code"), Some(serde::Content::Str("P001".into())));
        assert_eq!(get("severity"), Some(serde::Content::Str("error".into())));
    }

    #[test]
    fn rendering_orders_findings_canonically() {
        // Pushed out of order; both renderers emit code-sorted output.
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::P004,
            Severity::Warning,
            "later code first",
            vec!["z".into()],
        ));
        r.push(Diagnostic::new(
            Code::P001,
            Severity::Error,
            "earlier code second",
            vec!["a".into()],
        ));
        let human = r.render_human();
        let p1 = human.find("P001").expect("P001 rendered");
        let p4 = human.find("P004").expect("P004 rendered");
        assert!(p1 < p4, "{human}");
        // The canonical order is stable across repeated renders.
        assert_eq!(r.render_json(), r.render_json());
        // The report itself keeps pass order.
        assert_eq!(r.diagnostics[0].code, Code::P004);
    }

    #[test]
    fn all_codes_have_distinct_text_and_summaries() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code text {c}");
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn all_codes_parse_back_and_explain() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            let e = c.explain();
            assert!(!e.detail.is_empty(), "{c} has no detail");
            assert!(!e.example.is_empty(), "{c} has no example");
            assert!(!e.fix.is_empty(), "{c} has no fix");
        }
        assert_eq!(Code::parse("P999"), None);
        assert_eq!(Code::parse("p001"), None);
    }

    #[test]
    fn json_rendering_carries_schema_version() {
        let json = sample().render_json();
        let v = serde_json::parse_value_str(&json).expect("report JSON parses");
        let map = v.as_map().expect("top-level object");
        let version = map
            .iter()
            .find(|(k, _)| k == "schema_version")
            .map(|(_, v)| v.clone());
        assert_eq!(
            version,
            Some(serde::Content::I64(i64::from(JSON_SCHEMA_VERSION)))
        );
    }
}
