//! Golden-file tests: each known-bad GraphConfig fixture fires exactly
//! its diagnostic code, and the known-good configurations lint clean.

#![allow(clippy::unwrap_used)]

use perpos_analysis::{analyze_config, Code, Report, Severity, TypeCatalog};
use perpos_core::assembly::GraphConfig;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn catalog() -> TypeCatalog {
    serde_json::from_str(&fixture("catalog.json")).unwrap()
}

fn lint(name: &str) -> Report {
    let config: GraphConfig = serde_json::from_str(&fixture(name)).unwrap();
    analyze_config(&config, &catalog())
}

/// Asserts `code` fires exactly once, carries the expected severity and a
/// fix-it hint, and that no *other* code fires at all.
fn assert_only(report: &Report, code: Code, severity: Severity) {
    let hits = report.with_code(code);
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {code}, got:\n{}",
        report.render_human()
    );
    assert_eq!(hits[0].severity, severity);
    assert!(hits[0].hint.is_some(), "{code} should carry a fix-it hint");
    assert!(!hits[0].path.is_empty(), "{code} should carry a path");
    assert_eq!(
        report.diagnostics.len(),
        1,
        "fixture should trigger only {code}, got:\n{}",
        report.render_human()
    );
}

#[test]
fn p001_kind_mismatch_fires_exactly_once() {
    let report = lint("p001_kind_mismatch.json");
    assert_only(&report, Code::P001, Severity::Error);
    let d = report.with_code(Code::P001)[0];
    assert!(d.message.contains("raw.string"), "{}", d.message);
    assert!(d.message.contains("nmea.sentence"), "{}", d.message);
}

#[test]
fn p002_dangling_input_fires_exactly_once() {
    let report = lint("p002_dangling_input.json");
    assert_only(&report, Code::P002, Severity::Error);
    assert!(report.with_code(Code::P002)[0].path[0].contains("parse0"));
}

#[test]
fn p003_missing_feature_fires_exactly_once() {
    let report = lint("p003_missing_feature.json");
    assert_only(&report, Code::P003, Severity::Error);
    assert!(report.with_code(Code::P003)[0].message.contains("Hdop"));
}

#[test]
fn p004_dead_component_fires_exactly_once() {
    let report = lint("p004_dead_component.json");
    assert_only(&report, Code::P004, Severity::Warning);
    assert_eq!(
        report.with_code(Code::P004)[0].path,
        vec!["gps_spare".to_string()]
    );
    // Warnings alone do not fail a gate.
    assert!(!report.has_errors());
}

#[test]
fn p005_cycle_fires_exactly_once() {
    let report = lint("p005_cycle.json");
    assert_only(&report, Code::P005, Severity::Error);
    let d = report.with_code(Code::P005)[0];
    assert!(d.path.contains(&"echo1".to_string()) && d.path.contains(&"echo2".to_string()));
}

#[test]
fn p007_bad_reference_fires_exactly_once() {
    let report = lint("p007_bad_reference.json");
    assert_only(&report, Code::P007, Severity::Error);
    assert!(report.with_code(Code::P007)[0].message.contains("ghost"));
}

#[test]
fn p009_no_fault_policy_fires_exactly_once() {
    // Identical to pipeline_ok.json except the source declares no
    // fault_policy: the only finding is the P009 warning.
    let report = lint("p009_no_fault_policy.json");
    assert_only(&report, Code::P009, Severity::Warning);
    let d = report.with_code(Code::P009)[0];
    assert_eq!(d.path, vec!["gps0".to_string()]);
    assert!(d.hint.as_deref().unwrap_or("").contains("drop_item"));
    // A warning alone does not fail a gate.
    assert!(!report.has_errors());
}

#[test]
fn known_good_pipeline_lints_clean() {
    let report = lint("pipeline_ok.json");
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn repo_example_config_lints_clean() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let catalog: TypeCatalog = serde_json::from_str(
        &std::fs::read_to_string(format!("{root}/examples/configs/catalog.json")).unwrap(),
    )
    .unwrap();
    let config: GraphConfig = serde_json::from_str(
        &std::fs::read_to_string(format!("{root}/examples/configs/gps_pipeline.json")).unwrap(),
    )
    .unwrap();
    let report = analyze_config(&config, &catalog);
    assert!(report.is_clean(), "{}", report.render_human());
}
